//! # ipu-fleet — sharded multi-device serving simulation
//!
//! The paper evaluates IPU on one device; this crate asks the production
//! question: *how many tenants can an N-device IPU fleet serve at a p99
//! SLO?* A fleet run
//!
//! 1. synthesizes tens of thousands of full-rate tenant streams from one
//!    calibrated trace ([`router::synthesize_tenants`]) — each tenant
//!    offers the whole workload's demand rate, so aggregate intensity
//!    grows with the tenant count while the op count stays fixed,
//! 2. routes them onto devices under a pluggable [`ShardPolicy`]
//!    (`hash` / `range` / `lba-stripe`),
//! 3. replays every device as its own closed-loop world — private FTL,
//!    chip schedule and host queues — in parallel ([`run::run_fleet`]),
//! 4. merges the per-device reports into one [`FleetReport`] with exact
//!    pooled percentiles (`LatencyStats::merge` is a bucket sum), fleet-wide
//!    fairness and hot-shard detection, and
//! 5. optionally binary-searches the max tenant count meeting the SLO
//!    ([`capacity::run_capacity_search`]).
//!
//! A fleet run is a pure function of its inputs, so results are content-
//! addressed into the shared `ReplayCache` and a warm re-run replays
//! nothing. A 1-device, 1-tenant fleet is bit-identical to plain
//! `ipu_sim::replay_closed_loop` — the equivalence tests pin the layer to
//! that oracle.
//!
//! ## Fault tolerance
//!
//! Production fleets are never healthy. A seedable [`FleetFaultPlan`]
//! injects per-device disruptions (fail-stop, fail-slow, brownout) with
//! per-device fault seeds derived from the fleet seed; the router answers
//! with a three-state health machine ([`health`]), replica retries with
//! capped exponential backoff, hedged reads, and a [`ReplicationPolicy`]
//! (none / mirror-pair). The tolerance pass ([`tolerance`]) overlays all
//! of this on the per-device replays and attaches a [`FleetReliability`]
//! ledger plus per-device health timelines to the report, and
//! [`capacity::run_capacity_search`] can re-run under the faulted spec to
//! quote *degraded-mode* capacity next to the healthy headline.

#![forbid(unsafe_code)]

pub mod capacity;
pub mod charts;
pub mod fault;
pub mod health;
pub mod report;
pub mod router;
pub mod run;
pub mod tolerance;

pub use capacity::{run_capacity_search, run_degraded_capacity_search, SloTarget};
pub use charts::write_fleet_charts;
pub use fault::{derive_device_seed, DeviceFault, FleetFaultPlan, ResolvedFault};
pub use health::{
    DeviceHealthTimeline, HealthPolicy, HealthState, HealthTracker, HealthTransition,
};
pub use report::{
    render_capacity, render_degradation, render_fleet_report, CapacityProbe, CapacityResult,
    DeviceSummary, FleetReport, FleetRunResult, HotShard, LoadSkew, MergeContext, HOT_SHARD_TOP_K,
};
pub use router::{
    route, route_replicated, synthesize_tenants, DeviceAssignment, ReplicationPolicy, ShardPolicy,
    STRIPE_BYTES,
};
pub use run::{run_fleet, run_fleet_cached, run_fleet_detailed, FleetSpec};
pub use tolerance::{
    run_tolerance, DeviceProfile, FleetReliability, LogicalRequest, ToleranceOutcome,
};

//! Cross-crate integration tests: full trace replays on a scaled-down device
//! asserting the paper's qualitative orderings between Baseline, MGA and IPU.
//!
//! These use a 2% scale of the ts0 trace — big enough for steady-state GC and
//! cache pressure (the device scales with the trace), small enough for CI.

use ipu_core::ftl::SchemeKind;
use ipu_core::sim::SimReport;
use ipu_core::trace::PaperTrace;
use ipu_core::{experiment, ExperimentConfig, MatrixResult};

/// One shared matrix for the whole file (the runs dominate test time).
fn matrix() -> &'static MatrixResult {
    use std::sync::OnceLock;
    static MATRIX: OnceLock<MatrixResult> = OnceLock::new();
    MATRIX.get_or_init(|| {
        let mut cfg = ExperimentConfig::scaled(0.05);
        cfg.traces = vec![PaperTrace::Ts0];
        cfg.schemes = SchemeKind::all().to_vec();
        cfg.threads = 1;
        experiment::run_main_matrix(&cfg)
    })
}

fn report(scheme: SchemeKind) -> &'static SimReport {
    let m = matrix();
    m.report(0, m.scheme_index(scheme).unwrap())
}

#[test]
fn every_scheme_absorbs_the_whole_trace() {
    for kind in SchemeKind::all() {
        let r = report(kind);
        assert!(r.requests > 30_000, "{kind}: trace too small");
        assert_eq!(
            r.ftl.host_write_requests + r.ftl.host_read_requests,
            r.requests,
            "{kind}: request accounting broken"
        );
        assert!(r.overall_latency.mean_ns() > 0.0);
        assert!(
            r.ftl.gc_runs_slc > 0,
            "{kind}: cache pressure never triggered GC"
        );
    }
}

#[test]
fn figure8_ordering_baseline_best_mga_worst() {
    let base = report(SchemeKind::Baseline).read_error_rate();
    let mga = report(SchemeKind::Mga).read_error_rate();
    let ipu = report(SchemeKind::Ipu).read_error_rate();
    // Paper Fig. 8: Baseline lowest; MGA pays the most in-page disturb
    // (+14.0% in the paper); IPU sits just above Baseline (+3.5%).
    assert!(
        base < ipu,
        "Baseline ({base:.3e}) must beat IPU ({ipu:.3e})"
    );
    assert!(ipu < mga, "IPU ({ipu:.3e}) must beat MGA ({mga:.3e})");
    // And the increments are single-digit percents, not multiples.
    assert!(
        mga / base < 1.5,
        "MGA penalty implausibly large: {}",
        mga / base
    );
    assert!(
        ipu / base < 1.1,
        "IPU penalty should be small: {}",
        ipu / base
    );
}

#[test]
fn figure9_ordering_mga_packs_best_baseline_fragments() {
    let base = report(SchemeKind::Baseline).gc_page_utilization();
    let mga = report(SchemeKind::Mga).gc_page_utilization();
    let ipu = report(SchemeKind::Ipu).gc_page_utilization();
    // Paper Fig. 9: MGA ≈ 99.9% > IPU ≈ 73% > Baseline ≈ 52.8%.
    assert!(mga > 0.9, "MGA utilization {mga} should be near 1");
    assert!(ipu > base, "IPU ({ipu}) must beat Baseline ({base})");
    assert!(mga > ipu, "MGA ({mga}) must beat IPU ({ipu})");
    assert!(base < 0.7, "Baseline ({base}) must show fragmentation");
}

#[test]
fn figure10_ordering_slc_erases() {
    let base = report(SchemeKind::Baseline).wear.slc_erases;
    let mga = report(SchemeKind::Mga).wear.slc_erases;
    let ipu = report(SchemeKind::Ipu).wear.slc_erases;
    // Paper Fig. 10(a): Baseline most SLC erases, IPU more than MGA.
    assert!(mga < ipu, "MGA ({mga}) must erase less than IPU ({ipu})");
    assert!(ipu <= base, "IPU ({ipu}) must not exceed Baseline ({base})");
    assert!(base > 0);
}

#[test]
fn figure11_ordering_mapping_memory() {
    let m = matrix();
    let norm = m.normalized_mapping(0);
    let b = m.scheme_index(SchemeKind::Baseline).unwrap();
    let g = m.scheme_index(SchemeKind::Mga).unwrap();
    let i = m.scheme_index(SchemeKind::Ipu).unwrap();
    // Paper Fig. 11: Baseline = 1.0, MGA largest (+23.7%), IPU ≈ +0.84%.
    assert!((norm[b] - 1.0).abs() < 1e-12);
    assert!(
        norm[g] > norm[i],
        "MGA ({}) must exceed IPU ({})",
        norm[g],
        norm[i]
    );
    assert!(
        norm[i] > 1.0 && norm[i] < 1.01,
        "IPU overhead {} should be <1%",
        norm[i]
    );
}

#[test]
fn figure6_ipu_spills_less_than_baseline() {
    let share = |r: &SimReport| {
        let slc = r.ftl.host_subpages_to_slc;
        let mlc = r.ftl.host_subpages_to_mlc;
        mlc as f64 / (slc + mlc).max(1) as f64
    };
    let base = share(report(SchemeKind::Baseline));
    let ipu = share(report(SchemeKind::Ipu));
    // Paper Fig. 6: IPU completes the fewest writes in the MLC region —
    // intra-page updates keep absorbing hot writes when the cache is under
    // pressure.
    assert!(
        ipu < base,
        "IPU MLC write share ({ipu:.3}) must be below Baseline's ({base:.3})"
    );
}

#[test]
fn figure5_partial_programming_beats_baseline() {
    let base = report(SchemeKind::Baseline).overall_latency.mean_ns();
    let mga = report(SchemeKind::Mga).overall_latency.mean_ns();
    let ipu = report(SchemeKind::Ipu).overall_latency.mean_ns();
    // Paper Fig. 5: both partial-programming schemes improve on Baseline
    // (−6.4% / −14.9%). Our reproduction preserves that both are ≤ Baseline;
    // see EXPERIMENTS.md for the IPU-vs-MGA discussion.
    assert!(mga < base, "MGA ({mga}) must beat Baseline ({base})");
    assert!(
        ipu <= base * 1.01,
        "IPU ({ipu}) must not lose to Baseline ({base})"
    );
}

#[test]
fn figure7_ipu_uses_all_three_levels() {
    // Distribution indices follow BlockLevel: [HighDensity, Work, Monitor, Hot].
    let d = report(SchemeKind::Ipu).ftl.level_distribution();
    assert!(d[1] > d[2] && d[1] > d[3], "Work must dominate: {d:?}");
    assert!(d[2] > 0.01, "Monitor unused: {d:?}");
    assert!(d[3] > 0.01, "Hot unused: {d:?}");
    let total: f64 = d.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}

#[test]
fn intra_page_updates_dominate_ipu_update_handling() {
    let r = report(SchemeKind::Ipu);
    assert!(
        r.ftl.intra_page_updates > r.ftl.upgraded_writes,
        "intra-page must dominate"
    );
    assert!(r.ftl.upgraded_writes > 0, "upgrades must occur");
    // Baseline and MGA never do intra-page updates.
    assert_eq!(report(SchemeKind::Baseline).ftl.intra_page_updates, 0);
    assert_eq!(report(SchemeKind::Mga).ftl.intra_page_updates, 0);
}

#[test]
fn partial_program_counters_match_scheme_semantics() {
    // Baseline never partial-programs (single program per page, but sub-full
    // first programs still count as "partial" in the device's sense of
    // covering fewer subpages — so check program op budget instead).
    let base = report(SchemeKind::Baseline);
    let mga = report(SchemeKind::Mga);
    let ipu = report(SchemeKind::Ipu);
    assert!(
        base.device.in_page_disturb_events == 0,
        "Baseline must have no in-page disturb"
    );
    assert!(
        mga.device.in_page_disturb_events > 0,
        "MGA packing must disturb in-page data"
    );
    assert!(
        ipu.device.in_page_disturb_events > 0,
        "IPU updates disturb obsolete versions"
    );
    // MGA's disturbed data is *valid* (others' data); IPU's is its own
    // obsolete version — visible as MGA's higher read error rate, asserted in
    // figure8_ordering. Here check volumes are comparable magnitudes.
    assert!(mga.device.partial_programs > 0);
    assert!(ipu.device.partial_programs > 0);
}

//! Host-interface configuration: tenants, queue depth, arbitration policy.

use ipu_flash::Nanos;
use serde::{Deserialize, Serialize};

/// How the host controller picks the next submission queue to service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbitrationPolicy {
    /// Equal turns over non-empty queues.
    RoundRobin,
    /// Service shares proportional to each tenant's `weight`.
    WeightedRoundRobin,
    /// Always the lowest `priority` value with work; ties round-robin.
    StrictPriority,
}

impl ArbitrationPolicy {
    /// Parses the CLI spelling (`rr`, `wrr`, `prio`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "rr" | "round-robin" => Ok(ArbitrationPolicy::RoundRobin),
            "wrr" | "weighted" => Ok(ArbitrationPolicy::WeightedRoundRobin),
            "prio" | "priority" => Ok(ArbitrationPolicy::StrictPriority),
            other => Err(format!(
                "unknown arbitration policy `{other}` (rr | wrr | prio)"
            )),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            ArbitrationPolicy::RoundRobin => "rr",
            ArbitrationPolicy::WeightedRoundRobin => "wrr",
            ArbitrationPolicy::StrictPriority => "prio",
        }
    }
}

/// One tenant (one submission/completion queue pair).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSpec {
    pub name: String,
    /// Share under weighted round-robin (≥ 1).
    pub weight: u32,
    /// Class under strict priority; **lower is more urgent** (NVMe style).
    pub priority: u32,
}

impl TenantSpec {
    pub fn new(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            priority: 0,
        }
    }

    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "tenant weight must be ≥ 1");
        self.weight = weight;
        self
    }

    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Parses a CLI tenant list. Either a bare count (`"3"` → three equal
    /// tenants `t0..t2`) or comma-separated `name[:weight[:priority]]`
    /// entries, e.g. `"db:4:0,log:1:1"`.
    pub fn parse_list(spec: &str) -> Result<Vec<TenantSpec>, String> {
        if let Ok(n) = spec.parse::<usize>() {
            if n == 0 {
                return Err("tenant count must be ≥ 1".into());
            }
            return Ok((0..n).map(|i| TenantSpec::new(format!("t{i}"))).collect());
        }
        let mut tenants = Vec::new();
        for entry in spec.split(',') {
            let mut parts = entry.split(':');
            let name = parts.next().filter(|s| !s.is_empty()).ok_or_else(|| {
                format!("empty tenant name in `{spec}` (want name[:weight[:priority]])")
            })?;
            let mut t = TenantSpec::new(name);
            if let Some(w) = parts.next() {
                let w: u32 = w
                    .parse()
                    .map_err(|_| format!("bad weight `{w}` for tenant `{name}`"))?;
                if w == 0 {
                    return Err(format!("tenant `{name}`: weight must be ≥ 1"));
                }
                t.weight = w;
            }
            if let Some(p) = parts.next() {
                t.priority = p
                    .parse()
                    .map_err(|_| format!("bad priority `{p}` for tenant `{name}`"))?;
            }
            if let Some(extra) = parts.next() {
                return Err(format!("unexpected `:{extra}` in tenant `{entry}`"));
            }
            tenants.push(t);
        }
        Ok(tenants)
    }
}

/// Full host-interface configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Bound on per-tenant outstanding requests (submitted + in flight).
    pub queue_depth: usize,
    pub arbitration: ArbitrationPolicy,
    /// Controller time to fetch/decode one command. The dispatcher is a
    /// serial resource: with a non-zero overhead it becomes the arbitration
    /// bottleneck under saturation; at 0 (the default) dispatch is free and
    /// closed-loop QD=1 reduces exactly to serialized open-loop replay.
    pub dispatch_overhead_ns: Nanos,
    pub tenants: Vec<TenantSpec>,
}

impl HostConfig {
    pub fn new(
        queue_depth: usize,
        arbitration: ArbitrationPolicy,
        tenants: Vec<TenantSpec>,
    ) -> Self {
        assert!(queue_depth >= 1, "queue depth must be ≥ 1");
        assert!(!tenants.is_empty(), "at least one tenant required");
        HostConfig {
            queue_depth,
            arbitration,
            dispatch_overhead_ns: 0,
            tenants,
        }
    }

    /// Single tenant, round-robin (degenerate), given depth.
    pub fn single(queue_depth: usize) -> Self {
        HostConfig::new(
            queue_depth,
            ArbitrationPolicy::RoundRobin,
            vec![TenantSpec::new("t0")],
        )
    }

    pub fn with_dispatch_overhead(mut self, ns: Nanos) -> Self {
        self.dispatch_overhead_ns = ns;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_policy_spellings() {
        assert_eq!(
            ArbitrationPolicy::parse("rr").unwrap(),
            ArbitrationPolicy::RoundRobin
        );
        assert_eq!(
            ArbitrationPolicy::parse("wrr").unwrap(),
            ArbitrationPolicy::WeightedRoundRobin
        );
        assert_eq!(
            ArbitrationPolicy::parse("prio").unwrap(),
            ArbitrationPolicy::StrictPriority
        );
        assert!(ArbitrationPolicy::parse("fifo").is_err());
    }

    #[test]
    fn parses_tenant_count() {
        let ts = TenantSpec::parse_list("3").unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[1].name, "t1");
        assert!(ts.iter().all(|t| t.weight == 1 && t.priority == 0));
    }

    #[test]
    fn parses_tenant_specs() {
        let ts = TenantSpec::parse_list("db:4:0,log:1:1,scan").unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0], TenantSpec::new("db").with_weight(4).with_priority(0));
        assert_eq!(
            ts[1],
            TenantSpec::new("log").with_weight(1).with_priority(1)
        );
        assert_eq!(ts[2], TenantSpec::new("scan"));
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(TenantSpec::parse_list("0").is_err());
        assert!(TenantSpec::parse_list("a:0").is_err());
        assert!(TenantSpec::parse_list("a:x").is_err());
        assert!(TenantSpec::parse_list("a:1:2:3").is_err());
        assert!(TenantSpec::parse_list(":2").is_err());
    }

    #[test]
    fn config_round_trips_json() {
        let cfg = HostConfig::new(
            16,
            ArbitrationPolicy::WeightedRoundRobin,
            TenantSpec::parse_list("db:4:0,log:1:1").unwrap(),
        )
        .with_dispatch_overhead(1_500);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: HostConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}

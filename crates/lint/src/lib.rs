#![forbid(unsafe_code)]
//! `ipu-lint` — project-specific static analysis for the workspace.
//!
//! The crates in this workspace carry invariants that `rustc`/`clippy` cannot
//! see: the replay cache promises bit-identical re-runs, the perf gate
//! compares exact counter fingerprints, and the power-loss oracle assumes
//! host-reachable FTL paths never panic. This crate enforces those invariants
//! as ~8 lexical rules (see [`rules`]) over a hand-rolled, comment- and
//! string-aware token stream (see [`lexer`]) — deliberately *not* a full
//! parser: every rule is scoped so that token-level matching is sound for the
//! code this workspace actually contains, and fixture tests pin each rule's
//! fire/stay-silent behaviour.
//!
//! Findings are suppressible only with an inline comment carrying a reason:
//!
//! ```text
//! // ipu-lint: allow(no-panic) — validated at construction, cannot fail here
//! ```
//!
//! placed on the offending line or the line directly above it. An allow
//! without a reason, or naming an unknown rule, is itself a finding and
//! suppresses nothing.

pub mod lexer;
pub mod rules;

use lexer::{lex, Comment, Token};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One rule violation (or meta-violation) at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `no-panic` (see [`rules::RULE_IDS`]), or one of
    /// the meta rules `allow-missing-reason` / `allow-unknown-rule`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes, e.g. `crates/ftl/src/error.rs`.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    /// Directory name under `crates/`, e.g. `ftl`.
    pub crate_name: &'a str,
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Final path component, e.g. `main.rs`.
    pub file_name: &'a str,
    /// Whether this file is a crate root (`src/lib.rs` or `src/main.rs`).
    pub is_crate_root: bool,
    /// The file's token stream (comments and string contents already removed).
    pub tokens: &'a [Token],
    /// Comment side channel, in source order.
    pub comments: &'a [Comment],
    /// Parallel to `tokens`: `true` where the token sits inside a
    /// `#[cfg(test)]` item.
    pub is_test: &'a [bool],
}

/// Result of linting one file or a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of findings silenced by a valid allow comment.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// A parsed `// ipu-lint: allow(<rule>) — <reason>` comment.
struct Allow {
    rule: String,
    line: u32,
    valid: bool,
}

/// Marker that introduces an allow comment.
const ALLOW_MARKER: &str = "ipu-lint:";

/// Lints a single file's source text. `rel_path` selects which scoped rules
/// apply (see the scope tables in [`rules`]); fixture tests use this entry
/// point directly to lint files that live outside any real crate.
pub fn lint_str(
    crate_name: &str,
    rel_path: &str,
    is_crate_root: bool,
    src: &str,
) -> (Vec<Finding>, usize) {
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let ctx = FileCtx {
        crate_name,
        rel_path,
        file_name,
        is_crate_root,
        tokens: &lexed.tokens,
        comments: &lexed.comments,
        is_test: &mask,
    };

    let mut raw = Vec::new();
    rules::run_all(&ctx, &mut raw);

    let mut meta = Vec::new();
    let allows = parse_allows(&lexed.comments, rel_path, &mut meta);

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let hit = allows
            .iter()
            .any(|a| a.valid && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line));
        if hit {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.extend(meta);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    (findings, suppressed)
}

/// Extracts allow comments, emitting `allow-missing-reason` /
/// `allow-unknown-rule` meta findings (never suppressible) for malformed ones.
fn parse_allows(comments: &[Comment], rel_path: &str, meta: &mut Vec<Finding>) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments *describe* the allow syntax; only plain comments
        // can invoke it.
        if c.doc {
            continue;
        }
        let Some(pos) = c.text.find(ALLOW_MARKER) else {
            continue;
        };
        let rest = c.text[pos + ALLOW_MARKER.len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            meta.push(Finding {
                rule: "allow-unknown-rule",
                file: rel_path.to_string(),
                line: c.line,
                message:
                    "malformed ipu-lint comment — expected `ipu-lint: allow(<rule>) — <reason>`"
                        .to_string(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            meta.push(Finding {
                rule: "allow-unknown-rule",
                file: rel_path.to_string(),
                line: c.line,
                message: "unterminated allow(...) in ipu-lint comment".to_string(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        let mut valid = true;
        if !rules::RULE_IDS.contains(&rule.as_str()) {
            meta.push(Finding {
                rule: "allow-unknown-rule",
                file: rel_path.to_string(),
                line: c.line,
                message: format!("allow names unknown rule `{rule}`"),
            });
            valid = false;
        }
        if reason.is_empty() {
            meta.push(Finding {
                rule: "allow-missing-reason",
                file: rel_path.to_string(),
                line: c.line,
                message: format!("allow({rule}) has no reason — the reason is mandatory"),
            });
            valid = false;
        }
        out.push(Allow {
            rule,
            line: c.line,
            valid,
        });
    }
    out
}

/// Computes the `#[cfg(test)]` mask: `mask[i]` is true when token `i` belongs
/// to an item annotated `#[cfg(test)]` (typically a `mod tests { ... }`).
pub fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")")
            && toks[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // The annotated item runs to its brace-matched body (fn/mod/impl/...)
        // or to a `;` at depth 0 (e.g. `use` declarations).
        let mut j = i + 7;
        let mut depth = 0i32;
        let end = loop {
            if j >= toks.len() {
                break toks.len().saturating_sub(1);
            }
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break j,
                "{" if depth == 0 => {
                    let mut b = 0i32;
                    let mut k = j;
                    break loop {
                        if k >= toks.len() {
                            break toks.len() - 1;
                        }
                        if toks[k].is_punct("{") {
                            b += 1;
                        } else if toks[k].is_punct("}") {
                            b -= 1;
                            if b == 0 {
                                break k;
                            }
                        }
                        k += 1;
                    };
                }
                _ => {}
            }
            j += 1;
        };
        for m in &mut mask[i..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Lints every `crates/*/src/**/*.rs` file under `root`, in sorted order.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut report = LintReport::default();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = format!(
                "crates/{}/src/{}",
                crate_name,
                path.strip_prefix(&src_dir)
                    .map(|p| p.to_string_lossy().replace('\\', "/"))
                    .unwrap_or_default()
            );
            let is_crate_root = rel == format!("crates/{crate_name}/src/lib.rs")
                || rel == format!("crates/{crate_name}/src/main.rs");
            let src = fs::read_to_string(&path)?;
            let (findings, suppressed) = lint_str(&crate_name, &rel, is_crate_root, &src);
            report.findings.extend(findings);
            report.suppressed += suppressed;
            report.files_scanned += 1;
        }
    }
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let live = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .unwrap();
        let unw = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        let after = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("after"))
            .unwrap();
        assert!(!mask[live]);
        assert!(mask[unw]);
        assert!(!mask[after]);
    }

    #[test]
    fn allow_with_reason_suppresses_same_line_and_next_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // ipu-lint: allow(no-panic) — checked by caller\n    x.unwrap()\n}";
        let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/x.rs", false, src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);

        let trailing =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // ipu-lint: allow(no-panic) — checked";
        let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/x.rs", false, trailing);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn allow_without_reason_is_a_finding_and_does_not_suppress() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    // ipu-lint: allow(no-panic)\n    x.unwrap()\n}";
        let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/x.rs", false, src);
        assert_eq!(suppressed, 0);
        assert!(findings.iter().any(|f| f.rule == "allow-missing-reason"));
        assert!(findings.iter().any(|f| f.rule == "no-panic"));
    }

    #[test]
    fn doc_comments_do_not_act_as_allows() {
        let src = "/// Example: `// ipu-lint: allow(no-panic) — reason`\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/x.rs", false, src);
        assert_eq!(suppressed, 0);
        assert!(findings.iter().any(|f| f.rule == "no-panic"));
        assert!(!findings.iter().any(|f| f.rule.starts_with("allow-")));
    }

    #[test]
    fn allow_unknown_rule_is_a_finding() {
        let src = "// ipu-lint: allow(no-such-rule) — whatever\nfn f() {}";
        let (findings, _) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert!(findings.iter().any(|f| f.rule == "allow-unknown-rule"));
    }

    #[test]
    fn allow_far_from_violation_does_not_suppress() {
        let src = "// ipu-lint: allow(no-panic) — too far away\n\n\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/x.rs", false, src);
        assert_eq!(suppressed, 0);
        assert!(findings.iter().any(|f| f.rule == "no-panic"));
    }

    #[test]
    fn findings_sorted_by_file_line_rule() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); panic!(\"x\"); }\nfn g(y: Option<u32>) { y.unwrap(); }";
        let (findings, _) = lint_str("ftl", "crates/ftl/src/x.rs", false, src);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}

//! Latency statistics.
//!
//! The implementation lives in `ipu-host` (the host interface aggregates
//! per-tenant latency with the same histogram); this module re-exports it so
//! existing `ipu_sim::metrics::LatencyStats` / `ipu_sim::LatencyStats` paths
//! keep working.

pub use ipu_host::metrics::{LatencyStats, ReliabilityStats};

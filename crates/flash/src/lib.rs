//! # ipu-flash — NAND flash device model
//!
//! A from-scratch NAND flash device model in the spirit of SSDsim, extended with
//! the features required by the ICPP'21 paper *"Intra-page Cache Update in
//! SLC-mode with Partial Programming in High Density SSDs"*:
//!
//! * **Dual-mode blocks** — any block can be erased into SLC-mode (64 pages per
//!   block, fast, high endurance) or MLC-mode (128 pages per block, dense, slow).
//! * **Partial programming** — a 16 KB page is divided into four 4 KB subpages;
//!   SLC-mode pages may be programmed up to four times, each program covering a
//!   contiguous run of free subpages.
//! * **Program disturb tracking** — every partial program disturbs previously
//!   programmed subpages in the *same* page (in-page disturb) and programmed
//!   subpages in *neighbouring* pages of the same block (neighbour disturb).
//! * **Raw bit error rate model** — RBER grows exponentially with P/E cycles and
//!   is amplified multiplicatively by accumulated disturb, calibrated against the
//!   two published points of the paper's Figure 2 (conventional programming reads
//!   2.8·10⁻⁴ and partial programming 3.8·10⁻⁴ at 4000 P/E cycles).
//! * **BCH ECC latency model** — per-read decode latency interpolated between the
//!   paper's `ECC min time` and `ECC max time` according to the expected raw bit
//!   error count relative to the code's correction strength (Table 2).
//!
//! The model is fully deterministic: error rates are expected values, not random
//! samples, so simulation results are reproducible bit-for-bit.
//!
//! ## Layering
//!
//! This crate owns *physical* state only: geometry, subpage program state,
//! disturb counters, per-block P/E counts and operation timing. Logical state
//! (address mapping, hotness, GC bookkeeping) lives in `ipu-ftl`.
//!
//! ## Quick example
//!
//! ```
//! use ipu_flash::{FlashDevice, DeviceConfig, CellMode, Ppa, Spa};
//!
//! let cfg = DeviceConfig::small_for_tests();
//! let mut dev = FlashDevice::new(cfg);
//! let page = Ppa::new(0, 0, 0, 0, 0, 0);
//! dev.set_block_mode(page.block_addr(), CellMode::Slc);
//!
//! // Program the first two subpages of page 0, then partially program one more.
//! let first = dev.program(Spa::new(page, 0), 2).unwrap();
//! let second = dev.program(Spa::new(page, 2), 1).unwrap();
//! assert_eq!(second.in_page_disturbed, 2); // the first two subpages were disturbed
//! assert!(first.latency_ns > 0);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod device;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod mode;
pub mod state;
pub mod time;
pub mod wear;

pub use config::{DeviceConfig, TimingConfig};
pub use device::{EraseResult, FlashDevice, FlashError, ProgramResult, ReadResult};
pub use error::ber::BerModel;
pub use error::disturb::DisturbConfig;
pub use error::ecc::EccModel;
pub use error::sampling::ErrorMode;
pub use fault::{FaultProfile, FaultScope, RetryLadder, RetryStep};
pub use geometry::{BlockAddr, FlashGeometry, Ppa, Spa};
pub use mode::CellMode;
pub use state::{BlockState, PageState, SubpageState, MAX_SUBPAGES_PER_PAGE};
pub use time::{ms_to_ns, ns_to_ms, Nanos};
pub use wear::WearTracker;

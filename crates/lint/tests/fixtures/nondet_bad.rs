//! Fixture: order-sensitive reductions over unordered containers — hash
//! iteration inside a parallel_map closure, and f64 accumulation anywhere.

use std::collections::HashMap;

pub fn shard_sums(shards: HashMap<u32, u64>, v: Vec<u32>) -> Vec<u64> {
    parallel_map(v, 4, move |x| {
        let mut acc = 0u64;
        for (_, s) in &shards {
            acc += s;
        }
        acc + x as u64
    })
}

pub fn mean_latency(m: &HashMap<u32, f64>) -> f64 {
    let mut sum = 0.0;
    for (_, v) in m {
        sum += v;
    }
    sum / 7.0
}

#!/usr/bin/env python3
"""Performance-regression gate: compare a fresh benchmark profile against
the committed baseline.

Usage: check_perf.py <BENCH_profile.json> <ci/bench_baseline.json>

Both files are `BenchProfile` JSON written by `ipu-sim profile`. The gate:

1. refuses to compare across schema versions or different workloads — the
   monotonic counter fingerprint (requests, GC runs, device programs, ...)
   must match the baseline exactly, otherwise the two runs did not simulate
   the same work and the throughput numbers are meaningless;
2. fails when aggregate throughput (simulated ops per wall second) drops
   more than THRESHOLD (default 25%) below the baseline;
3. prints the per-phase wall-time comparison either way, so a regression's
   guilty phase is visible straight from the CI log.

Refreshing the baseline
-----------------------
After an intentional perf change (or a runner-hardware change), regenerate
with the same fixed workload the gate runs and commit the result:

    cargo run --release -p ipu-cli -- profile \
        --traces ts0 --scale 0.02 --threads 1 --out ci/bench_baseline.json

Tuning: set PERF_GATE_THRESHOLD (a fraction, e.g. 0.25) to override the
allowed regression; CI runners with noisy neighbours may need headroom.
"""

import json
import os
import sys

DEFAULT_THRESHOLD = 0.25


def load(path):
    with open(path) as f:
        return json.load(f)


def counters_map(profile):
    return {name: value for name, value in profile["counters"]["counters"]}


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = load(sys.argv[1])
    baseline = load(sys.argv[2])
    threshold = float(os.environ.get("PERF_GATE_THRESHOLD", DEFAULT_THRESHOLD))

    if candidate["schema_version"] != baseline["schema_version"]:
        print(
            f"FAIL: schema version {candidate['schema_version']} != baseline "
            f"{baseline['schema_version']}; refresh ci/bench_baseline.json "
            f"(see this script's docstring)",
            file=sys.stderr,
        )
        return 1

    # Workload identity: the counter fingerprints must agree exactly.
    cand_counters = counters_map(candidate)
    base_counters = counters_map(baseline)
    if cand_counters != base_counters:
        drift = sorted(set(cand_counters) | set(base_counters))
        print("FAIL: workload fingerprint mismatch — runs are not comparable:",
              file=sys.stderr)
        for name in drift:
            b, c = base_counters.get(name, 0), cand_counters.get(name, 0)
            if b != c:
                print(f"  {name}: baseline {b} != candidate {c}", file=sys.stderr)
        print(
            "If the simulation intentionally changed, refresh the baseline "
            "(see this script's docstring).",
            file=sys.stderr,
        )
        return 1

    base_tp = baseline["sim_ops_per_sec"]
    cand_tp = candidate["sim_ops_per_sec"]
    ratio = cand_tp / base_tp if base_tp > 0 else float("inf")

    print(f"throughput: baseline {base_tp:,.0f} ops/s, candidate "
          f"{cand_tp:,.0f} ops/s ({ratio:.2%} of baseline)")
    print(f"{'phase':<18} {'baseline(s)':>12} {'candidate(s)':>13} {'ratio':>7}")
    base_phases = {p["phase"]: p for p in baseline["phases"]}
    for p in candidate["phases"]:
        b = base_phases.get(p["phase"], {}).get("wall_seconds", 0.0)
        c = p["wall_seconds"]
        r = f"{c / b:.2f}x" if b > 0 else "new"
        print(f"{p['phase']:<18} {b:>12.3f} {c:>13.3f} {r:>7}")

    if ratio < 1.0 - threshold:
        print(
            f"FAIL: throughput regressed {1.0 - ratio:.1%} "
            f"(allowed {threshold:.0%}). If intentional, refresh "
            f"ci/bench_baseline.json (see this script's docstring).",
            file=sys.stderr,
        )
        return 1

    print(f"perf gate OK (allowed regression {threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

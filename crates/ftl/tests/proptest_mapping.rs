//! Property-based tests for the mapping layer in isolation: forward map /
//! owner table algebra and the chunk-summary used by the Figure 11 model.

use ipu_flash::{FlashGeometry, Ppa, Spa};
use ipu_ftl::{MappingTable, OwnerTable};
use proptest::prelude::*;

fn arb_spa() -> impl Strategy<Value = Spa> {
    // Addresses within the small test geometry (16 blocks × 8 pages × 4 subs).
    (0u32..16, 0u32..8, 0u8..4)
        .prop_map(|(block, page, sub)| Spa::new(Ppa::new(0, 0, 0, 0, block, page), sub))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The forward map behaves like a HashMap: after any insert/remove
    /// sequence, lookups agree with a model map, and `chunk_summary` counts
    /// exactly the distinct mapped chunks.
    #[test]
    fn forward_map_matches_model(
        ops in proptest::collection::vec((0u64..64, arb_spa(), any::<bool>()), 1..200)
    ) {
        let mut map = MappingTable::new();
        let mut model = std::collections::HashMap::new();
        for (lsn, spa, insert) in ops {
            if insert {
                prop_assert_eq!(map.insert(lsn, spa), model.insert(lsn, spa));
            } else {
                prop_assert_eq!(map.remove(lsn), model.remove(&lsn));
            }
        }
        prop_assert_eq!(map.len(), model.len());
        for (&lsn, &spa) in &model {
            prop_assert_eq!(map.lookup(lsn), Some(spa));
        }
        let summary = map.chunk_summary(4);
        let chunks: std::collections::HashSet<u64> = model.keys().map(|l| l / 4).collect();
        prop_assert_eq!(summary.mapped_chunks, chunks.len() as u64);
        prop_assert_eq!(summary.mapped_subpages, model.len() as u64);
        prop_assert!(summary.scattered_chunks <= summary.mapped_chunks);
    }

    /// A chunk whose four subpages are identity-placed in one page is never
    /// scattered; perturbing any one subpage makes it scattered.
    #[test]
    fn scatter_detection_is_exact(block in 0u32..16, page in 0u32..8, perturb in 0u8..4) {
        let mut map = MappingTable::new();
        let ppa = Ppa::new(0, 0, 0, 0, block, page);
        for s in 0..4u8 {
            map.insert(s as u64, Spa::new(ppa, s));
        }
        prop_assert_eq!(map.chunk_summary(4).scattered_chunks, 0);

        // Move one subpage to a different offset (rotate within the page).
        let new_off = (perturb + 1) % 4;
        map.insert(perturb as u64, Spa::new(ppa, new_off));
        prop_assert_eq!(map.chunk_summary(4).scattered_chunks, 1);
    }

    /// Owner-table set/clear algebra matches a model, and clear_block drops
    /// exactly that block's entries.
    #[test]
    fn owner_table_matches_model(
        ops in proptest::collection::vec((arb_spa(), 0u64..64, any::<bool>()), 1..200),
        cleared_block in 0u32..16,
    ) {
        let g = FlashGeometry::small_for_tests();
        let mut owners = OwnerTable::new(&g);
        let mut model: std::collections::HashMap<(u64, Spa), u64> =
            std::collections::HashMap::new();
        for (spa, lsn, set) in ops {
            let bi = g.block_index(spa.ppa.block_addr());
            if set {
                owners.set(bi, spa, lsn);
                model.insert((bi, spa), lsn);
            } else {
                owners.clear(bi, spa);
                model.remove(&(bi, spa));
            }
            prop_assert_eq!(owners.owner(bi, spa), model.get(&(bi, spa)).copied());
        }
        // clear_block removes all owners of that block and nothing else.
        let cleared_idx =
            g.block_index(ipu_flash::BlockAddr::new(0, 0, 0, 0, cleared_block));
        owners.clear_block(cleared_idx);
        model.retain(|&(bi, _), _| bi != cleared_idx);
        for (&(bi, spa), &lsn) in &model {
            prop_assert_eq!(owners.owner(bi, spa), Some(lsn));
        }
        let probe = Spa::new(Ppa::new(0, 0, 0, 0, cleared_block, 0), 0);
        prop_assert_eq!(owners.owner(cleared_idx, probe), None);
    }
}

//! Fixture: R4-conforming config file — every deserialized field defaulted,
//! and a plain struct that the rule must ignore.

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixtureConfig {
    #[serde(default)]
    pub alpha: u32,
    #[serde(default)]
    pub beta: u32,
}

#[derive(Debug, Clone)]
pub struct NotDeserialized {
    pub plain: u32,
}

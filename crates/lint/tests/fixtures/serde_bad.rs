//! Fixture: R4 (serde-default) violation, linted as `crates/core/src/config.rs`.

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixtureConfig {
    #[serde(default)]
    pub alpha: u32,
    pub beta: u32,
    #[serde(rename = "g", default)]
    pub gamma: f64,
}

//! Core FTL type vocabulary.

use serde::{Deserialize, Serialize};

/// Logical subpage number: byte offset / 4 KB. The FTL's mapping unit.
pub type Lsn = u64;

/// Logical chunk number: a page-sized (16 KB) aligned group of subpages.
/// `Lcn = Lsn / subpages_per_page`. One write chunk targets one flash page.
pub type Lcn = u64;

/// The block hierarchy of the paper's §3.1, ascending hotness order.
///
/// `block_flag (0, 1, 2, 3)` stand for (High-density, Work, Monitor, Hot) in
/// the paper's Algorithm 1. `HighDensity` is the native MLC region; the other
/// three are SLC-mode cache levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BlockLevel {
    /// Level 0: the native high-density (MLC) region.
    HighDensity = 0,
    /// Level 1: SLC-mode blocks receiving new writes.
    Work = 1,
    /// Level 2: SLC-mode blocks receiving first-time upgrades.
    Monitor = 2,
    /// Level 3: SLC-mode blocks holding the hottest update data.
    Hot = 3,
}

impl BlockLevel {
    /// All SLC-mode cache levels, ascending.
    pub const SLC_LEVELS: [BlockLevel; 3] =
        [BlockLevel::Work, BlockLevel::Monitor, BlockLevel::Hot];

    /// Numeric `block_flag` as in the paper's Algorithm 1.
    #[inline]
    pub fn flag(self) -> u8 {
        self as u8
    }

    /// Construct from a numeric flag, clamping into the valid range.
    pub fn from_flag_clamped(flag: i32) -> BlockLevel {
        match flag {
            i32::MIN..=0 => BlockLevel::HighDensity,
            1 => BlockLevel::Work,
            2 => BlockLevel::Monitor,
            _ => BlockLevel::Hot,
        }
    }

    /// One level up (upgraded data movement), saturating at `Hot`.
    pub fn promoted(self) -> BlockLevel {
        BlockLevel::from_flag_clamped(self.flag() as i32 + 1)
    }

    /// One level down (degraded data movement), saturating at `HighDensity`.
    pub fn demoted(self) -> BlockLevel {
        BlockLevel::from_flag_clamped(self.flag() as i32 - 1)
    }

    /// Whether this level lives in the SLC-mode cache.
    pub fn is_slc(self) -> bool {
        self != BlockLevel::HighDensity
    }

    /// Display label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            BlockLevel::HighDensity => "high-density",
            BlockLevel::Work => "work",
            BlockLevel::Monitor => "monitor",
            BlockLevel::Hot => "hot",
        }
    }
}

impl std::fmt::Display for BlockLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_match_algorithm1() {
        assert_eq!(BlockLevel::HighDensity.flag(), 0);
        assert_eq!(BlockLevel::Work.flag(), 1);
        assert_eq!(BlockLevel::Monitor.flag(), 2);
        assert_eq!(BlockLevel::Hot.flag(), 3);
    }

    #[test]
    fn promotion_saturates_at_hot() {
        assert_eq!(BlockLevel::Work.promoted(), BlockLevel::Monitor);
        assert_eq!(BlockLevel::Monitor.promoted(), BlockLevel::Hot);
        assert_eq!(BlockLevel::Hot.promoted(), BlockLevel::Hot);
        assert_eq!(BlockLevel::HighDensity.promoted(), BlockLevel::Work);
    }

    #[test]
    fn demotion_saturates_at_high_density() {
        assert_eq!(BlockLevel::Hot.demoted(), BlockLevel::Monitor);
        assert_eq!(BlockLevel::Work.demoted(), BlockLevel::HighDensity);
        assert_eq!(BlockLevel::HighDensity.demoted(), BlockLevel::HighDensity);
    }

    #[test]
    fn slc_levels_exclude_high_density() {
        assert!(!BlockLevel::HighDensity.is_slc());
        for l in BlockLevel::SLC_LEVELS {
            assert!(l.is_slc());
        }
    }
}

//! The `IPU` scheme — the paper's contribution (§3).
//!
//! **Intra-page update:** a small update is partial-programmed into the free
//! subpages of the *very page* holding the previous version, which is then
//! invalidated. The only data disturbed in-page is the obsolete version, so
//! in-page disturb on valid data disappears (Figure 8), and no general
//! second-level mapping is needed — a page only ever holds one chunk's
//! versions, so a 2-bit live-offset per SLC page suffices (Figure 11).
//!
//! **Upgraded movement:** when the update does not fit (no free run, NOP
//! budget spent, or the old copy lives in MLC), the data moves to a fresh page
//! one level *up* the Work → Monitor → Hot hierarchy — repeated updates are
//! exactly what makes data hot (Figure 3, ① ② ③).
//!
//! **ISR GC with degraded movement:** the victim is the SLC block maximizing
//! Equation 1's invalid-subpage ratio, with never-updated valid subpages
//! weighted by age (Equation 2). Valid pages that were updated in place stay
//! at their level; never-updated (cold) pages demote one level, falling out of
//! the cache into MLC from the Work level (Figure 4).

use ipu_flash::{CellMode, FlashDevice, Nanos, Ppa, MAX_SUBPAGES_PER_PAGE};
use ipu_trace::IoRequest;

use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::memory::MappingMemory;
use crate::ops::{FlashOpKind, OpBatch, RoundOrigin};
use crate::stats::FtlStats;
use crate::types::{BlockLevel, Lsn};

use super::common::FtlCore;
use super::FtlScheme;

/// The paper's intra-page update FTL.
#[derive(Debug)]
pub struct IpuFtl {
    core: FtlCore,
}

impl IpuFtl {
    pub fn new(dev: &mut FlashDevice, cfg: FtlConfig) -> Self {
        IpuFtl {
            core: FtlCore::new(dev, cfg),
        }
    }

    /// Handles one chunk of a write request (Algorithm 1, lines 2–13).
    fn write_chunk(
        &mut self,
        lsns: &[Lsn],
        now: Nanos,
        dev: &mut FlashDevice,
        batch: &mut OpBatch,
    ) -> Result<(), FtlError> {
        // Partition the chunk's subpages by where their current version lives.
        // A chunk is a contiguous run of at most one page's subpages, so the
        // partition fits in stack buffers and the mapping table is probed once
        // per bucket span instead of once per subpage.
        debug_assert!(lsns.len() <= MAX_SUBPAGES_PER_PAGE);
        debug_assert!(lsns.windows(2).all(|w| w[1] == w[0] + 1));
        let Some(&first) = lsns.first() else {
            return Ok(());
        };
        let mut new_lsns = [0 as Lsn; MAX_SUBPAGES_PER_PAGE];
        let mut new_n = 0usize;
        let mut group_ppas = [Ppa::new(0, 0, 0, 0, 0, 0); MAX_SUBPAGES_PER_PAGE];
        let mut group_lsns = [[0 as Lsn; MAX_SUBPAGES_PER_PAGE]; MAX_SUBPAGES_PER_PAGE];
        let mut group_lens = [0u8; MAX_SUBPAGES_PER_PAGE];
        let mut ng = 0usize;
        self.core
            .map
            .lookup_span(first, first + lsns.len() as u64, |lsn, loc| {
                let Some(spa) = loc else {
                    new_lsns[new_n] = lsn;
                    new_n += 1;
                    return;
                };
                if let Some(g) = group_ppas[..ng].iter().position(|p| *p == spa.ppa) {
                    group_lsns[g][group_lens[g] as usize] = lsn;
                    group_lens[g] += 1;
                } else {
                    group_ppas[ng] = spa.ppa;
                    group_lsns[ng][0] = lsn;
                    group_lens[ng] = 1;
                    ng += 1;
                }
            });

        // New data goes straight to a Work block (Algorithm 1 line 5).
        if new_n > 0 {
            let (ppa, _) = self.core.take_host_page(dev, BlockLevel::Work, batch)?;
            self.core.program_group(
                dev,
                ppa,
                0,
                &new_lsns[..new_n],
                FlashOpKind::HostProgram,
                now,
                batch,
            )?;
        }

        // Updates: intra-page if the old page can absorb them, else upgrade.
        for g in 0..ng {
            let old_ppa = group_ppas[g];
            let group = &group_lsns[g][..group_lens[g] as usize];
            let addr = old_ppa.block_addr();
            let block = dev.block(addr);
            let intra_offset = if block.mode() == CellMode::Slc {
                let page = block.page(old_ppa.page);
                if page.program_ops() < dev.config().max_partial_programs {
                    page.find_free_run(group.len() as u8)
                } else {
                    None
                }
            } else {
                None
            };

            match intra_offset {
                Some(off) => {
                    // Intra-page update (Algorithm 1 line 8): the data being
                    // disturbed by this partial program is its own obsolete
                    // version, invalidated by program_group's remap.
                    self.core.program_group(
                        dev,
                        old_ppa,
                        off,
                        group,
                        FlashOpKind::HostProgram,
                        now,
                        batch,
                    )?;
                    self.core.stats.intra_page_updates += 1;
                }
                None => {
                    // Upgraded data movement (Algorithm 1 line 11): one level
                    // up from wherever the old version lived, capped at the
                    // configured top level (3 = Hot in the paper).
                    let cur = self
                        .core
                        .meta
                        .level(self.core.block_idx(addr))
                        .unwrap_or(BlockLevel::HighDensity);
                    let cap = BlockLevel::from_flag_clamped(self.core.cfg.ipu_max_level as i32);
                    let target = cur.promoted().min(cap);
                    // Hot data never takes the MLC bypass: retaining updated
                    // data in the cache is the point of the hierarchy, and the
                    // fallback chain inside take_page already handles genuine
                    // exhaustion.
                    let (ppa, _) = self.core.take_page(dev, target, batch)?;
                    self.core.program_group(
                        dev,
                        ppa,
                        0,
                        group,
                        FlashOpKind::HostProgram,
                        now,
                        batch,
                    )?;
                    self.core.stats.upgraded_writes += 1;
                }
            }
        }
        Ok(())
    }

    /// ISR-driven GC with degraded data movement (Algorithm 1 lines 14–19).
    fn run_gc(&mut self, now: Nanos, dev: &mut FlashDevice, batch: &mut OpBatch) {
        let mut rounds = 0;
        while self.core.slc_gc_needed()
            && self.core.slc_gc_gate_open(now)
            && rounds < self.core.cfg.gc_rounds_per_write
        {
            let _span = ipu_obs::span(ipu_obs::Phase::Gc);
            batch.begin_background_round(RoundOrigin::Gc);
            rounds += 1;
            let cost_before = batch.total_latency_sum();
            let victim = if self.core.cfg.ipu_use_isr_gc {
                self.core.select_slc_victim_isr(dev, now)
            } else {
                // Ablation: plain greedy victim selection.
                self.core.select_slc_victim_greedy()
            };
            let Some(victim) = victim else { break };
            let Some((victim_addr, victim_level)) =
                self.core.meta.get(victim).map(|m| (m.addr, m.level))
            else {
                break;
            };
            let mut aborted = false;
            let mut groups = std::mem::take(&mut self.core.gc_groups);
            let groups_cap = groups.capacity();
            self.core
                .collect_victim_groups_into(dev, victim, &mut groups);
            for group in &groups {
                // Degraded movement: updated pages keep their level, cold
                // pages sink one level (Work-level cold data leaves the cache).
                let dest = if group.updated {
                    victim_level
                } else {
                    victim_level.demoted()
                };
                if self
                    .core
                    .relocate_group(dev, victim_addr, group, dest, now, batch)
                    .is_err()
                {
                    aborted = true;
                    break;
                }
            }
            if groups.capacity() != groups_cap {
                self.core.stats.scratch_grows += 1;
            }
            self.core.gc_groups = groups;
            if aborted {
                // Never erase a partially-relocated victim.
                break;
            }
            self.core.erase_victim(dev, victim, now, batch);
            let round_cost = batch.total_latency_sum() - cost_before;
            self.core.finish_slc_gc_round(now, round_cost);
        }
        self.core.run_mlc_gc_if_needed(dev, now, batch);
        self.core.run_wear_leveling_if_due(dev, now, batch);
        self.core.run_scrub_if_due(dev, now, batch);
    }
}

impl FtlScheme for IpuFtl {
    fn name(&self) -> &'static str {
        "IPU"
    }

    fn on_write_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    ) {
        self.core.begin_request(now);
        self.core.stats.host_write_requests += 1;
        for (start, len) in self.core.chunk_spans(req) {
            // A chunk is a contiguous LSN run of at most one page: stage it in
            // a stack buffer so the write path performs no heap allocation.
            let mut chunk = [0 as Lsn; MAX_SUBPAGES_PER_PAGE];
            for (i, slot) in chunk[..len as usize].iter_mut().enumerate() {
                *slot = start + i as u64;
            }
            if let Err(e) = self.write_chunk(&chunk[..len as usize], now, dev, out) {
                self.core.note_write_failure(&e, out);
            }
            self.run_gc(now, dev, out);
        }
    }

    fn on_read_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    ) {
        self.core.begin_request(now);
        if let Err(e) = self.core.host_read(req, dev, out) {
            self.core.note_read_failure(&e, out);
        }
    }

    fn power_cycle(&mut self, dev: &FlashDevice) {
        self.core.rebuild_from_flash(dev);
    }

    fn stats(&self) -> &FtlStats {
        &self.core.stats
    }

    fn mapping_memory(&self, dev: &FlashDevice) -> MappingMemory {
        let g = &dev.config().geometry;
        let slc_blocks = self.core.blocks.slc_total();
        let slc_pages = slc_blocks * g.pages_per_block_slc as u64;
        MappingMemory::ipu(self.core.logical_pages(), slc_pages, slc_blocks)
    }

    fn core(&self) -> &FtlCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut FtlCore {
        &mut self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_flash::{DeviceConfig, SubpageState};
    use ipu_trace::OpKind;

    fn setup() -> (IpuFtl, FlashDevice) {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let ftl = IpuFtl::new(&mut dev, FtlConfig::default());
        (ftl, dev)
    }

    /// A roomier SLC region (8 blocks) so Work, Monitor and Hot actives can
    /// coexist without falling back down the hierarchy.
    fn setup_roomy() -> (IpuFtl, FlashDevice) {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let cfg = FtlConfig {
            slc_ratio: 0.25,
            ..FtlConfig::default()
        };
        let ftl = IpuFtl::new(&mut dev, cfg);
        assert_eq!(ftl.core.blocks.slc_total(), 8);
        (ftl, dev)
    }

    fn w(offset: u64, size: u32) -> IoRequest {
        IoRequest::new(0, OpKind::Write, offset, size)
    }

    #[test]
    fn update_lands_in_the_same_page() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 4096), 1, &mut dev);
        let first = ftl.core.map.lookup(0).unwrap();
        ftl.on_write(&w(0, 4096), 2, &mut dev);
        let second = ftl.core.map.lookup(0).unwrap();
        assert_eq!(first.ppa, second.ppa, "update must stay intra-page");
        assert_eq!(second.subpage, first.subpage + 1);
        assert_eq!(ftl.stats().intra_page_updates, 1);
        // The old version is invalid; the disturbed in-page data is only that
        // obsolete version.
        let page = dev.block(first.ppa.block_addr()).page(first.ppa.page);
        assert_eq!(page.subpage(first.subpage), SubpageState::Invalid);
        assert_eq!(page.in_page_disturbs(first.subpage), 1);
        assert_eq!(page.in_page_disturbs(second.subpage), 0);
    }

    #[test]
    fn different_requests_never_share_a_page() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 4096), 1, &mut dev);
        ftl.on_write(&w(65536, 4096), 2, &mut dev);
        let a = ftl.core.map.lookup(0).unwrap();
        let b = ftl.core.map.lookup(16).unwrap();
        assert_ne!(a.ppa, b.ppa, "IPU must not pack foreign data into a page");
    }

    #[test]
    fn fourth_update_upgrades_to_monitor() {
        let (mut ftl, mut dev) = setup();
        // 4 KB chunk: first write + 3 intra-page updates exhaust the page,
        // the next update must move up to a Monitor block.
        for t in 0..4u64 {
            ftl.on_write(&w(0, 4096), t, &mut dev);
        }
        assert_eq!(ftl.stats().intra_page_updates, 3);
        assert_eq!(ftl.stats().upgraded_writes, 0);

        ftl.on_write(&w(0, 4096), 9, &mut dev);
        assert_eq!(ftl.stats().upgraded_writes, 1);
        let spa = ftl.core.map.lookup(0).unwrap();
        let level = ftl
            .core
            .meta
            .level(ftl.core.block_idx(spa.ppa.block_addr()));
        assert_eq!(level, Some(BlockLevel::Monitor));
        assert_eq!(spa.subpage, 0);
        assert_eq!(
            ftl.stats().host_programs_per_level[BlockLevel::Monitor as usize],
            1
        );
    }

    #[test]
    fn sustained_updates_climb_to_hot() {
        let (mut ftl, mut dev) = setup_roomy();
        // Each page absorbs 4 programs; 12 writes walk Work → Monitor → Hot.
        for t in 0..12u64 {
            ftl.on_write(&w(0, 4096), t, &mut dev);
        }
        let spa = ftl.core.map.lookup(0).unwrap();
        let level = ftl
            .core
            .meta
            .level(ftl.core.block_idx(spa.ppa.block_addr()));
        assert_eq!(level, Some(BlockLevel::Hot));
        assert_eq!(ftl.stats().upgraded_writes, 2);
        assert_eq!(ftl.stats().intra_page_updates, 9);
    }

    #[test]
    fn full_page_update_always_upgrades() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 16384), 1, &mut dev);
        ftl.on_write(&w(0, 16384), 2, &mut dev);
        // A 4-subpage update can never fit in the old (fully programmed) page.
        assert_eq!(ftl.stats().intra_page_updates, 0);
        assert_eq!(ftl.stats().upgraded_writes, 1);
    }

    #[test]
    fn partially_new_chunk_splits_new_and_update() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 4096), 1, &mut dev); // lsn 0 exists
        ftl.on_write(&w(0, 8192), 2, &mut dev); // lsn 0 update + lsn 1 new
        assert_eq!(ftl.stats().intra_page_updates, 1);
        let a = ftl.core.map.lookup(0).unwrap();
        let b = ftl.core.map.lookup(1).unwrap();
        // lsn 0 updated intra-page; lsn 1 is new data in a Work page.
        assert_eq!(a.subpage, 1);
        assert_eq!(b.subpage, 0);
        assert_ne!(a.ppa, b.ppa);
    }

    #[test]
    fn gc_demotes_cold_and_keeps_hot() {
        let (mut ftl, mut dev) = setup();
        // Two SLC blocks of 4 pages. Fill with a mix: slot 0 is hot (updated
        // in place), slots 1..4 are cold singles.
        ftl.on_write(&w(0, 4096), 1, &mut dev);
        ftl.on_write(&w(0, 4096), 2, &mut dev); // intra-page update → page updated
        for slot in 1..4u64 {
            ftl.on_write(&w(slot * 65536, 4096), 2 + slot, &mut dev);
        }
        // Force pressure: more cold singles to trip GC repeatedly.
        for slot in 4..12u64 {
            ftl.on_write(&w(slot * 65536, 4096), 10 + slot, &mut dev);
        }
        let stats = ftl.stats();
        assert!(stats.gc_runs_slc > 0);
        assert!(
            stats.gc_evicted_subpages > 0,
            "cold data must leave the cache"
        );
        // Hot slot survives with a live mapping.
        assert!(ftl.core.map.lookup(0).is_some());
    }

    #[test]
    fn mapping_memory_is_near_baseline() {
        let (mut ftl, mut dev) = setup();
        for slot in 0..4u64 {
            ftl.on_write(&w(slot * 65536, 16384), slot, &mut dev);
        }
        let m = ftl.mapping_memory(&dev);
        // Second level is the fixed 2-bit-per-SLC-page cost, independent of
        // mapped data: 2 blocks × 4 pages × 2 bits = 2 bytes.
        assert_eq!(m.second_level_bytes, 2);
        assert_eq!(m.label_bytes, 1);
        // Full-space table: 32 blocks × 8 MLC pages × 8 B per entry.
        assert_eq!(m.page_table_bytes, 32 * 8 * 8);
        // The IPU overhead over a pure page table is well under 1%.
        let overhead = m.total() as f64 / m.page_table_bytes as f64;
        assert!(overhead < 1.01, "IPU overhead {overhead}");
    }

    #[test]
    fn read_your_writes_through_update_chains() {
        let (mut ftl, mut dev) = setup();
        for t in 0..7u64 {
            ftl.on_write(&w(0, 8192), t, &mut dev);
        }
        let r = IoRequest::new(100, OpKind::Read, 0, 8192);
        let batch = ftl.on_read(&r, 100, &mut dev);
        assert!(batch.count(FlashOpKind::HostRead) >= 1);
        assert_eq!(ftl.stats().unmapped_reads, 0);
        assert_eq!(ftl.stats().host_subpages_read, 2);
    }
}

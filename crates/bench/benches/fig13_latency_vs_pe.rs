//! `cargo bench -p ipu-bench --bench fig13_latency_vs_pe`
//!
//! Regenerates the paper's Figure 13 — I/O latency under varied P/E cycles
//! (§4.5) — by running the full matrix at P/E ∈ {1000, 2000, 4000, 8000}.

fn main() {
    let cfg = ipu_bench::bench_config();
    let sweep = ipu_bench::pe_sweep_cached(&cfg, &ipu_core::PAPER_PE_POINTS);
    println!("{}", ipu_core::report::render_pe_sweep(&sweep));
    println!("(Figure 13 reads the overall-latency column; Figure 14 the error-rate column.)");
}

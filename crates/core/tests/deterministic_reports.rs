//! Regression test for the report-determinism invariant behind `ipu-lint`'s
//! `unordered-iter` rule: the surfaces that feed rendered reports and JSON
//! exports iterate ordered collections, so two identical runs must produce
//! byte-identical output. This pins the BTreeMap conversions in
//! `trace::stats`, `ftl::cache_meta` and `ftl::schemes::common` — a stray
//! HashMap iteration anywhere on the render path breaks this test (flakily),
//! and breaks the replay cache and perf-gate fingerprints the same way.

use ipu_core::ftl::SchemeKind;
use ipu_core::trace::PaperTrace;
use ipu_core::{report, ExperimentConfig, TraceSet};

fn one_pass() -> (String, String) {
    let mut cfg = ExperimentConfig::scaled(0.002);
    cfg.threads = 1;
    cfg.traces = vec![PaperTrace::Ts0];
    cfg.schemes = vec![SchemeKind::Baseline, SchemeKind::Ipu];
    let traces = TraceSet::generate(&cfg);
    let matrix = ipu_core::run_main_matrix_with(&cfg, &traces, None);
    let mut text = String::new();
    for render in [
        report::render_fig5,
        report::render_fig6,
        report::render_fig7,
        report::render_fig8,
        report::render_fig9,
        report::render_fig10,
        report::render_fig11,
    ] {
        text.push_str(&render(&matrix));
        text.push('\n');
    }
    let json = serde_json::to_string_pretty(&matrix).expect("matrix serializes");
    (text, json)
}

#[test]
fn identical_runs_render_byte_identical_reports() {
    let (text_a, json_a) = one_pass();
    let (text_b, json_b) = one_pass();
    assert_eq!(text_a, text_b, "rendered reports diverged between two runs");
    assert_eq!(json_a, json_b, "JSON exports diverged between two runs");
}

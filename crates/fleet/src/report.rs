//! Fleet-level report types: per-device summaries merged into one
//! [`FleetReport`], capacity-search results, and their text renderings.
//!
//! Everything serialized from a fleet run lives in this file — it is listed
//! in `ipu-lint`'s ordered-output surface, so iteration order feeding any of
//! these structs must be deterministic (no `HashMap`/`HashSet`).

use crate::health::DeviceHealthTimeline;
use crate::router::ShardPolicy;
use crate::tolerance::{FleetReliability, ToleranceOutcome};
use ipu_core::report::TextTable;
use ipu_host::{LatencyStats, ReliabilityStats, TenantMetrics};
use ipu_sim::ClosedLoopReport;
use serde::{Deserialize, Serialize};

/// How many of the hottest devices a [`LoadSkew`] keeps.
pub const HOT_SHARD_TOP_K: usize = 8;

/// One device's contribution to the fleet, in device-id order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSummary {
    pub device: usize,
    /// Tenants with a queue pair on this device.
    pub tenants: usize,
    /// Requests this device completed.
    pub ops: u64,
    /// Mean service latency, ms.
    pub mean_ms: f64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    /// Last completion on this device, ns.
    pub horizon_ns: u64,
    /// Of `ops`, how many were replica writes hosted for the mirror pair
    /// partner (0 without replication). Primary ops ≡ `ops - mirror_ops`.
    #[serde(default)]
    pub mirror_ops: u64,
}

/// One of the top-K most loaded devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotShard {
    pub device: usize,
    pub ops: u64,
    /// This device's fraction of all fleet ops.
    pub share: f64,
}

/// Load-balance diagnostics across the fleet: how far the hottest shard
/// sits above the mean, and which shards carry the most traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadSkew {
    /// Mean requests per device.
    pub mean_ops: f64,
    /// Requests on the hottest device.
    pub max_ops: u64,
    /// `max_ops / mean_ops` (1.0 is perfectly balanced; 0 when idle).
    pub skew: f64,
    /// Up to [`HOT_SHARD_TOP_K`] busiest devices, descending by ops
    /// (ties broken by ascending device id).
    pub hot_shards: Vec<HotShard>,
}

impl LoadSkew {
    fn from_ops(ops: &[u64]) -> LoadSkew {
        let total: u64 = ops.iter().sum();
        let mean_ops = if ops.is_empty() {
            0.0
        } else {
            total as f64 / ops.len() as f64
        };
        let max_ops = ops.iter().copied().max().unwrap_or(0);
        let skew = if mean_ops <= 0.0 {
            0.0
        } else {
            max_ops as f64 / mean_ops
        };
        let mut ranked: Vec<(usize, u64)> = ops
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(HOT_SHARD_TOP_K);
        let hot_shards = ranked
            .into_iter()
            .map(|(device, n)| HotShard {
                device,
                ops: n,
                share: if total == 0 {
                    0.0
                } else {
                    n as f64 / total as f64
                },
            })
            .collect();
        LoadSkew {
            mean_ops,
            max_ops,
            skew,
            hot_shards,
        }
    }
}

/// Merged view of one fleet run: N devices, each replayed closed-loop,
/// aggregated with the exact `LatencyStats::merge` semantics (bucket sums),
/// so fleet percentiles equal the percentiles of the pooled population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    pub scheme: String,
    pub trace: String,
    pub policy: String,
    pub devices: usize,
    pub tenants: usize,
    pub queue_depth: usize,
    /// Requests completed fleet-wide.
    pub total_ops: u64,
    /// `total_ops` over the fleet horizon (slowest device), ops/s.
    pub throughput_ops_per_sec: f64,
    /// Submission→completion latency pooled over every tenant of every
    /// device.
    pub service_latency: LatencyStats,
    /// Arrival→completion latency (includes admission stall), pooled.
    pub e2e_latency: LatencyStats,
    /// `service_latency.percentile_ns(99.0)` — the SLO metric.
    pub p99_ns: u64,
    pub p999_ns: u64,
    /// Min/max per-tenant throughput ratio across the whole fleet.
    pub fairness: f64,
    pub reliability: ReliabilityStats,
    /// Fleet horizon: the last completion on the slowest device, ns.
    pub horizon_ns: u64,
    /// One row per device, device-id ascending (idle devices included).
    pub per_device: Vec<DeviceSummary>,
    pub load: LoadSkew,
    /// Replication policy label (`none` / `mirror-pair`; empty in reports
    /// saved before the fault-tolerance subsystem).
    #[serde(default)]
    pub replication: String,
    /// Fault plan label (`none` when healthy).
    #[serde(default)]
    pub fault_plan: String,
    /// Fleet-level reliability ledger; present only when the tolerance
    /// pass ran (a non-inert fault plan or active replication).
    #[serde(default)]
    pub fleet_reliability: Option<FleetReliability>,
    /// Per-device health timelines from the tolerance pass (empty when it
    /// did not run).
    #[serde(default)]
    pub health: Vec<DeviceHealthTimeline>,
}

/// Fleet-level context for [`FleetReport::merge_with`]: how the run was
/// replicated/faulted, and which of each device's tenant streams are
/// primary (the rest are mirror write streams and must not pollute the
/// pooled latency or fairness numbers).
#[derive(Debug, Clone, Default)]
pub struct MergeContext {
    /// Replication policy label (empty → `none`).
    pub replication: String,
    /// Fault plan label (empty → `none`).
    pub fault_plan: String,
    /// Per-device count of primary tenant streams; streams beyond this
    /// index are mirror write streams. `None` means every stream is
    /// primary (no replication).
    pub primary_streams: Option<Vec<usize>>,
}

impl FleetReport {
    /// Merges per-device closed-loop reports (indexed by device id; `None`
    /// for a device that received no tenants) into one fleet report.
    /// Equivalent to [`FleetReport::merge_with`] with a default context
    /// (no replication, no fault plan).
    pub fn merge(
        scheme: &str,
        trace: &str,
        policy: ShardPolicy,
        tenants: usize,
        queue_depth: usize,
        per_device: &[Option<ClosedLoopReport>],
    ) -> FleetReport {
        Self::merge_with(
            scheme,
            trace,
            policy,
            tenants,
            queue_depth,
            per_device,
            &MergeContext::default(),
        )
    }

    /// [`FleetReport::merge`] with fleet-level context: mirror write
    /// streams (per-device stream index ≥ `ctx.primary_streams[d]`) are
    /// charged to the device's load as `mirror_ops` but excluded from the
    /// pooled latency distributions, fairness and `total_ops`, which stay
    /// *logical* — so `Σ (ops − mirror_ops) == total_ops`.
    pub fn merge_with(
        scheme: &str,
        trace: &str,
        policy: ShardPolicy,
        tenants: usize,
        queue_depth: usize,
        per_device: &[Option<ClosedLoopReport>],
        ctx: &MergeContext,
    ) -> FleetReport {
        let mut service = LatencyStats::new();
        let mut e2e = LatencyStats::new();
        let mut reliability = ReliabilityStats::new();
        let mut horizon_ns = 0u64;
        let mut total_ops = 0u64;
        let mut tenant_count = 0usize;
        // Fairness without cloning tens of thousands of TenantMetrics:
        // track the min/max per-tenant throughput inline.
        let mut tp_min = f64::INFINITY;
        let mut tp_max = 0.0f64;
        let mut summaries = Vec::with_capacity(per_device.len());
        let mut ops = Vec::with_capacity(per_device.len());

        for (device, slot) in per_device.iter().enumerate() {
            let Some(report) = slot else {
                summaries.push(DeviceSummary {
                    device,
                    tenants: 0,
                    ops: 0,
                    mean_ms: 0.0,
                    p99_ns: 0,
                    p999_ns: 0,
                    horizon_ns: 0,
                    mirror_ops: 0,
                });
                ops.push(0);
                continue;
            };
            let primary_n = ctx
                .primary_streams
                .as_ref()
                .map(|v| v.get(device).copied().unwrap_or(usize::MAX))
                .unwrap_or(usize::MAX);
            let dev_service = report.host.overall_service_latency();
            let dev_ops = report.host.total_completed();
            let mut mirror_ops = 0u64;
            for (idx, t) in report.host.tenants.iter().enumerate() {
                if idx >= primary_n {
                    // Mirror write stream: device load, not fleet QoS.
                    mirror_ops += t.completed;
                    continue;
                }
                service.merge(&t.service_latency);
                e2e.merge(&t.e2e_latency);
                let tp = TenantMetrics::throughput_rps(t);
                tp_min = tp_min.min(tp);
                tp_max = tp_max.max(tp);
            }
            let primary_tenants = report.host.tenants.len().min(primary_n);
            tenant_count += primary_tenants;
            reliability.merge(&report.sim.reliability);
            horizon_ns = horizon_ns.max(report.host.horizon_ns);
            total_ops += dev_ops - mirror_ops;
            summaries.push(DeviceSummary {
                device,
                tenants: primary_tenants,
                ops: dev_ops,
                mean_ms: dev_service.mean_ms(),
                p99_ns: dev_service.percentile_ns(99.0),
                p999_ns: dev_service.percentile_ns(99.9),
                horizon_ns: report.host.horizon_ns,
                mirror_ops,
            });
            ops.push(dev_ops);
        }

        let fairness = if tenant_count < 2 || tp_max <= 0.0 {
            1.0
        } else {
            tp_min / tp_max
        };
        let throughput_ops_per_sec = if horizon_ns == 0 {
            0.0
        } else {
            total_ops as f64 * 1e9 / horizon_ns as f64
        };
        FleetReport {
            scheme: scheme.to_string(),
            trace: trace.to_string(),
            policy: policy.label().to_string(),
            devices: per_device.len(),
            tenants,
            queue_depth,
            total_ops,
            throughput_ops_per_sec,
            p99_ns: service.percentile_ns(99.0),
            p999_ns: service.percentile_ns(99.9),
            service_latency: service,
            e2e_latency: e2e,
            fairness,
            reliability,
            horizon_ns,
            per_device: summaries,
            load: LoadSkew::from_ops(&ops),
            replication: if ctx.replication.is_empty() {
                "none".to_string()
            } else {
                ctx.replication.clone()
            },
            fault_plan: if ctx.fault_plan.is_empty() {
                "none".to_string()
            } else {
                ctx.fault_plan.clone()
            },
            fleet_reliability: None,
            health: Vec::new(),
        }
    }

    /// Overlays the tolerance pass onto this report: the pooled latency
    /// distributions become the *post-router* ones (retries, hedges and
    /// fast-fails included; lost requests excluded — they never completed),
    /// the reliability ledger and health timelines are attached, and lost
    /// requests flow into [`ReliabilityStats`] so `availability()` reflects
    /// them. Device-level rows keep their raw replay numbers: the delta
    /// between a device row and the fleet headline *is* the router's work.
    pub fn apply_tolerance(&mut self, out: &ToleranceOutcome) {
        self.p99_ns = out.service_latency.percentile_ns(99.0);
        self.p999_ns = out.service_latency.percentile_ns(99.9);
        self.service_latency = out.service_latency.clone();
        self.e2e_latency = out.e2e_latency.clone();
        self.reliability.lost += out.reliability.lost;
        self.reliability.timeouts += out.reliability.timeouts;
        self.fleet_reliability = Some(out.reliability);
        self.health = out.health.clone();
    }
}

/// One probe of the capacity search: a fleet run at `tenants` tenants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityProbe {
    pub tenants: u64,
    pub p99_ns: u64,
    pub met_slo: bool,
}

/// Result of the per-scheme capacity search: the largest tenant count whose
/// fleet p99 stays under the SLO.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityResult {
    pub scheme: String,
    pub trace: String,
    pub policy: String,
    /// The SLO threshold probed against, ns.
    pub slo_p99_ns: u64,
    /// Upper bound the search was allowed to probe.
    pub tenant_cap: u64,
    /// Largest probed tenant count meeting the SLO (0 if even 1 tenant
    /// misses it).
    pub max_tenants: u64,
    /// Every probe, in probe order.
    pub probes: Vec<CapacityProbe>,
    /// The full fleet report at `max_tenants` (absent when `max_tenants`
    /// is 0).
    pub at_capacity: Option<FleetReport>,
}

/// Everything one `fleet` CLI invocation produced: capacity-search results
/// per trace × scheme, or fixed-size fleet reports when a tenant count was
/// pinned.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FleetRunResult {
    pub devices: usize,
    pub policy: String,
    pub queue_depth: usize,
    pub slo_p99_ns: u64,
    /// Capacity-search mode results (empty in fixed-size mode).
    #[serde(default)]
    pub capacity: Vec<CapacityResult>,
    /// Fixed-size mode reports (empty in capacity-search mode).
    #[serde(default)]
    pub reports: Vec<FleetReport>,
    /// Replication policy label of the degraded-mode runs (empty when no
    /// degraded mode was requested).
    #[serde(default)]
    pub replication: String,
    /// Fault plan label of the degraded-mode runs.
    #[serde(default)]
    pub fault_plan: String,
    /// How many devices the degraded-mode fault plan disrupts.
    #[serde(default)]
    pub faulty_devices: usize,
    /// Degraded-mode capacity results, parallel in (trace, scheme) order to
    /// `capacity`: same SLO, but `faulty_devices` devices are fail-stopped
    /// under `replication`.
    #[serde(default)]
    pub degraded: Vec<CapacityResult>,
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Text rendering of one merged fleet report: headline aggregates plus the
/// hottest shards.
pub fn render_fleet_report(r: &FleetReport) -> String {
    let mut out = format!(
        "fleet {} / {} [{}]: {} devices, {} tenants, QD {}\n\
         ops {}  throughput {:.0} ops/s  p99 {} ms  p999 {} ms\n\
         mean {:.3} ms  fairness {:.3}  availability {:.6}  load skew {:.2}\n",
        r.trace,
        r.scheme,
        r.policy,
        r.devices,
        r.tenants,
        r.queue_depth,
        r.total_ops,
        r.throughput_ops_per_sec,
        ms(r.p99_ns),
        ms(r.p999_ns),
        r.service_latency.mean_ms(),
        r.fairness,
        r.reliability.availability(),
        r.load.skew,
    );
    if let Some(fr) = &r.fleet_reliability {
        out.push_str(&format!(
            "faults {} replication {}: acked {} (clean {} / recovered {})  \
             lost {}  retries {}  timeouts {}  hedges {}/{} fired/won  \
             hedge waste {:.3} ms  mirror writes {}\n",
            r.fault_plan,
            r.replication,
            fr.acked,
            fr.clean,
            fr.recovered,
            fr.lost,
            fr.retries,
            fr.timeouts,
            fr.hedges_fired,
            fr.hedges_won,
            fr.hedge_wasted_ns as f64 / 1e6,
            fr.replica_write_ops,
        ));
        let noteworthy: Vec<String> = r
            .health
            .iter()
            .filter(|h| !h.transitions.is_empty())
            .map(|h| {
                format!(
                    "dev{} {} ({} transitions, {} failures)",
                    h.device,
                    h.final_state.label(),
                    h.transitions.len(),
                    h.failures
                )
            })
            .collect();
        if !noteworthy.is_empty() {
            out.push_str(&format!("health: {}\n", noteworthy.join(", ")));
        }
    }
    if !r.load.hot_shards.is_empty() {
        let mut t = TextTable::new(&["Hot shard", "ops", "share", "p99(ms)"]);
        for h in &r.load.hot_shards {
            let p99 = r.per_device[h.device].p99_ns;
            t.row(vec![
                format!("dev{}", h.device),
                h.ops.to_string(),
                format!("{:.1}%", h.share * 100.0),
                ms(p99),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Text rendering of the graceful-degradation headline: healthy vs degraded
/// capacity per trace × scheme, with the retained fraction.
pub fn render_degradation(
    healthy: &[CapacityResult],
    degraded: &[CapacityResult],
    faulty_devices: usize,
    replication: &str,
) -> String {
    let mut t = TextTable::new(&[
        "Trace",
        "Scheme",
        "healthy tenants",
        &format!("k={faulty_devices} faulty ({replication})"),
        "retained",
    ]);
    for h in healthy {
        let d = degraded
            .iter()
            .find(|d| d.trace == h.trace && d.scheme == h.scheme);
        let (deg, retained) = match d {
            Some(d) if h.max_tenants > 0 => (
                d.max_tenants.to_string(),
                format!(
                    "{:.1}%",
                    d.max_tenants as f64 * 100.0 / h.max_tenants as f64
                ),
            ),
            Some(d) => (d.max_tenants.to_string(), "-".into()),
            None => ("-".into(), "-".into()),
        };
        t.row(vec![
            h.trace.clone(),
            h.scheme.clone(),
            h.max_tenants.to_string(),
            deg,
            retained,
        ]);
    }
    t.render()
}

/// Text rendering of the capacity-search headline: max tenants at SLO per
/// trace × scheme.
pub fn render_capacity(results: &[CapacityResult]) -> String {
    let mut t = TextTable::new(&[
        "Trace",
        "Scheme",
        "Policy",
        "SLO p99(ms)",
        "max tenants",
        "p99@cap(ms)",
        "probes",
    ]);
    for r in results {
        let p99_at_cap = r
            .at_capacity
            .as_ref()
            .map(|f| ms(f.p99_ns))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            r.trace.clone(),
            r.scheme.clone(),
            r.policy.clone(),
            ms(r.slo_p99_ns),
            r.max_tenants.to_string(),
            p99_at_cap,
            r.probes.len().to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_host::HostConfig;
    use ipu_sim::{replay_closed_loop, ReplayConfig};
    use ipu_trace::{IoRequest, OpKind};

    fn workload(n: u64, base: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| IoRequest::new(i * 2_000, OpKind::Write, base + (i % 8) * 65_536, 4096))
            .collect()
    }

    fn device_report(n: u64, base: u64) -> ClosedLoopReport {
        let cfg = ReplayConfig::small_for_tests(ipu_ftl::SchemeKind::Ipu);
        let host = HostConfig::single(2);
        replay_closed_loop(&cfg, &host, &[workload(n, base)], "t")
    }

    #[test]
    fn merge_conserves_ops_and_pools_latency() {
        let a = device_report(30, 0);
        let b = device_report(20, 1 << 24);
        let expect_ops = a.host.total_completed() + b.host.total_completed();
        let mut pooled = a.host.overall_service_latency();
        pooled.merge(&b.host.overall_service_latency());

        let fleet = FleetReport::merge("ipu", "ts0", ShardPolicy::Hash, 2, 2, &[Some(a), Some(b)]);
        assert_eq!(fleet.total_ops, 50);
        assert_eq!(fleet.total_ops, expect_ops);
        assert_eq!(fleet.service_latency.count(), pooled.count());
        assert_eq!(fleet.service_latency.sum_ns(), pooled.sum_ns());
        // Bucket-sum merge: fleet percentile == pooled-population percentile.
        assert_eq!(fleet.p99_ns, pooled.percentile_ns(99.0));
        assert_eq!(fleet.p999_ns, pooled.percentile_ns(99.9));
        assert_eq!(fleet.per_device.len(), 2);
        assert_eq!(
            fleet.per_device.iter().map(|d| d.ops).sum::<u64>(),
            fleet.total_ops
        );
    }

    #[test]
    fn merge_tolerates_idle_devices() {
        let a = device_report(10, 0);
        let fleet = FleetReport::merge(
            "ipu",
            "ts0",
            ShardPolicy::Range,
            1,
            2,
            &[None, Some(a), None],
        );
        assert_eq!(fleet.devices, 3);
        assert_eq!(fleet.per_device.len(), 3);
        assert_eq!(fleet.per_device[0].ops, 0);
        assert_eq!(fleet.per_device[2].ops, 0);
        assert_eq!(fleet.total_ops, 10);
        // One busy device of three: skew = max / mean = 3.
        assert!((fleet.load.skew - 3.0).abs() < 1e-9);
        assert_eq!(fleet.load.hot_shards.len(), 1);
        assert_eq!(fleet.load.hot_shards[0].device, 1);
        assert!((fleet.load.hot_shards[0].share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_spans_devices() {
        // A lone tenant per device is <2 tenants per HostReport, but fleet
        // fairness must still compare them across devices.
        let a = device_report(40, 0);
        let b = device_report(10, 1 << 24);
        let tp_a = a.host.tenants[0].throughput_rps();
        let tp_b = b.host.tenants[0].throughput_rps();
        let fleet = FleetReport::merge("ipu", "ts0", ShardPolicy::Hash, 2, 2, &[Some(a), Some(b)]);
        let expect = tp_a.min(tp_b) / tp_a.max(tp_b);
        assert!(
            (fleet.fairness - expect).abs() < 1e-12,
            "{}",
            fleet.fairness
        );
        assert!(fleet.fairness < 1.0);
    }

    #[test]
    fn hot_shards_rank_descending_with_stable_ties() {
        let skew = LoadSkew::from_ops(&[5, 9, 9, 0, 7, 1, 2, 3, 4, 6, 8, 9]);
        let ranked: Vec<(usize, u64)> = skew.hot_shards.iter().map(|h| (h.device, h.ops)).collect();
        assert_eq!(
            ranked,
            vec![
                (1, 9),
                (2, 9),
                (11, 9),
                (10, 8),
                (4, 7),
                (9, 6),
                (0, 5),
                (8, 4)
            ]
        );
        assert_eq!(skew.hot_shards.len(), HOT_SHARD_TOP_K);
        assert_eq!(skew.max_ops, 9);
    }

    #[test]
    fn empty_fleet_is_all_zero() {
        let fleet = FleetReport::merge("ipu", "ts0", ShardPolicy::Hash, 0, 1, &[None, None]);
        assert_eq!(fleet.total_ops, 0);
        assert_eq!(fleet.p99_ns, 0);
        assert_eq!(fleet.horizon_ns, 0);
        assert!((fleet.throughput_ops_per_sec - 0.0).abs() < f64::EPSILON);
        assert!((fleet.fairness - 1.0).abs() < f64::EPSILON);
        assert!(fleet.load.hot_shards.is_empty());
        assert!((fleet.load.skew - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn reports_render_and_round_trip() {
        let a = device_report(25, 0);
        let fleet = FleetReport::merge("ipu", "ts0", ShardPolicy::LbaStripe, 1, 2, &[Some(a)]);
        let text = render_fleet_report(&fleet);
        assert!(text.contains("lba-stripe"));
        assert!(text.contains("Hot shard"));

        let json = serde_json::to_string(&fleet).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);

        let cap = CapacityResult {
            scheme: "ipu".into(),
            trace: "ts0".into(),
            policy: "hash".into(),
            slo_p99_ns: 1_000_000,
            tenant_cap: 64,
            max_tenants: 12,
            probes: vec![CapacityProbe {
                tenants: 12,
                p99_ns: 900_000,
                met_slo: true,
            }],
            at_capacity: Some(fleet),
        };
        let table = render_capacity(std::slice::from_ref(&cap));
        assert!(table.contains("max tenants"));
        assert!(table.contains("12"));
        let run = FleetRunResult {
            devices: 1,
            policy: "hash".into(),
            queue_depth: 2,
            slo_p99_ns: 1_000_000,
            capacity: vec![cap],
            ..FleetRunResult::default()
        };
        let json = serde_json::to_string_pretty(&run).unwrap();
        let back: FleetRunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
    }

    #[test]
    fn merge_with_excludes_mirror_streams_from_fleet_qos() {
        // Device 0: one primary stream; device 1: one primary + one mirror
        // stream (two streams in one report, the second declared mirror).
        let cfg = ReplayConfig::small_for_tests(ipu_ftl::SchemeKind::Ipu);
        let host = ipu_host::HostConfig::new(
            2,
            ipu_host::ArbitrationPolicy::RoundRobin,
            vec![
                ipu_host::TenantSpec::new("t0"),
                ipu_host::TenantSpec::new("m0"),
            ],
        );
        let a = device_report(30, 0);
        let b = replay_closed_loop(
            &cfg,
            &host,
            &[workload(20, 1 << 24), workload(30, 1 << 25)],
            "t",
        );
        let primary_only = FleetReport::merge(
            "ipu",
            "ts0",
            ShardPolicy::Hash,
            2,
            2,
            &[Some(a.clone()), None],
        );
        let ctx = MergeContext {
            replication: "mirror-pair".into(),
            fault_plan: "none".into(),
            primary_streams: Some(vec![1, 1]),
        };
        let fleet = FleetReport::merge_with(
            "ipu",
            "ts0",
            ShardPolicy::Hash,
            2,
            2,
            &[Some(a), Some(b.clone())],
            &ctx,
        );
        // Logical ops: 30 + 20 primaries; the 30 mirror writes are charged
        // to device 1's load but not the fleet total.
        assert_eq!(fleet.total_ops, 50);
        assert_eq!(fleet.per_device[1].mirror_ops, 30);
        assert_eq!(fleet.per_device[1].ops, b.host.total_completed());
        assert_eq!(
            fleet
                .per_device
                .iter()
                .map(|d| d.ops - d.mirror_ops)
                .sum::<u64>(),
            fleet.total_ops
        );
        // Pooled latency counts only the primary streams.
        let device0_primary = primary_only.service_latency.count();
        assert_eq!(
            fleet.service_latency.count(),
            device0_primary + b.host.tenants[0].completed
        );
        assert_eq!(fleet.replication, "mirror-pair");
        assert_eq!(fleet.fault_plan, "none");
        // The default context is labelled `none` and changes nothing else.
        assert_eq!(primary_only.replication, "none");
    }

    #[test]
    fn apply_tolerance_overlays_the_router_view() {
        let a = device_report(25, 0);
        let mut fleet = FleetReport::merge("ipu", "ts0", ShardPolicy::Hash, 1, 2, &[Some(a)]);
        let mut service = LatencyStats::new();
        let mut e2e = LatencyStats::new();
        for ns in [10_000u64, 20_000, 4_000_000] {
            service.record(ns);
            e2e.record(ns + 1_000);
        }
        let out = ToleranceOutcome {
            service_latency: service,
            e2e_latency: e2e,
            reliability: FleetReliability {
                logical_ops: 5,
                acked: 3,
                clean: 2,
                recovered: 1,
                lost: 2,
                retries: 4,
                failovers: 1,
                timeouts: 3,
                ..FleetReliability::default()
            },
            health: Vec::new(),
        };
        let before = fleet.reliability.clone();
        fleet.apply_tolerance(&out);
        assert_eq!(fleet.p99_ns, fleet.service_latency.percentile_ns(99.0));
        assert!(fleet.p99_ns >= 2_000_000, "outlier must drive the new p99");
        assert_eq!(fleet.reliability.lost, before.lost + 2);
        assert_eq!(fleet.reliability.timeouts, before.timeouts + 3);
        assert!(fleet.reliability.availability() < 1.0);
        let fr = fleet.fleet_reliability.unwrap();
        assert_eq!(fr.logical_ops, fr.acked + fr.lost, "conservation");
        let text = render_fleet_report(&fleet);
        assert!(text.contains("acked 3 (clean 2 / recovered 1)"));
        assert!(text.contains("lost 2"));
    }

    #[test]
    fn degradation_table_pairs_healthy_and_degraded() {
        let healthy = vec![
            CapacityResult {
                scheme: "ipu".into(),
                trace: "ts0".into(),
                policy: "hash".into(),
                slo_p99_ns: 1_000_000,
                tenant_cap: 64,
                max_tenants: 40,
                probes: Vec::new(),
                at_capacity: None,
            },
            CapacityResult {
                scheme: "base".into(),
                trace: "ts0".into(),
                policy: "hash".into(),
                slo_p99_ns: 1_000_000,
                tenant_cap: 64,
                max_tenants: 20,
                probes: Vec::new(),
                at_capacity: None,
            },
        ];
        let mut degraded = healthy.clone();
        degraded[0].max_tenants = 30;
        degraded[1].max_tenants = 10;
        let table = render_degradation(&healthy, &degraded, 1, "mirror-pair");
        assert!(table.contains("k=1 faulty (mirror-pair)"));
        assert!(table.contains("75.0%"));
        assert!(table.contains("50.0%"));
    }
}

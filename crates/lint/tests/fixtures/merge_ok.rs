//! Fixture: the conforming twin — every field appears in `merge` and the
//! struct derives both serde traits.

use serde::{Deserialize, Serialize};

/// Latency ledger (fixture twin of the real one).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

impl LatencyStats {
    /// Folds `other` in, field by field.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

//! Fixture: the conforming twins — ordered containers commute with nothing,
//! and integer accumulation over hash order is exact on purpose.

use std::collections::{BTreeMap, HashMap};

pub fn shard_sums(shards: BTreeMap<u32, u64>, v: Vec<u32>) -> Vec<u64> {
    parallel_map(v, 4, move |x| {
        let mut acc = 0u64;
        for (_, s) in &shards {
            acc += s;
        }
        acc + x as u64
    })
}

pub fn total_events(m: &HashMap<u32, u64>) -> u64 {
    let mut sum = 0u64;
    for (_, v) in m {
        sum += v;
    }
    sum
}

//! Latency statistics: means, extrema and log-bucketed percentiles.
//!
//! Moved here from `ipu-sim` so the host interface can aggregate per-tenant
//! latency with the same machinery the replay engine uses; `ipu_sim`
//! re-exports [`LatencyStats`] for backwards compatibility.

use ipu_flash::Nanos;
use serde::{Deserialize, Serialize};

/// Number of log₂ buckets in the latency histogram (covers 1 ns .. ~584 y).
const BUCKETS: usize = 64;

/// Streaming latency statistics with a log₂ histogram for percentiles.
///
/// ```
/// use ipu_host::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for ns in [250_000, 300_000, 9_000_000] {
///     stats.record(ns);
/// }
/// assert_eq!(stats.count(), 3);
/// assert!((stats.mean_ms() - 3.1833).abs() < 1e-3);
/// assert!(stats.percentile_ns(99.0) >= 4_000_000); // the slow outlier
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum_ns: u128,
    /// Smallest recorded sample; 0 while empty so an empty histogram never
    /// serializes a `u64::MAX` sentinel into reports.
    min_ns: Nanos,
    max_ns: Nanos,
    /// `buckets[b]` counts samples with `floor(log2(ns)) == b` (0 → bucket 0).
    buckets: Vec<u64>,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: vec![0; BUCKETS],
        }
    }
}

impl LatencyStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: Nanos) {
        self.min_ns = if self.count == 0 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        let b = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[b.min(BUCKETS - 1)] += 1;
    }

    /// Merges another stats object into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count > 0 {
            self.min_ns = if self.count == 0 {
                other.min_ns
            } else {
                self.min_ns.min(other.min_ns)
            };
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total of all recorded samples in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Mean latency in milliseconds (the paper's Figure 5 unit).
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns() / 1e6
    }

    pub fn min_ns(&self) -> Option<Nanos> {
        (self.count > 0).then_some(self.min_ns)
    }

    pub fn max_ns(&self) -> Nanos {
        self.max_ns
    }

    /// Approximate percentile (0–100) from the log histogram: the geometric
    /// midpoint `2^(b+0.5)` of the log₂ bucket `[2^b, 2^(b+1))` containing
    /// the requested rank, clamped into `[min_ns, max_ns]` so no percentile
    /// ever reports outside the recorded sample range.
    pub fn percentile_ns(&self, p: f64) -> Nanos {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Geometric midpoint of [2^b, 2^(b+1)): 2^b · √2. Computed in
                // f64 (exact for any bucket exponent that fits the histogram).
                let geo = ((1u128 << b) as f64 * std::f64::consts::SQRT_2) as u64;
                return geo.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Time-weighted queue-occupancy histogram: `ns_at[k]` is the simulated time
/// the queue held exactly `k` outstanding requests (0 ≤ k ≤ depth).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyHistogram {
    ns_at: Vec<u128>,
}

impl OccupancyHistogram {
    pub fn new(depth: usize) -> Self {
        OccupancyHistogram {
            ns_at: vec![0; depth + 1],
        }
    }

    /// Accounts `dt` nanoseconds spent at occupancy `level`.
    pub fn observe(&mut self, level: usize, dt: Nanos) {
        assert!(level < self.ns_at.len(), "occupancy {level} exceeds depth");
        self.ns_at[level] += dt as u128;
    }

    /// Total observed time.
    pub fn total_ns(&self) -> u128 {
        self.ns_at.iter().sum()
    }

    /// Time spent at each level, in level order.
    pub fn levels(&self) -> &[u128] {
        &self.ns_at
    }

    /// Time-weighted mean occupancy (0 when nothing was observed).
    pub fn mean(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .ns_at
            .iter()
            .enumerate()
            .map(|(k, &ns)| k as f64 * ns as f64)
            .sum();
        weighted / total as f64
    }

    /// Fraction of observed time the queue was completely full.
    pub fn full_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        *self.ns_at.last().expect("depth ≥ 0 means ≥ 1 level") as f64 / total as f64
    }
}

/// Per-tenant quality-of-service metrics for one closed-loop run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantMetrics {
    pub name: String,
    /// Requests completed.
    pub completed: u64,
    /// Submission (queue-slot admission) to completion.
    pub service_latency: LatencyStats,
    /// Original arrival to completion — includes admission stall.
    pub e2e_latency: LatencyStats,
    /// Total time requests waited for a queue slot before admission.
    pub admission_stall_ns: u128,
    /// Requests that stalled at admission (arrived to a full queue).
    pub stalled_requests: u64,
    pub occupancy: OccupancyHistogram,
    /// First request arrival, ns.
    pub first_arrival_ns: Nanos,
    /// Last completion, ns.
    pub last_completion_ns: Nanos,
}

impl TenantMetrics {
    pub fn new(name: impl Into<String>, queue_depth: usize) -> Self {
        TenantMetrics {
            name: name.into(),
            completed: 0,
            service_latency: LatencyStats::new(),
            e2e_latency: LatencyStats::new(),
            admission_stall_ns: 0,
            stalled_requests: 0,
            occupancy: OccupancyHistogram::new(queue_depth),
            first_arrival_ns: 0,
            last_completion_ns: 0,
        }
    }

    /// Completed requests per second over this tenant's own active window
    /// (first arrival → last completion). Using the tenant's window rather
    /// than the global horizon lets the fairness ratio expose starvation even
    /// when every request eventually completes.
    pub fn throughput_rps(&self) -> f64 {
        let window = self
            .last_completion_ns
            .saturating_sub(self.first_arrival_ns);
        if window == 0 || self.completed == 0 {
            return 0.0;
        }
        self.completed as f64 * 1e9 / window as f64
    }

    /// Mean admission stall per completed request, ns.
    pub fn mean_stall_ns(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.admission_stall_ns as f64 / self.completed as f64
        }
    }
}

/// Per-request completion reliability over one run: how many requests
/// completed cleanly, how many needed recovery (read-retry), and how many
/// ultimately failed (data loss or write failure). Populated by the replay
/// engines from each request's FTL completion status; the fleet tolerance
/// layer additionally accounts requests *lost* (never completed anywhere —
/// outside `total`) and requests that blew their timeout budget.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityStats {
    /// Requests completed (any status). Lost requests are NOT in here:
    /// requests offered ≡ `total + lost`.
    pub total: u64,
    /// Requests that completed without any fault-path involvement.
    pub success: u64,
    /// Requests recovered after one or more retry steps.
    pub recovered: u64,
    /// Requests that failed: data irrecoverable or write not persisted.
    pub failed: u64,
    /// Requests that never completed anywhere (device dead, no replica or
    /// retries exhausted). Zero outside fleet fault runs.
    #[serde(default)]
    pub lost: u64,
    /// Attempts that exceeded the per-request timeout budget. At device
    /// level these also count in `failed` (see
    /// [`ReliabilityStats::record_timeout`]); the fleet tolerance layer
    /// counts attempt-level timeouts here even when the request was later
    /// recovered on a replica.
    #[serde(default)]
    pub timeouts: u64,
}

impl ReliabilityStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_success(&mut self) {
        self.total += 1;
        self.success += 1;
    }

    pub fn record_recovered(&mut self) {
        self.total += 1;
        self.recovered += 1;
    }

    pub fn record_failed(&mut self) {
        self.total += 1;
        self.failed += 1;
    }

    /// Accounts a request that never completed. Lost requests are outside
    /// `total`: offered load is `total + lost`.
    pub fn record_lost(&mut self) {
        self.lost += 1;
    }

    /// Accounts a completed request that exceeded its timeout budget —
    /// it failed from the caller's point of view.
    pub fn record_timeout(&mut self) {
        self.total += 1;
        self.failed += 1;
        self.timeouts += 1;
    }

    /// Merges another reliability tally into this one.
    pub fn merge(&mut self, other: &ReliabilityStats) {
        self.total += other.total;
        self.success += other.success;
        self.recovered += other.recovered;
        self.failed += other.failed;
        self.lost += other.lost;
        self.timeouts += other.timeouts;
    }

    /// Requests offered to the system: completed plus lost.
    pub fn offered(&self) -> u64 {
        self.total + self.lost
    }

    /// Fraction of offered requests that neither failed nor were lost
    /// (1.0 when empty). Identical to the pre-fleet definition when
    /// `lost == 0`.
    pub fn availability(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            1.0
        } else {
            (self.total - self.failed) as f64 / offered as f64
        }
    }
}

/// Fairness as the min/max ratio of per-tenant throughput: 1.0 is perfectly
/// fair, values near 0 mean some tenant is starved. Tenants that never
/// completed anything drive the ratio to 0; fewer than two tenants is 1.0 by
/// definition.
pub fn fairness_ratio(tenants: &[TenantMetrics]) -> f64 {
    if tenants.len() < 2 {
        return 1.0;
    }
    let tp: Vec<f64> = tenants.iter().map(TenantMetrics::throughput_rps).collect();
    let max = tp.iter().cloned().fold(0.0f64, f64::max);
    // ipu-lint: allow(float-eq) — the fold starts at literal 0.0, so an exact 0.0 max means every tenant throughput was exactly zero
    if max == 0.0 {
        return 1.0; // no tenant moved at all: vacuously fair
    }
    let min = tp.iter().cloned().fold(f64::INFINITY, f64::min);
    min / max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert!(s.min_ns().is_none());
        assert_eq!(s.percentile_ns(50.0), 0);
    }

    #[test]
    fn empty_stats_serialize_without_sentinel() {
        // Regression: the old representation kept `min_ns = u64::MAX` while
        // empty, which leaked into JSON reports. Empty must serialize as 0.
        let json = serde_json::to_string(&LatencyStats::new()).unwrap();
        assert!(
            !json.contains(&u64::MAX.to_string()),
            "sentinel leaked: {json}"
        );
        let back: LatencyStats = serde_json::from_str(&json).unwrap();
        assert!(back.min_ns().is_none());
        // And min tracking still works after a round-trip of an empty stats.
        let mut back = back;
        back.record(42);
        assert_eq!(back.min_ns(), Some(42));
    }

    #[test]
    fn mean_min_max_exact() {
        let mut s = LatencyStats::new();
        for ns in [100u64, 200, 300] {
            s.record(ns);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean_ns(), 200.0);
        assert_eq!(s.min_ns(), Some(100));
        assert_eq!(s.max_ns(), 300);
        assert!((s.mean_ms() - 0.0002).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_bucket_accurate() {
        let mut s = LatencyStats::new();
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            s.record(1_000);
        }
        for _ in 0..10 {
            s.record(1_000_000);
        }
        let p50 = s.percentile_ns(50.0);
        let p99 = s.percentile_ns(99.0);
        assert!((512..=2048).contains(&p50), "p50 {p50}");
        assert!(p99 >= 500_000, "p99 {p99}");
        assert!(p99 <= s.max_ns());
    }

    #[test]
    fn percentiles_never_leave_the_sample_range() {
        // Regression: a sample near the top of its bucket (e.g. 1900 in
        // [1024, 2048)) used to report p1 ≈ bucket midpoint < min sample.
        let mut s = LatencyStats::new();
        for _ in 0..100 {
            s.record(1_900);
        }
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            let v = s.percentile_ns(p);
            assert!(v >= 1_900, "p{p} = {v} below min 1900");
            assert!(v <= 1_900, "p{p} = {v} above max 1900");
        }
        // Geometric (not arithmetic) midpoint: a lone 1 µs sample sits in
        // [512, 1024) whose geometric midpoint is ⌊512·√2⌋ = 724.
        let mut g = LatencyStats::new();
        g.record(1_000);
        g.record(700);
        assert_eq!(g.percentile_ns(50.0), 724);
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(10);
        b.record(1_000_000);
        b.record(2_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min_ns(), Some(10));
        assert_eq!(a.max_ns(), 2_000_000);
        // Merging an empty histogram changes nothing.
        let snapshot = a.clone();
        a.merge(&LatencyStats::new());
        assert_eq!(a.count(), snapshot.count());
        assert_eq!(a.min_ns(), snapshot.min_ns());
    }

    #[test]
    fn merge_into_empty_adopts_min() {
        let mut empty = LatencyStats::new();
        let mut full = LatencyStats::new();
        full.record(500);
        empty.merge(&full);
        assert_eq!(empty.min_ns(), Some(500));
        assert_eq!(empty.max_ns(), 500);
    }

    #[test]
    fn zero_latency_sample_is_tolerated() {
        let mut s = LatencyStats::new();
        s.record(0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.min_ns(), Some(0));
    }

    #[test]
    fn reliability_counts_and_merges() {
        let mut r = ReliabilityStats::new();
        assert_eq!(r.availability(), 1.0);
        r.record_success();
        r.record_recovered();
        let mut other = ReliabilityStats::new();
        other.record_failed();
        other.record_success();
        r.merge(&other);
        assert_eq!(r.total, 4);
        assert_eq!(r.success, 2);
        assert_eq!(r.recovered, 1);
        assert_eq!(r.failed, 1);
        assert!((r.availability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lost_and_timeout_requests_are_conserved() {
        let mut r = ReliabilityStats::new();
        r.record_success();
        r.record_lost();
        r.record_timeout();
        // Lost stays outside `total`; timeouts land in total + failed.
        assert_eq!(r.total, 2);
        assert_eq!(r.lost, 1);
        assert_eq!(r.timeouts, 1);
        assert_eq!(r.failed, 1);
        assert_eq!(r.offered(), 3);
        // Availability counts both the timeout and the loss against us:
        // 1 clean of 3 offered.
        assert!((r.availability() - 1.0 / 3.0).abs() < 1e-12);

        let mut other = ReliabilityStats::new();
        other.record_lost();
        other.record_success();
        r.merge(&other);
        assert_eq!(r.offered(), 5);
        assert_eq!(r.lost, 2);

        // With no losses or timeouts the definition is unchanged.
        let mut clean = ReliabilityStats::new();
        clean.record_success();
        clean.record_failed();
        assert!((clean.availability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reliability_deserializes_from_legacy_reports() {
        // Reports saved before the fault model lack the field entirely;
        // containers mark it #[serde(default)], so defaults must be inert.
        let r = ReliabilityStats::default();
        assert_eq!(r.total, 0);
        let json = serde_json::to_string(&r).unwrap();
        let back: ReliabilityStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

//! Fixture: a bare `_` arm on a growth enum — a new variant added next PR
//! would be silently swallowed instead of rejected at compile time.

pub fn route(kind: FlashOpKind) -> u32 {
    match kind {
        FlashOpKind::HostRead => 1,
        _ => 0,
    }
}

//! The flash device: executes program / read / erase operations, maintains
//! physical state, applies the disturb model and charges latencies.
//!
//! The device is deliberately *passive*: it has no notion of time-of-day or
//! queueing — it reports how long each operation takes and `ipu-sim` schedules
//! them onto channels and chips. It also has no notion of logical addresses —
//! `ipu-ftl` decides which physical subpages to touch.

use serde::{Deserialize, Serialize};

use crate::config::DeviceConfig;
use crate::geometry::{BlockAddr, Spa};
use crate::mode::CellMode;
use crate::state::{BlockState, SubpageState};
use crate::time::Nanos;
use crate::wear::WearTracker;

/// Errors returned by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Address is outside the device geometry for the block's current mode.
    OutOfRange(String),
    /// Attempted to program a subpage that is not free.
    SubpageNotFree(Spa),
    /// Page already consumed its partial-program (NOP) budget.
    PartialProgramLimit { spa: Spa, limit: u8 },
    /// Partial programming attempted on a mode that does not support it.
    PartialNotSupported { spa: Spa, mode: CellMode },
    /// Attempted to read a subpage that has never been programmed.
    ReadOfFreeSubpage(Spa),
    /// Attempted to invalidate a subpage that is not valid.
    NotValid(Spa),
    /// The program pulse reported a status failure (injected media fault).
    /// The attempt still occupied the chip for `latency_ns`.
    ProgramFailed { spa: Spa, latency_ns: Nanos },
    /// The erase pulse reported a status failure (injected media fault).
    EraseFailed { addr: BlockAddr, latency_ns: Nanos },
}

impl FlashError {
    /// "Never written": the target subpage is erased, not corrupted. During
    /// power-loss reconstruction this tells the FTL a mapping candidate was
    /// simply never programmed, as opposed to a media failure.
    pub fn is_never_written(&self) -> bool {
        matches!(self, FlashError::ReadOfFreeSubpage(_))
    }

    /// A media failure: the operation was well-formed but the flash array
    /// failed it. These are the errors the recovery paths (retirement,
    /// remap, retry) handle; everything else is a caller bug.
    pub fn is_media_failure(&self) -> bool {
        matches!(
            self,
            FlashError::ProgramFailed { .. } | FlashError::EraseFailed { .. }
        )
    }
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::OutOfRange(s) => write!(f, "address out of range: {s}"),
            FlashError::SubpageNotFree(s) => write!(f, "subpage not free: {s}"),
            FlashError::PartialProgramLimit { spa, limit } => {
                write!(f, "page at {spa} exhausted its NOP budget of {limit}")
            }
            FlashError::PartialNotSupported { spa, mode } => {
                write!(f, "partial program at {spa} not supported in {mode}-mode")
            }
            FlashError::ReadOfFreeSubpage(s) => write!(f, "read of erased subpage: {s}"),
            FlashError::NotValid(s) => write!(f, "subpage not valid: {s}"),
            FlashError::ProgramFailed { spa, .. } => write!(f, "program failed at {spa}"),
            FlashError::EraseFailed { addr, .. } => write!(f, "erase failed at {addr}"),
        }
    }
}

impl std::error::Error for FlashError {}

/// Result of a program operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramResult {
    /// Total latency: channel transfer plus cell program time.
    pub latency_ns: Nanos,
    /// Programmed subpages in the same page disturbed by this operation.
    pub in_page_disturbed: u16,
    /// Programmed subpages in neighbouring pages disturbed by this operation.
    pub neighbour_disturbed: u16,
    /// Whether this was a partial program (not the page's first program, or
    /// covering fewer subpages than the page exposes).
    pub partial: bool,
}

/// Result of a read operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadResult {
    /// Total latency: cell read plus channel transfer plus ECC decode.
    pub latency_ns: Nanos,
    /// Expected raw bit error rate averaged over the subpages read.
    pub rber: f64,
    /// Expected raw bit error count over the data read.
    pub expected_bit_errors: f64,
    /// Whether expected errors exceed the ECC correction capability.
    pub uncorrectable: bool,
}

/// Result of an erase operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EraseResult {
    pub latency_ns: Nanos,
    /// The block's total P/E cycles after this erase (including pre-aging).
    pub pe_cycles: u32,
}

/// Monotonically-increasing operation counters (feed the evaluation metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    pub programs: u64,
    pub partial_programs: u64,
    pub subpages_programmed: u64,
    pub reads: u64,
    pub subpages_read: u64,
    pub erases: u64,
    pub uncorrectable_reads: u64,
    pub in_page_disturb_events: u64,
    pub neighbour_disturb_events: u64,
    /// Injected program-status failures (the attempt is also in `programs`).
    #[serde(default)]
    pub program_failures: u64,
    /// Injected erase-status failures (the attempt is also in `erases`).
    #[serde(default)]
    pub erase_failures: u64,
    /// Reads forced uncorrectable by the fault injector (also counted in
    /// `uncorrectable_reads`).
    #[serde(default)]
    pub injected_read_failures: u64,
    /// Reads whose RBER was amplified by an injected transient spike.
    #[serde(default)]
    pub rber_spikes: u64,
}

/// A NAND flash device.
#[derive(Debug, Clone)]
pub struct FlashDevice {
    cfg: DeviceConfig,
    blocks: Vec<BlockState>,
    wear: WearTracker,
    counters: OpCounters,
}

impl FlashDevice {
    /// Creates a device with every block erased into `cfg.initial_mode`.
    pub fn new(cfg: DeviceConfig) -> Self {
        // ipu-lint: allow(panic-reachability) — constructor contract: configs are validated at the experiment boundary, a bad one here is programmer error
        cfg.validate().expect("invalid device configuration");
        let g = &cfg.geometry;
        let subpages = g.subpages_per_page() as u8;
        let blocks = (0..g.total_blocks())
            .map(|_| {
                BlockState::erased(
                    cfg.initial_mode,
                    g.pages_per_block(cfg.initial_mode),
                    subpages,
                )
            })
            .collect();
        let wear = WearTracker::new(g.total_blocks(), cfg.initial_pe_cycles);
        FlashDevice {
            cfg,
            blocks,
            wear,
            counters: OpCounters::default(),
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Wear statistics.
    pub fn wear(&self) -> &WearTracker {
        &self.wear
    }

    /// Operation counters.
    pub fn counters(&self) -> OpCounters {
        self.counters
    }

    /// Physical state of a block.
    pub fn block(&self, addr: BlockAddr) -> &BlockState {
        &self.blocks[self.cfg.geometry.block_index(addr) as usize]
    }

    /// Physical state of a block by dense index.
    pub fn block_by_index(&self, idx: u64) -> &BlockState {
        &self.blocks[idx as usize]
    }

    /// Re-formats a *pristine* block into `mode` without consuming a P/E cycle.
    ///
    /// Used at device initialization to carve out the SLC-mode cache region.
    /// Panics if the block has been programmed since its last erase.
    pub fn set_block_mode(&mut self, addr: BlockAddr, mode: CellMode) {
        let g = self.cfg.geometry.clone();
        let idx = g.block_index(addr) as usize;
        assert!(
            self.blocks[idx].is_pristine(),
            "set_block_mode requires a pristine block; erase {addr} instead"
        );
        let subpages = g.subpages_per_page() as u8;
        let pages = g.pages_per_block(mode);
        // Re-shape without charging an erase: swap in a fresh state that keeps
        // the existing erase count.
        let erases = self.blocks[idx].erase_count();
        let mut fresh = BlockState::erased(mode, pages, subpages);
        for _ in 0..erases {
            // Preserve the historical erase count on the new state.
            fresh.erase(mode, pages, subpages);
        }
        self.blocks[idx] = fresh;
    }

    /// Programs `count` subpages starting at `spa` in one program operation.
    ///
    /// The first program of a page is "conventional" regardless of how many
    /// subpages it covers; any later program is a *partial program*, permitted
    /// only in SLC-mode and only up to the NOP budget of 4. Disturb is applied
    /// to earlier-programmed subpages of the same page and to programmed
    /// subpages of the two adjacent pages.
    pub fn program(&mut self, spa: Spa, count: u8) -> Result<ProgramResult, FlashError> {
        let g = self.cfg.geometry.clone();
        let idx = g.block_index(spa.ppa.block_addr()) as usize;
        let mode = self.blocks[idx].mode();
        if !g.contains(spa.ppa, mode) {
            return Err(FlashError::OutOfRange(spa.to_string()));
        }
        let subpages_per_page = g.subpages_per_page() as u8;
        if count == 0 || spa.subpage + count > subpages_per_page {
            return Err(FlashError::OutOfRange(format!("{spa} + {count} subpages")));
        }

        let page = self.blocks[idx].page(spa.ppa.page);
        let is_follow_up = page.program_ops() > 0;
        let is_partial = is_follow_up || count < subpages_per_page;
        if is_follow_up {
            if !mode.supports_partial_programming() {
                return Err(FlashError::PartialNotSupported { spa, mode });
            }
            if page.program_ops() >= self.cfg.max_partial_programs {
                return Err(FlashError::PartialProgramLimit {
                    spa,
                    limit: self.cfg.max_partial_programs,
                });
            }
        }

        // Injected program-status failure: the pulse runs (and its latency is
        // charged via the error) but no subpage state changes; the FTL is
        // expected to retire the block and remap the data.
        if !self.cfg.fault.is_inert() {
            let die = g.die_index(spa.ppa.block_addr());
            let addr_key = ((idx as u64) << 20) | ((spa.ppa.page as u64) << 4) | spa.subpage as u64;
            if self
                .cfg
                .fault
                .program_fails(self.counters.programs, die, idx as u64, addr_key)
            {
                let bytes = count as u32 * g.subpage_size;
                let latency_ns =
                    self.cfg.timing.transfer_ns(bytes) + self.cfg.timing.program_ns(mode);
                self.counters.programs += 1;
                self.counters.program_failures += 1;
                return Err(FlashError::ProgramFailed { spa, latency_ns });
            }
        }

        let in_page_disturbed = self.blocks[idx]
            .apply_program_at(spa.ppa.page, spa.subpage, count)
            .map_err(|_| FlashError::SubpageNotFree(spa))?;
        self.blocks[idx].note_program();

        // Neighbour disturb on the adjacent word lines.
        let mut neighbour_disturbed = 0u16;
        let pages_in_block = self.blocks[idx].page_count();
        if spa.ppa.page > 0 {
            neighbour_disturbed += self.blocks[idx]
                .page_mut(spa.ppa.page - 1)
                .apply_neighbour_disturb();
        }
        if spa.ppa.page + 1 < pages_in_block {
            neighbour_disturbed += self.blocks[idx]
                .page_mut(spa.ppa.page + 1)
                .apply_neighbour_disturb();
        }

        let bytes = count as u32 * g.subpage_size;
        let latency_ns = self.cfg.timing.transfer_ns(bytes) + self.cfg.timing.program_ns(mode);

        self.counters.programs += 1;
        self.counters.subpages_programmed += count as u64;
        if is_partial {
            self.counters.partial_programs += 1;
        }
        self.counters.in_page_disturb_events += in_page_disturbed as u64;
        self.counters.neighbour_disturb_events += neighbour_disturbed as u64;

        Ok(ProgramResult {
            latency_ns,
            in_page_disturbed,
            neighbour_disturbed,
            partial: is_partial,
        })
    }

    /// Reads `count` subpages starting at `spa`.
    ///
    /// Latency is cell read + channel transfer + BCH decode, where the decode
    /// time follows the expected raw bit errors of the *actual* subpages read
    /// (their block's P/E wear amplified by their disturb history).
    pub fn read(&mut self, spa: Spa, count: u8) -> Result<ReadResult, FlashError> {
        self.read_scaled(spa, count, 1.0)
    }

    /// Reads with an RBER scale factor, modelling one step of the read-retry
    /// ladder: re-sensing at shifted reference voltages is slower (the caller
    /// adds the step's extra latency) but sees fewer raw bit errors.
    ///
    /// Injected read faults re-draw on every call — the operation counter
    /// advances per read — so a retry of a transient failure can succeed.
    pub fn read_scaled(
        &mut self,
        spa: Spa,
        count: u8,
        rber_scale: f64,
    ) -> Result<ReadResult, FlashError> {
        let g = self.cfg.geometry.clone();
        let idx = g.block_index(spa.ppa.block_addr()) as usize;
        let mode = self.blocks[idx].mode();
        if !g.contains(spa.ppa, mode) {
            return Err(FlashError::OutOfRange(spa.to_string()));
        }
        let subpages_per_page = g.subpages_per_page() as u8;
        if count == 0 || spa.subpage + count > subpages_per_page {
            return Err(FlashError::OutOfRange(format!("{spa} + {count} subpages")));
        }
        let page = self.blocks[idx].page(spa.ppa.page);
        for s in spa.subpage..spa.subpage + count {
            if page.subpage(s) == SubpageState::Free {
                return Err(FlashError::ReadOfFreeSubpage(Spa::new(spa.ppa, s)));
            }
        }

        // Expected errors accumulate per subpage; RBER reported is the mean.
        let pe = self.wear.pe_cycles(idx as u64);
        let baseline = self.cfg.ber.baseline_rber(pe, mode);
        let read_factor = self
            .cfg
            .disturb
            .read_disturb_factor(self.blocks[idx].reads_since_erase());
        let mut rber_sum = 0.0;
        for s in spa.subpage..spa.subpage + count {
            rber_sum += self.cfg.disturb.effective_rber(
                baseline,
                page.in_page_disturbs(s),
                page.neighbour_disturbs(),
            ) * read_factor;
        }
        let mut rber = rber_sum / count as f64 * rber_scale;
        self.blocks[idx].note_read();

        // Injected transient faults: an RBER spike amplifies this read's
        // error rate; a sense failure forces the read uncorrectable outright.
        let mut injected_fail = false;
        if !self.cfg.fault.is_inert() {
            let die = g.die_index(spa.ppa.block_addr());
            let addr_key = ((idx as u64) << 20) | ((spa.ppa.page as u64) << 4) | spa.subpage as u64;
            let spike =
                self.cfg
                    .fault
                    .read_rber_factor(self.counters.reads, die, idx as u64, addr_key);
            // ipu-lint: allow(float-eq) — read_rber_factor returns the literal 1.0 as its "no spike" sentinel, so exact comparison is the contract
            if spike != 1.0 {
                rber *= spike;
                self.counters.rber_spikes += 1;
            }
            injected_fail =
                self.cfg
                    .fault
                    .read_fails(self.counters.reads, die, idx as u64, addr_key);
        }

        let bytes = count as u32 * g.subpage_size;
        // Realize the raw error count per the configured mode; the stream key
        // makes sampled draws unique per (read #, physical address) while
        // staying fully deterministic.
        let expected = rber * bytes as f64 * 8.0;
        let stream = self
            .counters
            .reads
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add((idx as u64) << 20)
            .wrapping_add(((spa.ppa.page as u64) << 4) | spa.subpage as u64);
        let realized = self.cfg.error_mode.realize(expected, stream);
        let ecc = self.cfg.ecc.decode_with_errors(bytes, realized);
        let latency_ns =
            self.cfg.timing.read_ns(mode) + self.cfg.timing.transfer_ns(bytes) + ecc.latency_ns;

        let uncorrectable = ecc.uncorrectable || injected_fail;
        self.counters.reads += 1;
        self.counters.subpages_read += count as u64;
        if injected_fail {
            self.counters.injected_read_failures += 1;
        }
        if uncorrectable {
            self.counters.uncorrectable_reads += 1;
        }

        Ok(ReadResult {
            latency_ns,
            rber,
            expected_bit_errors: ecc.expected_bit_errors,
            uncorrectable,
        })
    }

    /// Effective RBER of one subpage right now (no latency, no counters).
    ///
    /// Exposed for metric collection (paper Figure 8 reports read error rates).
    pub fn effective_rber(&self, spa: Spa) -> f64 {
        let g = &self.cfg.geometry;
        let idx = g.block_index(spa.ppa.block_addr());
        let block = &self.blocks[idx as usize];
        let page = block.page(spa.ppa.page);
        let baseline = self
            .cfg
            .ber
            .baseline_rber(self.wear.pe_cycles(idx), block.mode());
        self.cfg.disturb.effective_rber(
            baseline,
            page.in_page_disturbs(spa.subpage),
            page.neighbour_disturbs(),
        ) * self
            .cfg
            .disturb
            .read_disturb_factor(block.reads_since_erase())
    }

    /// Marks a valid subpage invalid. Purely logical bookkeeping: free of
    /// charge, but kept on the device so GC accounting can't drift from the
    /// physical state.
    pub fn invalidate(&mut self, spa: Spa) -> Result<(), FlashError> {
        let idx = self.cfg.geometry.block_index(spa.ppa.block_addr()) as usize;
        self.blocks[idx]
            .invalidate_at(spa.ppa.page, spa.subpage)
            .map_err(|_| FlashError::NotValid(spa))
    }

    /// Erase that consults the fault injector: on an injected status failure
    /// the pulse's latency is charged via the error but the block keeps its
    /// old state and no wear is recorded; the FTL must retire the block.
    pub fn try_erase(
        &mut self,
        addr: BlockAddr,
        new_mode: CellMode,
    ) -> Result<EraseResult, FlashError> {
        if !self.cfg.fault.is_inert() {
            let g = self.cfg.geometry.clone();
            let idx = g.block_index(addr);
            let die = g.die_index(addr);
            if self
                .cfg
                .fault
                .erase_fails(self.counters.erases, die, idx, idx)
            {
                self.counters.erases += 1;
                self.counters.erase_failures += 1;
                return Err(FlashError::EraseFailed {
                    addr,
                    latency_ns: self.cfg.timing.erase_ns(),
                });
            }
        }
        Ok(self.erase(addr, new_mode))
    }

    /// Erases a block, re-formatting it into `new_mode`. Infallible: the
    /// fault injector is consulted only by [`FlashDevice::try_erase`].
    pub fn erase(&mut self, addr: BlockAddr, new_mode: CellMode) -> EraseResult {
        let g = self.cfg.geometry.clone();
        let idx = g.block_index(addr);
        let old_mode = self.blocks[idx as usize].mode();
        let subpages = g.subpages_per_page() as u8;
        self.blocks[idx as usize].erase(new_mode, g.pages_per_block(new_mode), subpages);
        // The erase pulse ran while the block was still in its old mode.
        self.wear.record_erase(idx, old_mode);
        self.counters.erases += 1;
        EraseResult {
            latency_ns: self.cfg.timing.erase_ns(),
            pe_cycles: self.wear.pe_cycles(idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slc_device() -> (FlashDevice, BlockAddr) {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        (dev, addr)
    }

    #[test]
    fn new_device_is_pristine_mlc() {
        let dev = FlashDevice::new(DeviceConfig::small_for_tests());
        for i in 0..dev.config().geometry.total_blocks() {
            let b = dev.block_by_index(i);
            assert_eq!(b.mode(), CellMode::Mlc);
            assert!(b.is_pristine());
        }
        assert_eq!(dev.counters(), OpCounters::default());
    }

    #[test]
    fn set_block_mode_reshapes_without_wear() {
        let (dev, addr) = slc_device();
        let b = dev.block(addr);
        assert_eq!(b.mode(), CellMode::Slc);
        assert_eq!(b.page_count(), dev.config().geometry.pages_per_block_slc);
        assert_eq!(b.erase_count(), 0);
        assert_eq!(dev.wear().totals().slc_erases, 0);
    }

    #[test]
    #[should_panic(expected = "pristine")]
    fn set_block_mode_rejects_programmed_blocks() {
        let (mut dev, addr) = slc_device();
        dev.program(Spa::new(addr.page(0), 0), 1).unwrap();
        dev.set_block_mode(addr, CellMode::Mlc);
    }

    #[test]
    fn program_latency_covers_transfer_and_cell_time() {
        let (mut dev, addr) = slc_device();
        let r = dev.program(Spa::new(addr.page(0), 0), 4).unwrap();
        let t = &dev.config().timing;
        assert_eq!(
            r.latency_ns,
            t.transfer_ns(16 * 1024) + t.program_ns(CellMode::Slc)
        );
        assert!(!r.partial, "a full first program is conventional");
        assert_eq!(r.in_page_disturbed, 0);
    }

    #[test]
    fn partial_program_budget_is_enforced() {
        let (mut dev, addr) = slc_device();
        let page = addr.page(0);
        for s in 0..4u8 {
            dev.program(Spa::new(page, s), 1).unwrap();
        }
        // 4 program ops consumed; the page is also full, but even a free page
        // slot would be rejected — simulate by checking the error type on a
        // fresh page after 4 tiny programs is impossible, so assert budget.
        let err = dev.program(Spa::new(page, 0), 1).unwrap_err();
        assert!(matches!(
            err,
            FlashError::SubpageNotFree(_) | FlashError::PartialProgramLimit { .. }
        ));
        assert_eq!(dev.counters().programs, 4);
        assert_eq!(
            dev.counters().partial_programs,
            4,
            "1-subpage programs are partial"
        );
    }

    #[test]
    fn nop_budget_rejects_fifth_program_even_with_free_space() {
        // Build a 4-subpage page programmed by 4 ops of sizes 1,1,1,1 → full.
        // Instead use 8-subpage support? Geometry caps at 4, so emulate: 4 ops
        // on subpages 0..3, then the page is full anyway. The budget check is
        // still observable via MLC mode: second program outright unsupported.
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let addr = BlockAddr::new(0, 0, 0, 0, 1); // stays MLC
        let page = addr.page(0);
        dev.program(Spa::new(page, 0), 2).unwrap();
        let err = dev.program(Spa::new(page, 2), 2).unwrap_err();
        assert!(matches!(err, FlashError::PartialNotSupported { .. }));
    }

    #[test]
    fn disturb_propagates_to_neighbours() {
        let (mut dev, addr) = slc_device();
        dev.program(Spa::new(addr.page(0), 0), 4).unwrap();
        dev.program(Spa::new(addr.page(2), 0), 4).unwrap();
        // Programming page 1 disturbs pages 0 and 2 (4 subpages each).
        let r = dev.program(Spa::new(addr.page(1), 0), 4).unwrap();
        assert_eq!(r.neighbour_disturbed, 8);
        // Pages 0 and 2 were programmed while their neighbour (page 1) was
        // still erased, so only the final program generated disturb events.
        assert_eq!(dev.counters().neighbour_disturb_events, 8);
    }

    #[test]
    fn read_charges_ecc_by_disturb_history() {
        let (mut dev, addr) = slc_device();
        let page = addr.page(0);
        dev.program(Spa::new(page, 0), 1).unwrap();
        let clean = dev.read(Spa::new(page, 0), 1).unwrap();
        // Two later partial programs disturb subpage 0 twice.
        dev.program(Spa::new(page, 1), 1).unwrap();
        dev.program(Spa::new(page, 2), 1).unwrap();
        let disturbed = dev.read(Spa::new(page, 0), 1).unwrap();
        assert!(disturbed.rber > clean.rber);
        assert!(disturbed.latency_ns > clean.latency_ns);
        // The freshly-programmed subpage 2 has no in-page disturb yet.
        let fresh = dev.read(Spa::new(page, 2), 1).unwrap();
        assert!(fresh.rber < disturbed.rber);
    }

    #[test]
    fn read_of_erased_subpage_fails() {
        let (mut dev, addr) = slc_device();
        let err = dev.read(Spa::new(addr.page(0), 0), 1).unwrap_err();
        assert!(matches!(err, FlashError::ReadOfFreeSubpage(_)));
        // "Never written" is distinct from a media failure: power-loss
        // reconstruction probes subpages and must tell the two apart.
        assert!(err.is_never_written());
        assert!(!err.is_media_failure());
    }

    #[test]
    fn injected_program_fault_charges_latency_without_state_change() {
        let mut cfg = DeviceConfig::small_for_tests();
        cfg.fault.program_fail = 1.0;
        let mut dev = FlashDevice::new(cfg);
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        let err = dev.program(Spa::new(addr.page(0), 0), 4).unwrap_err();
        assert!(err.is_media_failure() && !err.is_never_written());
        let t = dev.config().timing.clone();
        match err {
            FlashError::ProgramFailed { latency_ns, .. } => assert_eq!(
                latency_ns,
                t.transfer_ns(16 * 1024) + t.program_ns(CellMode::Slc)
            ),
            other => panic!("expected ProgramFailed, got {other}"),
        }
        // The attempt is counted but no subpage was written.
        assert_eq!(dev.counters().programs, 1);
        assert_eq!(dev.counters().program_failures, 1);
        assert_eq!(dev.counters().subpages_programmed, 0);
        assert_eq!(dev.block(addr).page(0).subpage(0), SubpageState::Free);
    }

    #[test]
    fn injected_erase_fault_keeps_block_state() {
        let mut cfg = DeviceConfig::small_for_tests();
        cfg.fault.erase_fail = 1.0;
        let mut dev = FlashDevice::new(cfg);
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        dev.program(Spa::new(addr.page(0), 0), 1).unwrap();
        let err = dev.try_erase(addr, CellMode::Slc).unwrap_err();
        assert!(matches!(err, FlashError::EraseFailed { .. }));
        assert!(err.is_media_failure());
        // The block keeps its programmed state; no wear was recorded.
        assert_eq!(dev.block(addr).page(0).subpage(0), SubpageState::Valid);
        assert_eq!(dev.wear().totals().slc_erases, 0);
        assert_eq!(dev.counters().erase_failures, 1);
    }

    #[test]
    fn try_erase_with_inert_profile_matches_erase() {
        let (mut dev, addr) = slc_device();
        dev.program(Spa::new(addr.page(0), 0), 1).unwrap();
        let r = dev.try_erase(addr, CellMode::Mlc).unwrap();
        assert_eq!(r.latency_ns, dev.config().timing.erase_ns());
        assert!(dev.block(addr).is_pristine());
        assert_eq!(dev.counters().erase_failures, 0);
    }

    #[test]
    fn injected_read_fault_forces_uncorrectable() {
        let mut cfg = DeviceConfig::small_for_tests();
        cfg.fault.read_fail = 1.0;
        let mut dev = FlashDevice::new(cfg);
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        dev.program(Spa::new(addr.page(0), 0), 1).unwrap();
        let r = dev.read(Spa::new(addr.page(0), 0), 1).unwrap();
        assert!(r.uncorrectable);
        assert_eq!(dev.counters().injected_read_failures, 1);
        assert_eq!(dev.counters().uncorrectable_reads, 1);
    }

    #[test]
    fn transient_read_faults_redraw_per_attempt() {
        let mut cfg = DeviceConfig::small_for_tests();
        cfg.fault.read_fail = 0.5;
        cfg.fault.seed = 11;
        let mut dev = FlashDevice::new(cfg);
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        dev.program(Spa::new(addr.page(0), 0), 1).unwrap();
        let outcomes: Vec<bool> = (0..32)
            .map(|_| {
                dev.read(Spa::new(addr.page(0), 0), 1)
                    .unwrap()
                    .uncorrectable
            })
            .collect();
        assert!(
            outcomes.iter().any(|&u| u) && outcomes.iter().any(|&u| !u),
            "a 50% transient fault must both strike and spare across retries: {outcomes:?}"
        );
    }

    #[test]
    fn read_scaled_lowers_rber() {
        let (mut dev, addr) = slc_device();
        let spa = Spa::new(addr.page(0), 0);
        dev.program(spa, 1).unwrap();
        let base = dev.read(spa, 1).unwrap();
        let scaled = dev.read_scaled(spa, 1, 0.5).unwrap();
        assert!((scaled.rber - base.rber * 0.5).abs() < 1e-18);
        assert!(scaled.expected_bit_errors < base.expected_bit_errors);
    }

    #[test]
    fn rber_spike_amplifies_one_read() {
        let mut cfg = DeviceConfig::small_for_tests();
        cfg.fault.rber_spike = 1.0;
        cfg.fault.rber_spike_factor = 8.0;
        let mut dev = FlashDevice::new(cfg);
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        let spa = Spa::new(addr.page(0), 0);
        dev.program(spa, 1).unwrap();
        let spiked = dev.read(spa, 1).unwrap().rber;
        let clean = dev.effective_rber(spa);
        assert!((spiked - clean * 8.0).abs() < 1e-15);
        assert_eq!(dev.counters().rber_spikes, 1);
    }

    #[test]
    fn invalidate_then_erase_resets_everything() {
        let (mut dev, addr) = slc_device();
        let spa = Spa::new(addr.page(0), 0);
        dev.program(spa, 1).unwrap();
        dev.invalidate(spa).unwrap();
        assert!(dev.invalidate(spa).is_err());

        let r = dev.erase(addr, CellMode::Mlc);
        assert_eq!(r.latency_ns, dev.config().timing.erase_ns());
        assert_eq!(r.pe_cycles, dev.config().initial_pe_cycles + 1);
        let b = dev.block(addr);
        assert_eq!(b.mode(), CellMode::Mlc);
        assert!(b.is_pristine());
        assert_eq!(b.page_count(), dev.config().geometry.pages_per_block_mlc);
        // The erase was charged to the mode the block was in (SLC).
        assert_eq!(dev.wear().totals().slc_erases, 1);
        assert_eq!(dev.wear().totals().mlc_erases, 0);
    }

    #[test]
    fn effective_rber_matches_read_for_single_subpage() {
        let (mut dev, addr) = slc_device();
        let spa = Spa::new(addr.page(0), 0);
        dev.program(spa, 1).unwrap();
        dev.program(Spa::new(addr.page(0), 1), 1).unwrap();
        let via_read = dev.read(spa, 1).unwrap().rber;
        let via_probe = dev.effective_rber(spa);
        assert!((via_read - via_probe).abs() < 1e-15);
    }

    #[test]
    fn sampled_error_mode_is_deterministic_and_varies() {
        let run = |seed: u64| {
            let mut cfg = DeviceConfig::small_for_tests();
            cfg.error_mode = crate::error::sampling::ErrorMode::Sampled { seed };
            let mut dev = FlashDevice::new(cfg);
            let addr = BlockAddr::new(0, 0, 0, 0, 0);
            dev.set_block_mode(addr, CellMode::Slc);
            dev.program(Spa::new(addr.page(0), 0), 4).unwrap();
            (0..16)
                .map(|_| dev.read(Spa::new(addr.page(0), 0), 4).unwrap().latency_ns)
                .collect::<Vec<_>>()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must reproduce exactly");
        assert_ne!(a, c, "different seeds must differ");
        // Sampling produces per-read variation (expected mode would not).
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert!(distinct.len() > 1, "no variation across reads: {a:?}");
    }

    #[test]
    fn expected_mode_reads_are_constant() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        dev.program(Spa::new(addr.page(0), 0), 4).unwrap();
        let lats: Vec<_> = (0..8)
            .map(|_| dev.read(Spa::new(addr.page(0), 0), 4).unwrap().latency_ns)
            .collect();
        assert!(
            lats.windows(2).all(|w| w[0] == w[1]),
            "expected mode must be flat"
        );
    }

    #[test]
    fn read_disturb_raises_rber_when_enabled() {
        let mut cfg = DeviceConfig::small_for_tests();
        cfg.disturb.read_disturb_gamma_per_kread = 1.0; // strong, for the test
        let mut dev = FlashDevice::new(cfg);
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        dev.program(Spa::new(addr.page(0), 0), 4).unwrap();
        let first = dev.read(Spa::new(addr.page(0), 0), 4).unwrap();
        for _ in 0..999 {
            dev.read(Spa::new(addr.page(0), 0), 4).unwrap();
        }
        let later = dev.read(Spa::new(addr.page(0), 0), 4).unwrap();
        assert!(
            later.rber > first.rber * 1.9,
            "1000 reads at γ=1/kread must double RBER: {} vs {}",
            later.rber,
            first.rber
        );
        // An erase resets the accumulation.
        dev.erase(addr, CellMode::Slc);
        dev.program(Spa::new(addr.page(0), 0), 4).unwrap();
        let fresh = dev.read(Spa::new(addr.page(0), 0), 4).unwrap();
        assert!(fresh.rber < later.rber, "erase must reset read disturb");
    }

    #[test]
    fn mlc_pages_beyond_slc_range_are_programmable_in_mlc_mode() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let addr = BlockAddr::new(1, 0, 0, 0, 3);
        let last_mlc_page = dev.config().geometry.pages_per_block_mlc - 1;
        dev.program(Spa::new(addr.page(last_mlc_page), 0), 4)
            .unwrap();
        // The same page index is out of range once reformatted to SLC.
        dev.erase(addr, CellMode::Slc);
        let err = dev
            .program(Spa::new(addr.page(last_mlc_page), 0), 4)
            .unwrap_err();
        assert!(matches!(err, FlashError::OutOfRange(_)));
    }
}

//! FTL-level statistics feeding the paper's figures.

use serde::{Deserialize, Serialize};

use crate::types::BlockLevel;

/// Counters maintained by every scheme.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host write requests handled.
    pub host_write_requests: u64,
    /// Host read requests handled.
    pub host_read_requests: u64,

    /// Subpages written on behalf of the host into SLC-mode pages (Fig. 6).
    pub host_subpages_to_slc: u64,
    /// Subpages written on behalf of the host into MLC pages (Fig. 6).
    pub host_subpages_to_mlc: u64,

    /// Host page-program operations per destination level (Fig. 7); indexed
    /// by `BlockLevel as usize`.
    pub host_programs_per_level: [u64; 4],

    /// Writes satisfied by intra-page update (IPU's headline mechanism).
    pub intra_page_updates: u64,
    /// Writes that triggered upgraded data movement (level promotion).
    pub upgraded_writes: u64,

    /// SLC-region GC invocations.
    pub gc_runs_slc: u64,
    /// MLC-region GC invocations.
    pub gc_runs_mlc: u64,
    /// Valid subpages relocated by GC (any destination).
    pub gc_moved_subpages: u64,
    /// Valid subpages ejected from the SLC cache into MLC by GC.
    pub gc_evicted_subpages: u64,
    /// Programmed (used) subpages summed over all SLC GC victim blocks (Fig. 9).
    pub gc_victim_used_subpages: u64,
    /// Total subpages summed over all SLC GC victim blocks (Fig. 9).
    pub gc_victim_total_subpages: u64,

    /// Host reads of never-written logical addresses.
    pub unmapped_reads: u64,
    /// Σ effective RBER over host-read subpages (Fig. 8 numerator).
    pub host_read_rber_sum: f64,
    /// Host subpages read from mapped locations (Fig. 8 denominator).
    pub host_subpages_read: u64,
    /// Host reads whose expected errors exceeded ECC capability.
    pub host_uncorrectable_reads: u64,
    /// Blocks migrated by static wear-leveling.
    pub wear_leveling_migrations: u64,

    /// Uncorrectable host reads recovered by the read-retry ladder.
    #[serde(default)]
    pub recovered_reads: u64,
    /// Individual retry-step reads issued while walking the ladder.
    #[serde(default)]
    pub read_retries: u64,
    /// Total latency of retry-step reads (cell read + ECC + step penalty), ns.
    #[serde(default)]
    pub retry_latency_ns: u64,
    /// Blocks permanently retired after program or erase failures.
    #[serde(default)]
    pub retired_blocks: u64,
    /// Programs replayed onto a fresh page after a program failure.
    #[serde(default)]
    pub program_retries: u64,
    /// Host write requests that ultimately failed (placement retries
    /// exhausted or physical space ran out).
    #[serde(default)]
    pub host_write_failures: u64,
    /// Data-loss events: host reads still uncorrectable after the full retry
    /// ladder, plus subpages unrecoverable during block retirement.
    #[serde(default)]
    pub data_loss_events: u64,
    /// Pages rewritten by the background scrub/refresh pass.
    #[serde(default)]
    pub scrub_rewrites: u64,
    /// Times a reusable scratch buffer (read-run merge list, GC page-group
    /// list) had to grow its capacity. Flat after warm-up ⇔ the steady-state
    /// request path performs no scratch heap allocation; tests pin this.
    #[serde(default)]
    pub scratch_grows: u64,
}

impl FtlStats {
    /// Folds `other` into `self`: every counter sums, so merging the
    /// per-shard stats of a partitioned run reproduces the whole-run totals
    /// (the `merge-complete` lint pins every field to appear here).
    pub fn merge(&mut self, other: &FtlStats) {
        self.host_write_requests += other.host_write_requests;
        self.host_read_requests += other.host_read_requests;
        self.host_subpages_to_slc += other.host_subpages_to_slc;
        self.host_subpages_to_mlc += other.host_subpages_to_mlc;
        for (mine, theirs) in self
            .host_programs_per_level
            .iter_mut()
            .zip(other.host_programs_per_level)
        {
            *mine += theirs;
        }
        self.intra_page_updates += other.intra_page_updates;
        self.upgraded_writes += other.upgraded_writes;
        self.gc_runs_slc += other.gc_runs_slc;
        self.gc_runs_mlc += other.gc_runs_mlc;
        self.gc_moved_subpages += other.gc_moved_subpages;
        self.gc_evicted_subpages += other.gc_evicted_subpages;
        self.gc_victim_used_subpages += other.gc_victim_used_subpages;
        self.gc_victim_total_subpages += other.gc_victim_total_subpages;
        self.unmapped_reads += other.unmapped_reads;
        self.host_read_rber_sum += other.host_read_rber_sum;
        self.host_subpages_read += other.host_subpages_read;
        self.host_uncorrectable_reads += other.host_uncorrectable_reads;
        self.wear_leveling_migrations += other.wear_leveling_migrations;
        self.recovered_reads += other.recovered_reads;
        self.read_retries += other.read_retries;
        self.retry_latency_ns += other.retry_latency_ns;
        self.retired_blocks += other.retired_blocks;
        self.program_retries += other.program_retries;
        self.host_write_failures += other.host_write_failures;
        self.data_loss_events += other.data_loss_events;
        self.scrub_rewrites += other.scrub_rewrites;
        self.scratch_grows += other.scratch_grows;
    }

    /// Records a host page program of `subpages` subpages at `level`.
    pub fn note_host_program(&mut self, level: BlockLevel, subpages: u32) {
        self.host_programs_per_level[level as usize] += 1;
        if level.is_slc() {
            self.host_subpages_to_slc += subpages as u64;
        } else {
            self.host_subpages_to_mlc += subpages as u64;
        }
    }

    /// Average effective RBER over everything the host read (Fig. 8).
    pub fn avg_read_error_rate(&self) -> f64 {
        if self.host_subpages_read == 0 {
            0.0
        } else {
            self.host_read_rber_sum / self.host_subpages_read as f64
        }
    }

    /// Page utilization over SLC GC victim blocks (Fig. 9).
    pub fn gc_page_utilization(&self) -> f64 {
        if self.gc_victim_total_subpages == 0 {
            0.0
        } else {
            self.gc_victim_used_subpages as f64 / self.gc_victim_total_subpages as f64
        }
    }

    /// Share of host page programs landing at each level (Fig. 7).
    pub fn level_distribution(&self) -> [f64; 4] {
        let total: u64 = self.host_programs_per_level.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (i, &c) in self.host_programs_per_level.iter().enumerate() {
            out[i] = c as f64 / total as f64;
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // mutate-then-check idiom
mod tests {
    use super::*;

    #[test]
    fn note_host_program_routes_by_region() {
        let mut s = FtlStats::default();
        s.note_host_program(BlockLevel::Work, 3);
        s.note_host_program(BlockLevel::Hot, 1);
        s.note_host_program(BlockLevel::HighDensity, 4);
        assert_eq!(s.host_subpages_to_slc, 4);
        assert_eq!(s.host_subpages_to_mlc, 4);
        assert_eq!(s.host_programs_per_level, [1, 1, 0, 1]);
    }

    #[test]
    fn derived_metrics_handle_empty_state() {
        let s = FtlStats::default();
        assert_eq!(s.avg_read_error_rate(), 0.0);
        assert_eq!(s.gc_page_utilization(), 0.0);
        assert_eq!(s.level_distribution(), [0.0; 4]);
    }

    #[test]
    fn merge_sums_every_counter() {
        let mut a = FtlStats::default();
        a.host_write_requests = 10;
        a.host_programs_per_level = [1, 2, 3, 4];
        a.host_read_rber_sum = 0.25;
        a.scratch_grows = 7;
        let mut b = FtlStats::default();
        b.host_write_requests = 5;
        b.host_read_requests = 9;
        b.host_programs_per_level = [10, 20, 30, 40];
        b.host_read_rber_sum = 0.5;
        b.data_loss_events = 2;
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.host_write_requests, 15);
        assert_eq!(merged.host_read_requests, 9);
        assert_eq!(merged.host_programs_per_level, [11, 22, 33, 44]);
        assert!((merged.host_read_rber_sum - 0.75).abs() < 1e-12);
        assert_eq!(merged.data_loss_events, 2);
        assert_eq!(merged.scratch_grows, 7);
        // Merging the default is the identity.
        let mut same = b.clone();
        same.merge(&FtlStats::default());
        assert_eq!(same, b);
    }

    #[test]
    fn derived_metrics_compute_ratios() {
        let mut s = FtlStats::default();
        s.host_read_rber_sum = 6e-4;
        s.host_subpages_read = 2;
        assert!((s.avg_read_error_rate() - 3e-4).abs() < 1e-12);

        s.gc_victim_used_subpages = 3;
        s.gc_victim_total_subpages = 4;
        assert!((s.gc_page_utilization() - 0.75).abs() < 1e-12);

        s.host_programs_per_level = [1, 1, 0, 2];
        let d = s.level_distribution();
        assert!((d[0] - 0.25).abs() < 1e-12);
        assert!((d[3] - 0.5).abs() < 1e-12);
    }
}

//! Device geometry and physical addressing.
//!
//! The hierarchy follows SSDsim: *channel → chip → die → plane → block → page →
//! subpage*. The paper's Table 2 device has 65,536 blocks of 16 KB pages divided
//! into 4 KB subpages; the default geometry reaches that block count with
//! 8 channels × 2 chips × 2 dies × 2 planes × 1024 blocks.

use serde::{Deserialize, Serialize};

use crate::mode::CellMode;

/// Static geometry of a flash device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Number of independent channels.
    pub channels: u32,
    /// Chips (targets) per channel.
    pub chips_per_channel: u32,
    /// Dies (LUNs) per chip.
    pub dies_per_chip: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block when the block is erased in MLC-mode (Table 2: 128).
    pub pages_per_block_mlc: u32,
    /// Pages per block when the block is erased in SLC-mode (Table 2: 64).
    pub pages_per_block_slc: u32,
    /// Page size in bytes (Table 2: 16 KB).
    pub page_size: u32,
    /// Subpage (partial-programming unit) size in bytes (4 KB).
    pub subpage_size: u32,
}

impl Default for FlashGeometry {
    /// The paper-scale geometry (Table 2).
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl FlashGeometry {
    /// Paper-scale geometry: 65,536 blocks as in Table 2.
    pub fn paper_scale() -> Self {
        FlashGeometry {
            channels: 8,
            chips_per_channel: 2,
            dies_per_chip: 2,
            planes_per_die: 2,
            blocks_per_plane: 1024,
            pages_per_block_mlc: 128,
            pages_per_block_slc: 64,
            page_size: 16 * 1024,
            subpage_size: 4 * 1024,
        }
    }

    /// Tiny geometry for fast unit tests: 2 channels × 1 × 1 × 1 × 16 blocks.
    pub fn small_for_tests() -> Self {
        FlashGeometry {
            channels: 2,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 16,
            pages_per_block_mlc: 8,
            pages_per_block_slc: 4,
            page_size: 16 * 1024,
            subpage_size: 4 * 1024,
        }
    }

    /// Validates internal consistency; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0
            || self.chips_per_channel == 0
            || self.dies_per_chip == 0
            || self.planes_per_die == 0
            || self.blocks_per_plane == 0
        {
            return Err("all geometry dimensions must be non-zero".into());
        }
        if self.page_size == 0 || self.subpage_size == 0 {
            return Err("page and subpage sizes must be non-zero".into());
        }
        if !self.page_size.is_multiple_of(self.subpage_size) {
            return Err(format!(
                "page size {} is not a multiple of subpage size {}",
                self.page_size, self.subpage_size
            ));
        }
        if self.subpages_per_page() > crate::state::MAX_SUBPAGES_PER_PAGE as u32 {
            return Err(format!(
                "at most {} subpages per page supported, geometry asks for {}",
                crate::state::MAX_SUBPAGES_PER_PAGE,
                self.subpages_per_page()
            ));
        }
        if self.pages_per_block_mlc == 0 || self.pages_per_block_slc == 0 {
            return Err("pages per block must be non-zero".into());
        }
        if self.pages_per_block_slc > self.pages_per_block_mlc {
            return Err("SLC-mode cannot expose more pages than MLC-mode".into());
        }
        Ok(())
    }

    /// Subpages per page (4 for the paper's 16 KB / 4 KB split).
    #[inline]
    pub fn subpages_per_page(&self) -> u32 {
        self.page_size / self.subpage_size
    }

    /// Pages per block for the given mode.
    #[inline]
    pub fn pages_per_block(&self, mode: CellMode) -> u32 {
        match mode {
            CellMode::Slc => self.pages_per_block_slc,
            CellMode::Mlc => self.pages_per_block_mlc,
        }
    }

    /// Total planes in the device.
    #[inline]
    pub fn total_planes(&self) -> u32 {
        self.channels * self.chips_per_channel * self.dies_per_chip * self.planes_per_die
    }

    /// Total blocks in the device.
    #[inline]
    pub fn total_blocks(&self) -> u64 {
        self.total_planes() as u64 * self.blocks_per_plane as u64
    }

    /// Total chips in the device.
    #[inline]
    pub fn total_chips(&self) -> u32 {
        self.channels * self.chips_per_channel
    }

    /// Raw capacity in bytes when every block runs in MLC-mode.
    pub fn mlc_capacity_bytes(&self) -> u64 {
        self.total_blocks() * self.pages_per_block_mlc as u64 * self.page_size as u64
    }

    /// Flattens a [`BlockAddr`] into a dense index in `0..total_blocks()`.
    #[inline]
    pub fn block_index(&self, b: BlockAddr) -> u64 {
        self.plane_index(b) as u64 * self.blocks_per_plane as u64 + b.block as u64
    }

    /// Flattens the plane coordinates of an address into `0..total_planes()`.
    #[inline]
    pub fn plane_index(&self, b: BlockAddr) -> u32 {
        ((b.channel * self.chips_per_channel + b.chip) * self.dies_per_chip + b.die)
            * self.planes_per_die
            + b.plane
    }

    /// Flattens the chip coordinates of an address into `0..total_chips()`.
    #[inline]
    pub fn chip_index(&self, b: BlockAddr) -> u32 {
        b.channel * self.chips_per_channel + b.chip
    }

    /// Flattens the die coordinates of an address into a dense die index
    /// (`0..total_chips() * dies_per_chip`); fault scopes key on this.
    #[inline]
    pub fn die_index(&self, b: BlockAddr) -> u32 {
        self.chip_index(b) * self.dies_per_chip + b.die
    }

    /// Inverse of [`FlashGeometry::block_index`].
    pub fn block_from_index(&self, idx: u64) -> BlockAddr {
        debug_assert!(idx < self.total_blocks());
        let block = (idx % self.blocks_per_plane as u64) as u32;
        let mut plane_idx = (idx / self.blocks_per_plane as u64) as u32;
        let plane = plane_idx % self.planes_per_die;
        plane_idx /= self.planes_per_die;
        let die = plane_idx % self.dies_per_chip;
        plane_idx /= self.dies_per_chip;
        let chip = plane_idx % self.chips_per_channel;
        let channel = plane_idx / self.chips_per_channel;
        BlockAddr {
            channel,
            chip,
            die,
            plane,
            block,
        }
    }

    /// Checks that an address is within this geometry (page bound depends on mode).
    pub fn contains(&self, ppa: Ppa, mode: CellMode) -> bool {
        ppa.channel < self.channels
            && ppa.chip < self.chips_per_channel
            && ppa.die < self.dies_per_chip
            && ppa.plane < self.planes_per_die
            && ppa.block < self.blocks_per_plane
            && ppa.page < self.pages_per_block(mode)
    }

    /// Iterates over every block address in the device, channel-major.
    pub fn iter_blocks(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        (0..self.total_blocks()).map(move |i| self.block_from_index(i))
    }
}

/// Physical address of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr {
    pub channel: u32,
    pub chip: u32,
    pub die: u32,
    pub plane: u32,
    pub block: u32,
}

impl BlockAddr {
    pub fn new(channel: u32, chip: u32, die: u32, plane: u32, block: u32) -> Self {
        BlockAddr {
            channel,
            chip,
            die,
            plane,
            block,
        }
    }

    /// Address of a page inside this block.
    #[inline]
    pub fn page(self, page: u32) -> Ppa {
        Ppa {
            channel: self.channel,
            chip: self.chip,
            die: self.die,
            plane: self.plane,
            block: self.block,
            page,
        }
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ch{}/c{}/d{}/p{}/b{}",
            self.channel, self.chip, self.die, self.plane, self.block
        )
    }
}

/// Physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ppa {
    pub channel: u32,
    pub chip: u32,
    pub die: u32,
    pub plane: u32,
    pub block: u32,
    pub page: u32,
}

impl Ppa {
    pub fn new(channel: u32, chip: u32, die: u32, plane: u32, block: u32, page: u32) -> Self {
        Ppa {
            channel,
            chip,
            die,
            plane,
            block,
            page,
        }
    }

    /// The block this page belongs to.
    #[inline]
    pub fn block_addr(self) -> BlockAddr {
        BlockAddr {
            channel: self.channel,
            chip: self.chip,
            die: self.die,
            plane: self.plane,
            block: self.block,
        }
    }
}

impl std::fmt::Display for Ppa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/pg{}", self.block_addr(), self.page)
    }
}

/// Physical subpage address: a page plus a subpage offset within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Spa {
    pub ppa: Ppa,
    /// Subpage offset within the page, `0..subpages_per_page`.
    pub subpage: u8,
}

impl Spa {
    pub fn new(ppa: Ppa, subpage: u8) -> Self {
        Spa { ppa, subpage }
    }
}

impl std::fmt::Display for Spa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/sp{}", self.ppa, self.subpage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table2() {
        let g = FlashGeometry::paper_scale();
        g.validate().unwrap();
        assert_eq!(g.total_blocks(), 65_536);
        assert_eq!(g.subpages_per_page(), 4);
        assert_eq!(g.pages_per_block(CellMode::Slc), 64);
        assert_eq!(g.pages_per_block(CellMode::Mlc), 128);
        assert_eq!(g.page_size, 16 * 1024);
        // 65536 blocks * 128 pages * 16 KB = 128 GiB raw MLC capacity.
        assert_eq!(g.mlc_capacity_bytes(), 128 * (1 << 30));
    }

    #[test]
    fn block_index_round_trips() {
        let g = FlashGeometry::paper_scale();
        for idx in [0u64, 1, 1023, 1024, 65_535, 40_000, 12_345] {
            let addr = g.block_from_index(idx);
            assert_eq!(g.block_index(addr), idx, "index {idx} mangled via {addr}");
        }
    }

    #[test]
    fn block_index_is_dense_and_unique() {
        let g = FlashGeometry::small_for_tests();
        let mut seen = vec![false; g.total_blocks() as usize];
        for b in g.iter_blocks() {
            let i = g.block_index(b) as usize;
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn plane_and_chip_indices_are_bounded() {
        let g = FlashGeometry::paper_scale();
        for idx in 0..g.total_blocks() {
            let b = g.block_from_index(idx);
            assert!(g.plane_index(b) < g.total_planes());
            assert!(g.chip_index(b) < g.total_chips());
        }
    }

    #[test]
    fn contains_respects_mode_page_counts() {
        let g = FlashGeometry::paper_scale();
        let slc_edge = Ppa::new(0, 0, 0, 0, 0, 63);
        let beyond_slc = Ppa::new(0, 0, 0, 0, 0, 64);
        assert!(g.contains(slc_edge, CellMode::Slc));
        assert!(!g.contains(beyond_slc, CellMode::Slc));
        assert!(g.contains(beyond_slc, CellMode::Mlc));
        assert!(!g.contains(Ppa::new(8, 0, 0, 0, 0, 0), CellMode::Mlc));
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut g = FlashGeometry::paper_scale();
        g.subpage_size = 3000; // not a divisor of 16 KB
        assert!(g.validate().is_err());

        let mut g = FlashGeometry::paper_scale();
        g.channels = 0;
        assert!(g.validate().is_err());

        let mut g = FlashGeometry::paper_scale();
        g.subpage_size = 1024; // 16 subpages per page > MAX_SUBPAGES_PER_PAGE
        assert!(g.validate().is_err());

        let mut g = FlashGeometry::paper_scale();
        g.pages_per_block_slc = 256; // more than MLC
        assert!(g.validate().is_err());
    }

    #[test]
    fn display_formats_are_readable() {
        let spa = Spa::new(Ppa::new(1, 0, 1, 0, 42, 7), 3);
        assert_eq!(spa.to_string(), "ch1/c0/d1/p0/b42/pg7/sp3");
    }
}

//! Machine-readable experiment records: save/load JSON result files so long
//! sweeps can be recorded once and compared against the paper (EXPERIMENTS.md).

use std::fs;
use std::io;
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;

/// A saved experiment artifact: config + named result payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord<T> {
    /// Experiment identifier (e.g. "fig5", "table3", "pe_sweep").
    pub experiment: String,
    /// The configuration the result was produced under.
    pub config: ExperimentConfig,
    /// The result payload.
    pub result: T,
}

impl<T: Serialize + DeserializeOwned> ExperimentRecord<T> {
    pub fn new(experiment: &str, config: ExperimentConfig, result: T) -> Self {
        ExperimentRecord {
            experiment: experiment.to_string(),
            config,
            result,
        }
    }

    /// Writes the record as pretty JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        fs::write(path, json)
    }

    /// Reads a record back.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_ber_curve;

    #[test]
    fn record_round_trips_through_json() {
        let dir = std::env::temp_dir().join("ipu-core-test-results");
        let path = dir.join("fig2.json");
        let record = ExperimentRecord::new(
            "fig2",
            ExperimentConfig::scaled(0.01),
            run_ber_curve(&[1000, 4000]),
        );
        record.save(&path).unwrap();
        let loaded: ExperimentRecord<Vec<crate::experiment::BerCurvePoint>> =
            ExperimentRecord::load(&path).unwrap();
        assert_eq!(loaded.experiment, "fig2");
        assert_eq!(loaded.result.len(), 2);
        assert_eq!(loaded.config.scale, 0.01);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_of_missing_file_errors() {
        let r: io::Result<ExperimentRecord<Vec<u32>>> =
            ExperimentRecord::load("/nonexistent/definitely/missing.json");
        assert!(r.is_err());
    }
}

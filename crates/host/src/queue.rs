//! Closed-loop multi-queue engine.
//!
//! Models the NVMe-style host side: each tenant owns a submission queue with
//! a bounded depth; a request occupies a slot from *admission* until
//! *completion*, and a new request is admitted only when a slot frees —
//! closed-loop, so arrival times shift under backpressure instead of the
//! open-loop assumption that the host fires regardless. A serial dispatcher
//! (the controller's command fetch path) drains submitted requests in
//! arbitration order and hands each to a device model supplied as a callback.
//!
//! The device callback receives `(tenant, seq, dispatch_ns)` and returns the
//! completion time; the engine owns all queueing, arbitration, admission and
//! metric bookkeeping, which keeps it independently testable with synthetic
//! service-time models.

use std::collections::{BinaryHeap, VecDeque};

use ipu_flash::Nanos;
use serde::{Deserialize, Serialize};

use crate::arbiter::Arbiter;
use crate::config::HostConfig;
use crate::metrics::{fairness_ratio, LatencyStats, TenantMetrics};

/// Full life cycle of one request through the host interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    pub tenant: usize,
    /// Index into the tenant's arrival stream.
    pub seq: usize,
    /// When the host produced the request.
    pub arrival_ns: Nanos,
    /// When a queue slot was granted (= arrival unless the queue was full).
    pub admit_ns: Nanos,
    /// When the controller dispatched it to the device.
    pub dispatch_ns: Nanos,
    pub completion_ns: Nanos,
}

/// Aggregated result of one closed-loop run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostReport {
    pub queue_depth: usize,
    pub arbitration: String,
    pub tenants: Vec<TenantMetrics>,
    /// Min/max per-tenant throughput ratio (see [`fairness_ratio`]).
    pub fairness: f64,
    /// Last completion time of the run.
    pub horizon_ns: Nanos,
}

impl HostReport {
    /// Submission-to-completion latency over all tenants combined.
    pub fn overall_service_latency(&self) -> LatencyStats {
        let mut all = LatencyStats::new();
        for t in &self.tenants {
            all.merge(&t.service_latency);
        }
        all
    }

    pub fn total_completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }
}

/// Per-tenant run state.
struct TenantQueue {
    /// Sorted request arrival times; `next_arrival` indexes the first not yet
    /// admitted.
    arrivals: Vec<Nanos>,
    next_arrival: usize,
    /// Admitted, waiting for the dispatcher: `(seq, arrival_ns, admit_ns)`.
    submitted: VecDeque<(usize, Nanos, Nanos)>,
    /// Dispatched to the device, not yet completed.
    inflight: usize,
    metrics: TenantMetrics,
}

impl TenantQueue {
    fn occupancy(&self) -> usize {
        self.submitted.len() + self.inflight
    }

    fn exhausted(&self) -> bool {
        self.next_arrival == self.arrivals.len() && self.occupancy() == 0
    }
}

/// Runs the closed-loop simulation. `arrivals[t]` is tenant `t`'s sorted
/// request arrival times; `service(t, seq, dispatch_ns) -> completion_ns`
/// models the device (it is invoked in dispatch order with nondecreasing
/// dispatch times, so it may carry mutable device state).
///
/// Returns the per-tenant report and the per-request outcome log in
/// completion order.
pub fn run_closed_loop(
    cfg: &HostConfig,
    arrivals: &[Vec<Nanos>],
    mut service: impl FnMut(usize, usize, Nanos) -> Nanos,
) -> (HostReport, Vec<RequestOutcome>) {
    // Covers the whole closed loop; the FTL/device work the service callback
    // performs opens its own (nested) spans, so exclusive-time accounting
    // leaves this span with just the queue/arbitration/admission machinery.
    let _span = ipu_obs::span(ipu_obs::Phase::HostArbitration);
    assert_eq!(
        arrivals.len(),
        cfg.tenants.len(),
        "one arrival stream per configured tenant"
    );
    for stream in arrivals {
        assert!(
            stream.windows(2).all(|w| w[0] <= w[1]),
            "arrival times must be sorted"
        );
    }

    let depth = cfg.queue_depth;
    let mut queues: Vec<TenantQueue> = cfg
        .tenants
        .iter()
        .zip(arrivals)
        .map(|(spec, arr)| {
            let mut metrics = TenantMetrics::new(spec.name.clone(), depth);
            metrics.first_arrival_ns = arr.first().copied().unwrap_or(0);
            TenantQueue {
                arrivals: arr.clone(),
                next_arrival: 0,
                submitted: VecDeque::new(),
                inflight: 0,
                metrics,
            }
        })
        .collect();
    let mut arbiter = Arbiter::new(cfg.arbitration, &cfg.tenants);

    // Pending completions, min-heap by time (tenant, seq carried for slot
    // release). `Reverse` flips `BinaryHeap`'s max ordering.
    use std::cmp::Reverse;
    let mut completions: BinaryHeap<Reverse<(Nanos, usize, usize)>> = BinaryHeap::new();
    let mut outcomes: Vec<RequestOutcome> = Vec::new();
    let mut dispatcher_free: Nanos = 0;
    let mut now: Nanos = 0;
    let mut ready = vec![false; queues.len()];

    loop {
        // Settle everything that can happen at the current instant, in causal
        // order: completions free slots → admissions fill them → the
        // dispatcher drains submitted work. Dispatching may produce another
        // same-instant completion, so iterate to a fixpoint.
        loop {
            let mut progressed = false;

            while let Some(&Reverse((t_done, tenant, _seq))) = completions.peek() {
                if t_done > now {
                    break;
                }
                completions.pop();
                queues[tenant].inflight -= 1;
                progressed = true;
            }

            for q in queues.iter_mut() {
                while q.next_arrival < q.arrivals.len()
                    && q.arrivals[q.next_arrival] <= now
                    && q.occupancy() < depth
                {
                    let arrival = q.arrivals[q.next_arrival];
                    q.next_arrival += 1;
                    let admit = now;
                    if admit > arrival {
                        q.metrics.admission_stall_ns += (admit - arrival) as u128;
                        q.metrics.stalled_requests += 1;
                    }
                    q.submitted.push_back((q.next_arrival - 1, arrival, admit));
                    progressed = true;
                }
            }

            while dispatcher_free <= now {
                for (i, q) in queues.iter().enumerate() {
                    ready[i] = !q.submitted.is_empty();
                }
                let Some(t) = arbiter.pick(&ready) else { break };
                let (seq, arrival, admit) = queues[t]
                    .submitted
                    .pop_front()
                    .expect("picked tenant has work");
                queues[t].inflight += 1;
                let completion = service(t, seq, now);
                assert!(completion >= now, "device completed before dispatch");
                completions.push(Reverse((completion, t, seq)));
                outcomes.push(RequestOutcome {
                    tenant: t,
                    seq,
                    arrival_ns: arrival,
                    admit_ns: admit,
                    dispatch_ns: now,
                    completion_ns: completion,
                });
                let m = &mut queues[t].metrics;
                m.completed += 1;
                m.service_latency.record(completion - admit);
                m.e2e_latency.record(completion - arrival);
                m.last_completion_ns = m.last_completion_ns.max(completion);
                dispatcher_free = now + cfg.dispatch_overhead_ns;
                progressed = true;
                if cfg.dispatch_overhead_ns > 0 {
                    break;
                }
            }

            if !progressed {
                break;
            }
        }

        // Next instant anything can happen.
        let mut next: Option<Nanos> = completions.peek().map(|&Reverse((t, _, _))| t);
        for q in &queues {
            if q.next_arrival < q.arrivals.len() && q.occupancy() < depth {
                let t = q.arrivals[q.next_arrival];
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        if queues.iter().any(|q| !q.submitted.is_empty()) && dispatcher_free > now {
            next = Some(next.map_or(dispatcher_free, |n| n.min(dispatcher_free)));
        }

        let Some(next) = next else {
            debug_assert!(
                queues.iter().all(TenantQueue::exhausted),
                "deadlocked queues"
            );
            break;
        };
        debug_assert!(next > now, "time must advance between fixpoints");
        let dt = next - now;
        for q in queues.iter_mut() {
            q.metrics.occupancy.observe(q.occupancy(), dt);
        }
        now = next;
    }

    // Completion order is what a host observes on the CQ; the dispatch-order
    // log sorts stably by (completion, tenant, seq).
    outcomes.sort_by_key(|o| (o.completion_ns, o.tenant, o.seq));

    let tenants: Vec<TenantMetrics> = queues.into_iter().map(|q| q.metrics).collect();
    let report = HostReport {
        queue_depth: depth,
        arbitration: cfg.arbitration.label().to_string(),
        fairness: fairness_ratio(&tenants),
        horizon_ns: tenants
            .iter()
            .map(|t| t.last_completion_ns)
            .max()
            .unwrap_or(0),
        tenants,
    };
    (report, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArbitrationPolicy, HostConfig, TenantSpec};

    /// Device with one serial resource: each request takes `service_ns` and
    /// requests execute one at a time in dispatch order.
    fn serial_device(service_ns: Nanos) -> impl FnMut(usize, usize, Nanos) -> Nanos {
        let mut busy_until: Nanos = 0;
        move |_t, _seq, dispatch| {
            let start = dispatch.max(busy_until);
            busy_until = start + service_ns;
            busy_until
        }
    }

    #[test]
    fn qd1_serializes_requests() {
        // One tenant, QD=1: each request admits only after the previous
        // completes, regardless of how bursty arrivals are.
        let cfg = HostConfig::single(1);
        let arrivals = vec![vec![0, 0, 0, 0]];
        let (report, outcomes) = run_closed_loop(&cfg, &arrivals, serial_device(100));
        assert_eq!(report.total_completed(), 4);
        assert_eq!(
            outcomes.iter().map(|o| o.dispatch_ns).collect::<Vec<_>>(),
            vec![0, 100, 200, 300]
        );
        // All but the first stalled for a slot; service latency stays flat.
        let t = &report.tenants[0];
        assert_eq!(t.stalled_requests, 3);
        assert_eq!(t.admission_stall_ns, (100 + 200 + 300) as u128);
        assert_eq!(t.service_latency.max_ns(), 100);
        assert_eq!(t.e2e_latency.max_ns(), 400);
    }

    #[test]
    fn deep_queue_absorbs_burst_without_stall() {
        let cfg = HostConfig::single(8);
        let arrivals = vec![vec![0, 0, 0, 0]];
        let (report, outcomes) = run_closed_loop(&cfg, &arrivals, serial_device(100));
        let t = &report.tenants[0];
        assert_eq!(t.stalled_requests, 0);
        assert_eq!(t.admission_stall_ns, 0);
        // All dispatched immediately; the device itself queues them.
        assert!(outcomes.iter().all(|o| o.dispatch_ns == 0));
        // Service latency now *includes* device queueing: 100..400.
        assert_eq!(t.service_latency.max_ns(), 400);
    }

    #[test]
    fn closed_loop_shifts_arrivals_under_backpressure() {
        // Open loop would fire at 0,10,20,30; closed loop QD=1 with 100 ns
        // service must push every admission to the prior completion.
        let cfg = HostConfig::single(1);
        let arrivals = vec![vec![0, 10, 20, 30]];
        let (_, outcomes) = run_closed_loop(&cfg, &arrivals, serial_device(100));
        assert_eq!(
            outcomes.iter().map(|o| o.admit_ns).collect::<Vec<_>>(),
            vec![0, 100, 200, 300]
        );
        assert_eq!(
            outcomes
                .iter()
                .map(|o| o.admit_ns - o.arrival_ns)
                .collect::<Vec<_>>(),
            vec![0, 90, 180, 270]
        );
    }

    #[test]
    fn occupancy_histogram_is_time_weighted() {
        let cfg = HostConfig::single(2);
        // One request at t=0 (service 100), idle to t=1000, then one more.
        let arrivals = vec![vec![0, 1_000]];
        let (report, _) = run_closed_loop(&cfg, &arrivals, serial_device(100));
        let occ = &report.tenants[0].occupancy;
        assert_eq!(occ.levels()[1], 200); // two requests × 100 ns in flight
        assert_eq!(occ.levels()[0], 900); // the idle gap
        assert_eq!(occ.levels()[2], 0);
        assert!((occ.mean() - 200.0 / 1100.0).abs() < 1e-9);
    }

    #[test]
    fn dispatcher_overhead_serializes_command_fetch() {
        // Infinite device parallelism; the 50 ns dispatcher is the bottleneck.
        let cfg = HostConfig::single(8).with_dispatch_overhead(50);
        let arrivals = vec![vec![0, 0, 0, 0]];
        let (_, outcomes) = run_closed_loop(&cfg, &arrivals, |_, _, d| d + 10);
        assert_eq!(
            outcomes.iter().map(|o| o.dispatch_ns).collect::<Vec<_>>(),
            vec![0, 50, 100, 150]
        );
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let cfg = HostConfig::new(
            4,
            ArbitrationPolicy::RoundRobin,
            vec![TenantSpec::new("a"), TenantSpec::new("b")],
        );
        let arrivals = vec![vec![0; 30], vec![0; 30]];
        let (report, outcomes) = run_closed_loop(&cfg, &arrivals, serial_device(10));
        let order: Vec<usize> = outcomes.iter().map(|o| o.tenant).collect();
        assert_eq!(&order[..6], &[0, 1, 0, 1, 0, 1]);
        assert!(
            order.chunks(2).all(|c| c == [0, 1]),
            "strict alternation expected"
        );
        assert!(
            (report.fairness - 1.0).abs() < 0.05,
            "fairness {}",
            report.fairness
        );
    }

    #[test]
    fn strict_priority_defers_bulk_class() {
        let cfg = HostConfig::new(
            4,
            ArbitrationPolicy::StrictPriority,
            vec![
                TenantSpec::new("urgent").with_priority(0),
                TenantSpec::new("bulk").with_priority(1),
            ],
        )
        .with_dispatch_overhead(100);
        // Device far faster than the dispatcher → the dispatcher is the
        // contended resource and priority decides who gets it.
        let arrivals = vec![vec![0; 20], vec![0; 20]];
        let (report, outcomes) = run_closed_loop(&cfg, &arrivals, |_, _, d| d + 10);
        let urgent_last_dispatch = outcomes
            .iter()
            .filter(|o| o.tenant == 0)
            .map(|o| o.dispatch_ns)
            .max()
            .unwrap();
        let bulk_first_dispatch = outcomes
            .iter()
            .filter(|o| o.tenant == 1)
            .map(|o| o.dispatch_ns)
            .min()
            .unwrap();
        assert!(
            bulk_first_dispatch > urgent_last_dispatch,
            "bulk dispatched at {bulk_first_dispatch} before urgent finished at \
             {urgent_last_dispatch}"
        );
        assert!(
            report.fairness < 0.7,
            "starvation must show in fairness: {}",
            report.fairness
        );
        assert_eq!(report.total_completed(), 40, "starved ≠ dropped");
    }

    #[test]
    fn empty_workloads_produce_empty_report() {
        let cfg = HostConfig::single(4);
        let (report, outcomes) = run_closed_loop(&cfg, &[Vec::new()], |_, _, d| d);
        assert_eq!(report.total_completed(), 0);
        assert!(outcomes.is_empty());
        assert_eq!(report.horizon_ns, 0);
        assert_eq!(report.fairness, 1.0);
    }

    #[test]
    fn outcome_log_is_complete_and_causal() {
        let cfg = HostConfig::new(
            2,
            ArbitrationPolicy::WeightedRoundRobin,
            vec![TenantSpec::new("a").with_weight(3), TenantSpec::new("b")],
        );
        let arrivals = vec![vec![0, 5, 10, 15, 20], vec![0, 7, 14]];
        let (report, outcomes) = run_closed_loop(&cfg, &arrivals, serial_device(25));
        assert_eq!(outcomes.len(), 8);
        assert_eq!(report.total_completed(), 8);
        for o in &outcomes {
            assert!(o.arrival_ns <= o.admit_ns);
            assert!(o.admit_ns <= o.dispatch_ns);
            assert!(o.dispatch_ns < o.completion_ns);
        }
        // Per-tenant seqs each appear exactly once.
        let mut seen = vec![Vec::new(); 2];
        for o in &outcomes {
            seen[o.tenant].push(o.seq);
        }
        seen.iter_mut().for_each(|s| s.sort_unstable());
        assert_eq!(seen[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(seen[1], vec![0, 1, 2]);
    }
}

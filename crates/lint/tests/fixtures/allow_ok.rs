//! Fixture: a violation silenced by a well-formed allow comment with a reason.

pub struct Fixture;

impl FtlScheme for Fixture {
    fn allowed_unwrap(&mut self, v: Option<u32>) -> u32 {
        // ipu-lint: allow(panic-reachability) — fixture: the reason text is present, so this allow is valid
        v.unwrap()
    }
}

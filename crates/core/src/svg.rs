//! Hand-rolled SVG figure generation — paper-style grouped bar charts and
//! line charts, written with no plotting dependencies.
//!
//! The bench harnesses print text tables; this module additionally renders
//! the same data as standalone `.svg` files (one per figure) so the
//! reproduction can be compared against the paper's figures side by side.
//! Only a small, well-tested subset of SVG is emitted: `rect`, `line`,
//! `text`, `polyline`.

use std::fmt::Write as _;

/// A categorical color per series, matching across all figures.
const SERIES_COLORS: [&str; 6] = [
    "#4878a8", "#e49444", "#5ba053", "#bf4f4f", "#8573a9", "#767676",
];

const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 70.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Builds a grouped bar chart (one group per trace, one bar per scheme).
#[derive(Debug, Clone)]
pub struct GroupedBars {
    title: String,
    y_label: String,
    groups: Vec<String>,
    series: Vec<String>,
    /// `values[g][s]`.
    values: Vec<Vec<f64>>,
    width: f64,
    height: f64,
}

impl GroupedBars {
    pub fn new(title: &str, y_label: &str, groups: &[String], series: &[String]) -> Self {
        GroupedBars {
            title: title.to_string(),
            y_label: y_label.to_string(),
            groups: groups.to_vec(),
            series: series.to_vec(),
            values: vec![vec![0.0; series.len()]; groups.len()],
            width: 720.0,
            height: 360.0,
        }
    }

    /// Sets the value of `(group, series)`.
    pub fn set(&mut self, group: usize, series: usize, value: f64) -> &mut Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "bar values must be finite and ≥ 0"
        );
        self.values[group][series] = value;
        self
    }

    /// Renders the chart to an SVG document string.
    pub fn render(&self) -> String {
        let (w, h) = (self.width, self.height);
        let plot_w = w - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = h - MARGIN_TOP - MARGIN_BOTTOM;
        let max = self
            .values
            .iter()
            .flatten()
            .copied()
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" font-size="15" text-anchor="middle">{}</text>"#,
            w / 2.0,
            esc(&self.title)
        );
        // Y axis with 5 gridlines and labels.
        for i in 0..=5 {
            let frac = i as f64 / 5.0;
            let y = MARGIN_TOP + plot_h * (1.0 - frac);
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                w - MARGIN_RIGHT
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
                MARGIN_LEFT - 6.0,
                y + 4.0,
                format_tick(max * frac)
            );
        }
        let _ = write!(
            svg,
            r#"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            esc(&self.y_label)
        );

        // Bars.
        let ng = self.groups.len().max(1) as f64;
        let ns = self.series.len().max(1) as f64;
        let group_w = plot_w / ng;
        let bar_w = (group_w * 0.8) / ns;
        for (g, group) in self.groups.iter().enumerate() {
            let gx = MARGIN_LEFT + group_w * g as f64 + group_w * 0.1;
            for (s, _) in self.series.iter().enumerate() {
                let v = self.values[g][s];
                let bh = plot_h * (v / max);
                let x = gx + bar_w * s as f64;
                let y = MARGIN_TOP + plot_h - bh;
                let _ = write!(
                    svg,
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{bh:.1}" fill="{}"/>"#,
                    bar_w * 0.92,
                    SERIES_COLORS[s % SERIES_COLORS.len()]
                );
            }
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
                gx + group_w * 0.4,
                MARGIN_TOP + plot_h + 18.0,
                esc(group)
            );
        }
        // Legend.
        for (s, name) in self.series.iter().enumerate() {
            let x = MARGIN_LEFT + 90.0 * s as f64;
            let y = h - 22.0;
            let _ = write!(
                svg,
                r#"<rect x="{x:.1}" y="{:.1}" width="12" height="12" fill="{}"/>"#,
                y - 11.0,
                SERIES_COLORS[s % SERIES_COLORS.len()]
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{y:.1}" font-size="12">{}</text>"#,
                x + 16.0,
                esc(name)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

/// Builds a line chart (one line per series over a shared numeric x-axis) —
/// the shape of the paper's Figures 13 & 14.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    y_label: String,
    x_ticks: Vec<f64>,
    series: Vec<(String, Vec<f64>)>,
    width: f64,
    height: f64,
}

impl LineChart {
    pub fn new(title: &str, y_label: &str, x_ticks: &[f64]) -> Self {
        assert!(!x_ticks.is_empty(), "a line chart needs x positions");
        LineChart {
            title: title.to_string(),
            y_label: y_label.to_string(),
            x_ticks: x_ticks.to_vec(),
            series: Vec::new(),
            width: 720.0,
            height: 360.0,
        }
    }

    /// Adds a named series; must have one value per x tick.
    pub fn series(&mut self, name: &str, values: &[f64]) -> &mut Self {
        assert_eq!(values.len(), self.x_ticks.len(), "series length mismatch");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "values must be finite"
        );
        self.series.push((name.to_string(), values.to_vec()));
        self
    }

    /// Renders the chart to an SVG document string.
    pub fn render(&self) -> String {
        let (w, h) = (self.width, self.height);
        let plot_w = w - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = h - MARGIN_TOP - MARGIN_BOTTOM;
        let max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let x_min = self.x_ticks.first().copied().unwrap();
        let x_max = self.x_ticks.last().copied().unwrap().max(x_min + 1.0);
        let x_of = |x: f64| MARGIN_LEFT + plot_w * (x - x_min) / (x_max - x_min);
        let y_of = |v: f64| MARGIN_TOP + plot_h * (1.0 - v / max);

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" font-size="15" text-anchor="middle">{}</text>"#,
            w / 2.0,
            esc(&self.title)
        );
        for i in 0..=5 {
            let frac = i as f64 / 5.0;
            let y = MARGIN_TOP + plot_h * (1.0 - frac);
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                w - MARGIN_RIGHT
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
                MARGIN_LEFT - 6.0,
                y + 4.0,
                format_tick(max * frac)
            );
        }
        let _ = write!(
            svg,
            r#"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            esc(&self.y_label)
        );
        for &x in &self.x_ticks {
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
                x_of(x),
                MARGIN_TOP + plot_h + 18.0,
                format_tick(x)
            );
        }
        for (s, (name, values)) in self.series.iter().enumerate() {
            let color = SERIES_COLORS[s % SERIES_COLORS.len()];
            let points: Vec<String> = self
                .x_ticks
                .iter()
                .zip(values)
                .map(|(&x, &v)| format!("{:.1},{:.1}", x_of(x), y_of(v)))
                .collect();
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                points.join(" ")
            );
            for p in &points {
                let (px, py) = p.split_once(',').unwrap();
                let _ = write!(svg, r#"<circle cx="{px}" cy="{py}" r="3" fill="{color}"/>"#);
            }
            let x = MARGIN_LEFT + 110.0 * s as f64;
            let y = h - 22.0;
            let _ = write!(
                svg,
                r#"<rect x="{x:.1}" y="{:.1}" width="12" height="12" fill="{color}"/>"#,
                y - 11.0
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{y:.1}" font-size="12">{}</text>"#,
                x + 16.0,
                esc(name)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

/// Builds a heat strip: one row per named series, one cell per column, cell
/// color scaled to the value — the shape of a per-device load map, where a
/// hot shard stands out as a dark cell in an otherwise even band.
#[derive(Debug, Clone)]
pub struct HeatStrip {
    title: String,
    cols: usize,
    rows: Vec<(String, Vec<f64>)>,
    width: f64,
}

impl HeatStrip {
    /// Lightest (zero) and darkest (max) cell colors.
    const COLD: (u8, u8, u8) = (0xf0, 0xf4, 0xf8);
    const HOT: (u8, u8, u8) = (0x17, 0x45, 0x6e);
    const ROW_H: f64 = 26.0;

    pub fn new(title: &str, cols: usize) -> Self {
        assert!(cols >= 1, "a heat strip needs at least one column");
        HeatStrip {
            title: title.to_string(),
            cols,
            rows: Vec::new(),
            width: 720.0,
        }
    }

    /// Adds a named row; must have one value per column, all finite and ≥ 0.
    pub fn row(&mut self, name: &str, values: &[f64]) -> &mut Self {
        assert_eq!(values.len(), self.cols, "row length mismatch");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "cell values must be finite and ≥ 0"
        );
        self.rows.push((name.to_string(), values.to_vec()));
        self
    }

    /// Linear interpolation between the cold and hot colors.
    fn cell_color(frac: f64) -> String {
        let lerp = |a: u8, b: u8| -> u8 {
            (a as f64 + (b as f64 - a as f64) * frac.clamp(0.0, 1.0)).round() as u8
        };
        format!(
            "#{:02x}{:02x}{:02x}",
            lerp(Self::COLD.0, Self::HOT.0),
            lerp(Self::COLD.1, Self::HOT.1),
            lerp(Self::COLD.2, Self::HOT.2)
        )
    }

    /// Renders the strip to an SVG document string.
    pub fn render(&self) -> String {
        let w = self.width;
        let plot_w = w - MARGIN_LEFT - MARGIN_RIGHT;
        let h = MARGIN_TOP + Self::ROW_H * self.rows.len() as f64 + 34.0;
        let max = self
            .rows
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max);
        let cell_w = plot_w / self.cols as f64;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" font-size="15" text-anchor="middle">{}</text>"#,
            w / 2.0,
            esc(&self.title)
        );
        for (r, (name, values)) in self.rows.iter().enumerate() {
            let y = MARGIN_TOP + Self::ROW_H * r as f64;
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
                MARGIN_LEFT - 6.0,
                y + Self::ROW_H * 0.65,
                esc(name)
            );
            for (c, &v) in values.iter().enumerate() {
                let frac = if max <= 0.0 { 0.0 } else { v / max };
                let x = MARGIN_LEFT + cell_w * c as f64;
                let _ = write!(
                    svg,
                    r##"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{:.1}" fill="{}" stroke="#fff" stroke-width="0.5"/>"##,
                    cell_w,
                    Self::ROW_H,
                    Self::cell_color(frac)
                );
            }
        }
        // Column index labels: first, last, and roughly every eighth.
        let step = (self.cols / 8).max(1);
        let label_y = MARGIN_TOP + Self::ROW_H * self.rows.len() as f64 + 16.0;
        let mut c = 0;
        while c < self.cols {
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{label_y:.1}" font-size="10" text-anchor="middle">{c}</text>"#,
                MARGIN_LEFT + cell_w * (c as f64 + 0.5)
            );
            if c == self.cols - 1 {
                break;
            }
            c = (c + step).min(self.cols - 1);
        }
        svg.push_str("</svg>");
        svg
    }
}

fn format_tick(v: f64) -> String {
    // ipu-lint: allow(float-eq) — axis ticks are generated as exact multiples of the step, so the zero tick is a literal 0.0, not a computed residue
    if v == 0.0 {
        "0".into()
    } else if v >= 1000.0 {
        format!("{:.0}", v)
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.2e}")
    }
}

/// Writes the main-matrix figures (5–11 analogues) and the P/E sweep figures
/// (13–14) as SVG files under `dir`. Returns the written paths.
pub fn write_figures(
    dir: &std::path::Path,
    matrix: &crate::experiment::MatrixResult,
    sweep: Option<&crate::experiment::PeSweepResult>,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let series: Vec<String> = matrix
        .schemes
        .iter()
        .map(|s| s.label().to_string())
        .collect();
    let mut written = Vec::new();

    let bar = |name: &str,
               title: &str,
               unit: &str,
               f: &dyn Fn(&ipu_sim::SimReport) -> f64|
     -> std::io::Result<std::path::PathBuf> {
        let mut chart = GroupedBars::new(title, unit, &matrix.traces, &series);
        for (g, _) in matrix.traces.iter().enumerate() {
            for (s, _) in series.iter().enumerate() {
                chart.set(g, s, f(matrix.report(g, s)));
            }
        }
        let path = dir.join(name);
        std::fs::write(&path, chart.render())?;
        Ok(path)
    };

    written.push(bar(
        "fig5_overall_latency.svg",
        "Figure 5 — overall response time",
        "ms",
        &|r| r.overall_latency.mean_ms(),
    )?);
    written.push(bar(
        "fig8_read_error_rate.svg",
        "Figure 8 — average read error rate",
        "RBER",
        &|r| r.read_error_rate(),
    )?);
    written.push(bar(
        "fig9_page_utilization.svg",
        "Figure 9 — GC page utilization",
        "fraction",
        &|r| r.gc_page_utilization(),
    )?);
    written.push(bar(
        "fig10a_slc_erases.svg",
        "Figure 10(a) — SLC erases",
        "erases",
        &|r| r.wear.slc_erases as f64,
    )?);

    if let Some(sweep) = sweep {
        let xs: Vec<f64> = sweep.pe_points.iter().map(|&p| p as f64).collect();
        let mut lat = LineChart::new("Figure 13 — latency vs P/E cycles", "ms", &xs);
        let mut err = LineChart::new("Figure 14 — read error rate vs P/E cycles", "RBER", &xs);
        for (si, scheme) in matrix.schemes.iter().enumerate() {
            let n = sweep.matrices[0].traces.len() as f64;
            let lats: Vec<f64> = sweep
                .matrices
                .iter()
                .map(|m| {
                    m.reports
                        .iter()
                        .map(|row| row[si].overall_latency.mean_ms())
                        .sum::<f64>()
                        / n
                })
                .collect();
            let errs: Vec<f64> = sweep
                .matrices
                .iter()
                .map(|m| {
                    m.reports
                        .iter()
                        .map(|row| row[si].read_error_rate())
                        .sum::<f64>()
                        / n
                })
                .collect();
            lat.series(scheme.label(), &lats);
            err.series(scheme.label(), &errs);
        }
        for (name, chart) in [
            ("fig13_latency_vs_pe.svg", lat),
            ("fig14_ber_vs_pe.svg", err),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, chart.render())?;
            written.push(path);
        }
    }
    Ok(written)
}

/// Renders a queue-depth sweep as a tail-latency line chart: per
/// scheme×tenant, the service p99 and p999 (ms) over the swept queue depths —
/// the figure companion to `report::render_qd_sweep`'s table columns.
pub fn qd_sweep_chart(sweep: &crate::qd_sweep::QdSweepResult) -> String {
    let xs: Vec<f64> = sweep.qd_points.iter().map(|&q| q as f64).collect();
    let mut chart = LineChart::new(
        &format!("QD sweep — per-tenant tail latency on {}", sweep.trace),
        "service latency (ms)",
        &xs,
    );
    for (si, scheme) in sweep.schemes.iter().enumerate() {
        for (ti, tenant) in sweep.host.tenants.iter().enumerate() {
            let tail = |p: f64| -> Vec<f64> {
                sweep
                    .reports
                    .iter()
                    .map(|row| {
                        row[si].host.tenants[ti].service_latency.percentile_ns(p) as f64 / 1e6
                    })
                    .collect()
            };
            chart.series(
                &format!("{}/{} p99", scheme.label(), tenant.name),
                &tail(99.0),
            );
            chart.series(
                &format!("{}/{} p999", scheme.label(), tenant.name),
                &tail(99.9),
            );
        }
    }
    chart.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_bars_emit_valid_svg_structure() {
        let mut c = GroupedBars::new(
            "t&t",
            "ms",
            &["ts0".into(), "usr0".into()],
            &["Baseline".into(), "IPU".into()],
        );
        c.set(0, 0, 1.0)
            .set(0, 1, 0.5)
            .set(1, 0, 0.25)
            .set(1, 1, 0.75);
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(
            svg.matches("<rect").count(),
            4 + 2,
            "4 bars + 2 legend swatches"
        );
        assert!(svg.contains("t&amp;t"), "title must be escaped");
        assert!(svg.contains("ts0") && svg.contains("usr0"));
        // Balanced tags for the primitives we emit.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn bar_heights_scale_with_values() {
        let mut c = GroupedBars::new("t", "u", &["g".into()], &["a".into(), "b".into()]);
        c.set(0, 0, 2.0).set(0, 1, 1.0);
        let svg = c.render();
        // Extract every height attribute; drop the document height (360) and
        // the fixed 12-px legend swatches — what remains are the two bars.
        let bars: Vec<f64> = svg
            .match_indices("height=\"")
            .filter_map(|(i, pat)| svg[i + pat.len()..].split('"').next()?.parse::<f64>().ok())
            .filter(|&h| h != 12.0 && h != 360.0)
            .collect();
        assert_eq!(bars.len(), 2, "expected exactly two bars: {bars:?}");
        assert!(
            bars[0] > bars[1] * 1.9,
            "full bar must be ~2× the half bar: {bars:?}"
        );
    }

    #[test]
    fn line_chart_emits_one_polyline_per_series() {
        let mut c = LineChart::new("sweep", "ms", &[1000.0, 4000.0, 8000.0]);
        c.series("Baseline", &[1.0, 2.0, 3.0]);
        c.series("IPU", &[0.5, 1.5, 2.5]);
        let svg = c.render();
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("4000"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn line_chart_rejects_ragged_series() {
        LineChart::new("x", "y", &[1.0, 2.0]).series("s", &[1.0]);
    }

    #[test]
    fn heat_strip_emits_one_cell_per_value() {
        let mut s = HeatStrip::new("load <skew>", 4);
        s.row("ipu", &[1.0, 4.0, 2.0, 0.0]);
        s.row("base", &[2.0, 2.0, 2.0, 2.0]);
        let svg = s.render();
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 8, "2 rows × 4 cells");
        assert!(svg.contains("load &lt;skew&gt;"), "title must be escaped");
        // The max cell is the darkest color, a zero cell the lightest.
        assert!(svg.contains("#17456e"), "max cell must be fully hot");
        assert!(svg.contains("#f0f4f8"), "zero cell must be fully cold");
    }

    #[test]
    fn heat_strip_all_zero_row_renders_cold() {
        let mut s = HeatStrip::new("idle", 3);
        s.row("r", &[0.0, 0.0, 0.0]);
        let svg = s.render();
        assert_eq!(svg.matches("#f0f4f8").count(), 3);
        assert!(!svg.contains("#17456e"));
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn heat_strip_rejects_ragged_rows() {
        HeatStrip::new("x", 3).row("r", &[1.0]);
    }

    #[test]
    fn qd_sweep_chart_plots_p99_and_p999_per_scheme_tenant() {
        let mut cfg = crate::ExperimentConfig::scaled(0.002);
        cfg.traces = vec![ipu_trace::PaperTrace::Ts0];
        cfg.schemes = vec![ipu_ftl::SchemeKind::Baseline, ipu_ftl::SchemeKind::Ipu];
        cfg.threads = 1;
        let host = crate::qd_sweep::QdSweepHostSpec::default();
        let sweep = crate::qd_sweep::run_qd_sweep(&cfg, ipu_trace::PaperTrace::Ts0, &host, &[1, 8]);
        let svg = qd_sweep_chart(&sweep);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        // One p99 + one p999 polyline per scheme×tenant (1 tenant here).
        assert_eq!(svg.matches("<polyline").count(), 4);
        assert!(svg.contains("p999"), "legend must name the p999 series");
    }

    #[test]
    fn write_figures_produces_files() {
        let mut cfg = crate::ExperimentConfig::scaled(0.001);
        cfg.traces = vec![ipu_trace::PaperTrace::Lun2];
        cfg.threads = 1;
        let m = crate::experiment::run_main_matrix(&cfg);
        let dir = std::env::temp_dir().join("ipu-svg-test");
        let written = write_figures(&dir, &m, None).unwrap();
        assert_eq!(written.len(), 4);
        for p in &written {
            let body = std::fs::read_to_string(p).unwrap();
            assert!(body.starts_with("<svg"), "{p:?} is not SVG");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

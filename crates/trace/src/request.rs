//! The block I/O request model.
//!
//! Requests address a byte range of the logical device. The FTL operates on
//! 4 KB *logical subpages* (the paper's partial-programming unit), so requests
//! are aligned and split at [`SUBPAGE_BYTES`] boundaries by
//! [`IoRequest::subpage_span`].

use serde::{Deserialize, Serialize};

/// Logical subpage size in bytes (the paper's 4 KB partial-programming unit).
pub const SUBPAGE_BYTES: u64 = 4096;

/// Kind of block I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    Read,
    Write,
}

impl OpKind {
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Write)
    }
}

/// One block I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Arrival time in nanoseconds from trace start.
    pub timestamp_ns: u64,
    /// Read or write.
    pub op: OpKind,
    /// Byte offset of the first byte accessed.
    pub offset: u64,
    /// Bytes accessed; always positive.
    pub size: u32,
}

impl IoRequest {
    pub fn new(timestamp_ns: u64, op: OpKind, offset: u64, size: u32) -> Self {
        assert!(size > 0, "zero-sized request");
        IoRequest {
            timestamp_ns,
            op,
            offset,
            size,
        }
    }

    /// First logical subpage number touched.
    #[inline]
    pub fn first_lsn(&self) -> u64 {
        self.offset / SUBPAGE_BYTES
    }

    /// Half-open range of logical subpage numbers `[first, last)` touched.
    #[inline]
    pub fn subpage_span(&self) -> std::ops::Range<u64> {
        let first = self.offset / SUBPAGE_BYTES;
        let last = (self.offset + self.size as u64).div_ceil(SUBPAGE_BYTES);
        first..last
    }

    /// Number of logical subpages touched.
    #[inline]
    pub fn subpage_count(&self) -> u32 {
        let span = self.subpage_span();
        (span.end - span.start) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_request_spans_exact_subpages() {
        let r = IoRequest::new(0, OpKind::Write, 8192, 8192);
        assert_eq!(r.subpage_span(), 2..4);
        assert_eq!(r.subpage_count(), 2);
        assert_eq!(r.first_lsn(), 2);
    }

    #[test]
    fn unaligned_request_rounds_outward() {
        // Bytes [5000, 9096) touch subpages 1 and 2.
        let r = IoRequest::new(0, OpKind::Read, 5000, 4096);
        assert_eq!(r.subpage_span(), 1..3);
        assert_eq!(r.subpage_count(), 2);
    }

    #[test]
    fn single_byte_request_touches_one_subpage() {
        let r = IoRequest::new(0, OpKind::Read, 4095, 1);
        assert_eq!(r.subpage_span(), 0..1);
        let r = IoRequest::new(0, OpKind::Read, 4096, 1);
        assert_eq!(r.subpage_span(), 1..2);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_size_rejected() {
        IoRequest::new(0, OpKind::Read, 0, 0);
    }
}

//! Closed-loop replay: the `ipu-host` multi-queue interface in front of the
//! FTL + flash device.
//!
//! Open-loop [`replay`](crate::replay) fires every request at its trace
//! timestamp no matter how far the device has fallen behind. Real hosts
//! block once their queue depth is exhausted; [`replay_closed_loop`] models
//! that: per-tenant bounded submission queues, an arbitration policy across
//! tenants, and admission that waits for queue slots — so arrival times
//! shift under backpressure and per-tenant QoS becomes measurable.

use ipu_host::{run_closed_loop, HostConfig, HostReport, RequestOutcome};
use ipu_trace::{IoRequest, OpKind};
use serde::{Deserialize, Serialize};

use crate::engine::{BusyBreakdown, ReplayConfig, SimReport};
use crate::event_core::EventCore;
use ipu_host::metrics::{LatencyStats, ReliabilityStats};

/// Result of one closed-loop run: the device-side aggregates of an open-loop
/// [`SimReport`] plus the host-side per-tenant QoS report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClosedLoopReport {
    /// Device/FTL metrics, with latencies measured admission→completion
    /// (queue service time). Submission→completion latency is this plus the
    /// admission stall recorded in [`queue_latency`](Self::queue_latency):
    /// for every request, `(completion − arrival) = (admit − arrival) +
    /// (completion − admit)`.
    pub sim: SimReport,
    /// Per-tenant queues, stalls, occupancy and fairness.
    pub host: HostReport,
    /// Admission stall (`admit − arrival`) of every request: the time spent
    /// blocked outside a full submission queue before service begins. Absent
    /// in reports saved before the stall/service latency split.
    #[serde(default)]
    pub queue_latency: LatencyStats,
}

/// Replays per-tenant request streams through the closed-loop host
/// interface. `workloads[t]` (sorted by arrival time) feeds tenant `t` of
/// `host.tenants`; requests dispatch into the same FTL + chip schedule an
/// open-loop replay uses, at their *dispatch* times.
pub fn replay_closed_loop(
    cfg: &ReplayConfig,
    host: &HostConfig,
    workloads: &[Vec<IoRequest>],
    trace_name: &str,
) -> ClosedLoopReport {
    replay_closed_loop_detailed(cfg, host, workloads, trace_name).0
}

/// [`replay_closed_loop`] returning the per-request outcome log as well —
/// arrival, admission, dispatch and completion times for every request, in
/// completion order.
pub fn replay_closed_loop_detailed(
    cfg: &ReplayConfig,
    host: &HostConfig,
    workloads: &[Vec<IoRequest>],
    trace_name: &str,
) -> (ClosedLoopReport, Vec<RequestOutcome>) {
    assert_eq!(
        workloads.len(),
        host.tenants.len(),
        "one workload per configured tenant"
    );

    let mut dev = ipu_flash::FlashDevice::new(cfg.device.clone());
    let mut ftl = cfg.scheme.build(&mut dev, cfg.ftl.clone());
    let mut core = EventCore::new(cfg.device.geometry.total_chips(), cfg.timing);
    let mut reliability = ReliabilityStats::new();

    let arrivals: Vec<Vec<u64>> = workloads
        .iter()
        .map(|w| w.iter().map(|r| r.timestamp_ns).collect())
        .collect();

    // One batch reused across every dispatched request (cleared per call).
    let mut batch = ipu_ftl::OpBatch::new();
    let (host_report, outcomes) = run_closed_loop(host, &arrivals, |tenant, seq, dispatch| {
        // The FTL sees the request as if it arrived at dispatch time — in a
        // closed loop the device never learns the host wanted to send it
        // earlier.
        let mut req = workloads[tenant][seq];
        req.timestamp_ns = dispatch;
        batch.clear();
        match req.op {
            OpKind::Write => {
                let _span = ipu_obs::span(ipu_obs::Phase::FtlWrite);
                ftl.on_write_into(&req, dispatch, &mut dev, &mut batch);
            }
            OpKind::Read => {
                let _span = ipu_obs::span(ipu_obs::Phase::FtlRead);
                ftl.on_read_into(&req, dispatch, &mut dev, &mut batch);
            }
        };
        match batch.status {
            ipu_ftl::ReqStatus::Success => reliability.record_success(),
            ipu_ftl::ReqStatus::Recovered => reliability.record_recovered(),
            ipu_ftl::ReqStatus::Failed => reliability.record_failed(),
        }
        // Run every event preceding this dispatch (completed pulses free the
        // write channel; admission is re-evaluated by the host loop as
        // completions land), then dispatch onto the event core.
        core.advance_to(dispatch);
        core.dispatch(dispatch, &batch, req.op)
    });

    // Drain the event heap before reporting (matches the open-loop engine's
    // report-time accounting).
    core.finish();

    // Queue service latency (admission→completion) split by op kind, plus
    // the admission stall (arrival→admission) as its own population.
    let mut read_latency = LatencyStats::new();
    let mut write_latency = LatencyStats::new();
    let mut overall_latency = LatencyStats::new();
    let mut queue_latency = LatencyStats::new();
    for o in &outcomes {
        let latency = o.completion_ns - o.admit_ns;
        overall_latency.record(latency);
        queue_latency.record(o.admit_ns - o.arrival_ns);
        match workloads[o.tenant][o.seq].op {
            OpKind::Read => read_latency.record(latency),
            OpKind::Write => write_latency.record(latency),
        }
    }

    let mapping = ftl.mapping_memory(&dev);
    let sim = SimReport {
        scheme: cfg.scheme,
        trace: trace_name.to_string(),
        read_latency,
        write_latency,
        overall_latency,
        ftl: ftl.stats().clone(),
        device: dev.counters(),
        wear: dev.wear().totals(),
        mapping,
        simulated_horizon_ns: core.horizon(),
        requests: outcomes.len() as u64,
        busy: BusyBreakdown {
            host_write_ns: core.host_busy(),
            host_read_ns: core.read_busy(),
            background_ns: core.background_done(),
        },
        reliability,
    };
    (
        ClosedLoopReport {
            sim,
            host: host_report,
            queue_latency,
        },
        outcomes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::replay;
    use ipu_ftl::SchemeKind;
    use ipu_host::{ArbitrationPolicy, TenantSpec};

    fn workload(n: u64, offset_base: u64, spacing_ns: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| {
                let op = if i % 4 == 3 {
                    OpKind::Read
                } else {
                    OpKind::Write
                };
                IoRequest::new(i * spacing_ns, op, offset_base + (i % 8) * 65536, 4096)
            })
            .collect()
    }

    /// The ISSUE's acceptance criterion: closed-loop QD=1 with a single
    /// tenant serializes requests, and an open-loop replay fed those
    /// dispatch times reproduces the per-request service latencies exactly.
    #[test]
    fn qd1_single_tenant_matches_serialized_open_loop() {
        for scheme in [SchemeKind::Baseline, SchemeKind::Mga, SchemeKind::Ipu] {
            let cfg = ReplayConfig::small_for_tests(scheme);
            let host = HostConfig::single(1);
            let reqs = workload(40, 0, 1_000); // bursty: device outpaced
            let (closed, outcomes) =
                replay_closed_loop_detailed(&cfg, &host, std::slice::from_ref(&reqs), "t");

            // Rebuild the serialized request stream open-loop style.
            let mut serialized = Vec::new();
            for o in &outcomes {
                let mut r = reqs[o.seq];
                r.timestamp_ns = o.dispatch_ns;
                serialized.push(r);
            }
            serialized.sort_by_key(|r| r.timestamp_ns);
            let open = replay(&cfg, &serialized, "t");

            assert_eq!(
                closed.sim.overall_latency.count(),
                open.overall_latency.count(),
                "{scheme}: request counts diverge"
            );
            assert_eq!(
                closed.sim.overall_latency.sum_ns(),
                open.overall_latency.sum_ns(),
                "{scheme}: latency populations diverge"
            );
            assert_eq!(
                closed.sim.overall_latency.min_ns(),
                open.overall_latency.min_ns()
            );
            assert_eq!(
                closed.sim.overall_latency.max_ns(),
                open.overall_latency.max_ns()
            );
            assert_eq!(closed.sim.ftl, open.ftl, "{scheme}: FTL behaviour diverges");
            assert_eq!(closed.sim.device, open.device);
            assert_eq!(closed.sim.wear, open.wear);
        }
    }

    #[test]
    fn closed_loop_bounds_inflight_requests() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Ipu);
        let host = HostConfig::single(4);
        // Everything arrives at t=0: open loop would see huge queueing
        // latency; closed loop bounds host-visible latency via admission.
        let burst: Vec<IoRequest> = (0..32)
            .map(|i| IoRequest::new(0, OpKind::Write, i * 65536, 4096))
            .collect();
        let closed = replay_closed_loop(&cfg, &host, std::slice::from_ref(&burst), "burst");
        let open = replay(&cfg, &burst, "burst");
        assert_eq!(closed.sim.requests, 32);
        assert!(
            closed.sim.overall_latency.max_ns() < open.overall_latency.max_ns(),
            "closed loop ({}) must bound queueing below open loop ({})",
            closed.sim.overall_latency.max_ns(),
            open.overall_latency.max_ns()
        );
        let t = &closed.host.tenants[0];
        assert!(t.stalled_requests > 0, "a QD-4 queue must stall a 32-burst");
        assert!(t.occupancy.mean() <= 4.0 + 1e-9);
    }

    #[test]
    fn multi_tenant_run_produces_coherent_report() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Ipu);
        let host = HostConfig::new(
            8,
            ArbitrationPolicy::RoundRobin,
            vec![TenantSpec::new("a"), TenantSpec::new("b")],
        );
        let wl = vec![workload(30, 0, 50_000), workload(30, 1 << 24, 50_000)];
        let closed = replay_closed_loop(&cfg, &host, &wl, "pair");
        assert_eq!(closed.sim.requests, 60);
        assert_eq!(closed.host.total_completed(), 60);
        // Per-tenant latency populations partition the overall population.
        let merged = closed.host.overall_service_latency();
        assert_eq!(merged.count(), closed.sim.overall_latency.count());
        assert_eq!(merged.sum_ns(), closed.sim.overall_latency.sum_ns());
        assert!(closed.host.fairness > 0.0 && closed.host.fairness <= 1.0);
        assert!(closed.host.horizon_ns <= closed.sim.simulated_horizon_ns);
    }

    /// The latency-accounting split: submission→completion latency is the
    /// admission stall plus the queue service time, per request and pooled.
    #[test]
    fn submission_latency_is_stall_plus_service() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Ipu);
        let host = HostConfig::single(2);
        // A burst at t=0 guarantees nonzero admission stalls at QD=2.
        let burst: Vec<IoRequest> = (0..24)
            .map(|i| IoRequest::new(0, OpKind::Write, (i % 8) * 65536, 4096))
            .collect();
        let (closed, outcomes) =
            replay_closed_loop_detailed(&cfg, &host, std::slice::from_ref(&burst), "b");

        for o in &outcomes {
            let submission = o.completion_ns - o.arrival_ns;
            let stall = o.admit_ns - o.arrival_ns;
            let service = o.completion_ns - o.admit_ns;
            assert_eq!(submission, stall + service);
        }
        // The report's populations reflect the same split: queue_latency
        // holds the stalls, sim.overall_latency the service times.
        assert_eq!(
            closed.queue_latency.count(),
            closed.sim.overall_latency.count()
        );
        let e2e_sum: u128 = outcomes
            .iter()
            .map(|o| u128::from(o.completion_ns - o.arrival_ns))
            .sum();
        assert_eq!(
            e2e_sum,
            closed.queue_latency.sum_ns() + closed.sim.overall_latency.sum_ns()
        );
        // The burst actually stalled, so the split is non-trivial.
        assert!(closed.queue_latency.max_ns() > 0, "QD=2 burst must stall");
        // Host-side per-tenant accounting agrees with the outcome log.
        assert_eq!(closed.host.tenants[0].e2e_latency.sum_ns(), e2e_sum);
        assert_eq!(
            closed.host.tenants[0].admission_stall_ns,
            closed.queue_latency.sum_ns()
        );
    }

    #[test]
    fn deeper_queues_cut_admission_stall() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Baseline);
        let burst: Vec<IoRequest> = (0..64)
            .map(|i| IoRequest::new(0, OpKind::Write, (i % 16) * 65536, 4096))
            .collect();
        let stall = |qd: usize| {
            let closed = replay_closed_loop(
                &cfg,
                &HostConfig::single(qd),
                std::slice::from_ref(&burst),
                "b",
            );
            closed.host.tenants[0].admission_stall_ns
        };
        let (s1, s16) = (stall(1), stall(16));
        assert!(
            s16 < s1,
            "QD16 stall {s16} must be below QD1 stall {s1} on the same burst"
        );
    }
}

//! Fixture: R6-conforming comparisons.

pub fn ok_range(x: f64) -> bool {
    (x - 0.5).abs() < 1e-9
}

pub fn ok_int_eq(n: u64) -> bool {
    n == 42
}

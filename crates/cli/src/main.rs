//! `ipu-sim` — the command-line face of the IPU paper reproduction.
//!
//! Run `ipu-sim help` for the full usage text; typical invocations:
//!
//! ```text
//! cargo run --release -p ipu-cli -- figure 5 --scale 0.25
//! cargo run --release -p ipu-cli -- run --traces ts0 --schemes ipu
//! cargo run --release -p ipu-cli -- replay /data/msr/ts0.csv --schemes ipu
//! ```

mod args;
mod commands;

use args::ParsedArgs;

/// Flags accepted by every command (commands validate semantics themselves).
const COMMON_FLAGS: &[&str] = &[
    "scale",
    "traces",
    "schemes",
    "pe",
    "threads",
    "save",
    "out",
    "queue-depth",
    "tenants",
    "arbitration",
    "dispatch-overhead",
    "split",
    "fault-profile",
    "events",
    "cache-dir",
];

/// Value-less switches accepted by every command.
const COMMON_SWITCHES: &[&str] = &["cache", "no-cache"];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" || raw[0] == "-h" {
        print!("{}", commands::USAGE);
        return;
    }

    let parsed = match ParsedArgs::parse_with_switches(raw, COMMON_FLAGS, COMMON_SWITCHES) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };

    let result = match parsed.command.as_str() {
        "tables" => commands::cmd_tables(&parsed),
        "figure" => commands::cmd_figure(&parsed),
        "run" => commands::cmd_run(&parsed),
        "sweep" => commands::cmd_sweep(&parsed),
        "simulate" => commands::cmd_simulate(&parsed),
        "reliability" => commands::cmd_reliability(&parsed),
        "replay" => commands::cmd_replay(&parsed),
        "ablate" => commands::cmd_ablate(&parsed),
        "figures" => commands::cmd_figures(&parsed),
        "profile" => commands::cmd_profile(&parsed),
        "scorecard" => commands::cmd_scorecard(&parsed),
        other => {
            eprintln!("error: unknown command `{other}`\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };

    match result {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

//! GC victim-selection policies.
//!
//! * [`select_greedy`] — the conventional greedy policy (paper §3.2): pick the
//!   block with the most reclaimable space, at page or subpage granularity.
//! * [`select_isr`] — the paper's policy (Equations 1–2): pick the block with
//!   the largest *invalid subpage ratio*, where never-updated (cold) valid
//!   subpages contribute an age-dependent weight so that cold blocks are
//!   preferentially collected and their data demoted out of the cache.

use ipu_flash::{BlockState, Nanos, SubpageState};

use crate::cache_meta::BlockMeta;

/// Granularity of the greedy policy's reclaimable-space count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcGranularity {
    /// Count fully-invalid pages (conventional page-mapped FTL).
    Page,
    /// Count invalid subpages (partial-programming aware, as MGA does).
    Subpage,
}

/// Greedy score: number of reclaimable units in the block. O(1) — both
/// granularities read counters cached at block level by `ipu-flash`.
pub fn greedy_score(block: &BlockState, granularity: GcGranularity) -> u64 {
    match granularity {
        GcGranularity::Subpage => block.count_subpages(SubpageState::Invalid) as u64,
        GcGranularity::Page => block.fully_invalid_pages() as u64,
    }
}

/// Selects the candidate with the highest greedy score.
///
/// Ties (including an all-zero field, which happens when the cache is full of
/// valid data and GC degenerates to eviction) break toward the *oldest* block
/// (smallest `opened_seq`) — FIFO rotation keeps eviction-mode GC from
/// hammering a single plane and gives plain cache-eviction semantics.
pub fn select_greedy<'a>(
    candidates: impl Iterator<Item = (u64, &'a BlockState, u64)>,
    granularity: GcGranularity,
) -> Option<u64> {
    candidates
        .map(|(idx, block, seq)| {
            (
                greedy_score(block, granularity),
                std::cmp::Reverse(seq),
                idx,
            )
        })
        .max()
        .map(|(_, _, idx)| idx)
}

/// The paper's Equation 2: weight of the never-updated valid subpages.
///
/// `IS'_i = Σ_{j ∈ J} (1 − e^(−t_ij / T_i))` where `J` indexes valid subpages
/// in pages that never received an intra-page update, `t_ij` is the time since
/// subpage `j` was written, and `T_i` is the mean such age over *all* valid
/// subpages of the block (the exponential-interarrival parameter).
pub fn cold_valid_weight(block: &BlockState, meta: &BlockMeta, now: Nanos) -> f64 {
    let mut ages_sum = 0.0f64;
    let mut valid_count = 0u32;
    for p in 0..block.page_count() {
        let page = block.page(p);
        for s in 0..page.subpage_count() {
            if page.subpage(s) == SubpageState::Valid {
                let written = meta.written_at(p, s);
                ages_sum += now.saturating_sub(written) as f64;
                valid_count += 1;
            }
        }
    }
    if valid_count == 0 {
        return 0.0;
    }
    let t_mean = (ages_sum / valid_count as f64).max(1.0);

    let mut weight = 0.0;
    for p in 0..block.page_count() {
        if meta.page_updated(p) {
            continue; // hot page: its data was updated in place, exclude from J
        }
        let page = block.page(p);
        for s in 0..page.subpage_count() {
            if page.subpage(s) == SubpageState::Valid {
                let age = now.saturating_sub(meta.written_at(p, s)) as f64;
                weight += 1.0 - (-age / t_mean).exp();
            }
        }
    }
    weight
}

/// The paper's Equation 1: `ISR_i = (IS_i + IS'_i) / TS_i`.
///
/// ```
/// use ipu_flash::{BlockAddr, CellMode, DeviceConfig, FlashDevice, Spa};
/// use ipu_ftl::{isr_score, BlockLevel, CacheMeta};
///
/// let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
/// let addr = BlockAddr::new(0, 0, 0, 0, 0);
/// dev.set_block_mode(addr, CellMode::Slc);
/// dev.program(Spa::new(addr.page(0), 0), 4).unwrap();
/// dev.invalidate(Spa::new(addr.page(0), 0)).unwrap();
///
/// let mut meta = CacheMeta::new();
/// meta.open_block(0, addr, BlockLevel::Work, 4, 4);
/// meta.get_mut(0).unwrap().note_program(0, 0, 4, 1, false);
///
/// // 1 invalid subpage + 3 aged cold valid subpages over 16 total.
/// let isr = isr_score(dev.block(addr), meta.get(0).unwrap(), 1_000_000_000);
/// assert!(isr > 1.0 / 16.0 && isr < 4.0 / 16.0 + 1e-9);
/// ```
pub fn isr_score(block: &BlockState, meta: &BlockMeta, now: Nanos) -> f64 {
    let total = block.total_subpages();
    if total == 0 {
        return 0.0;
    }
    let invalid = block.count_subpages(SubpageState::Invalid) as f64;
    (invalid + cold_valid_weight(block, meta, now)) / total as f64
}

/// Incremental (cached-aggregate) variant of [`cold_valid_weight`].
///
/// Produces the same value as the oracle *provided* the metadata's validity
/// mask mirrors the device state — which `FtlCore` maintains by notifying the
/// metadata on every program and invalidate. The mean-age pass is replaced by
/// the closed form `Σ(now − t_i) = n·now − Σt_i` over the cached sums (exact
/// while per-block age sums stay below 2^53 ns, i.e. at all simulation
/// timescales), and the J-term walks only the metadata arrays in the oracle's
/// (page, subpage) order, reusing the previous `exp` whenever consecutive
/// subpages share a write timestamp (subpages programmed by one operation
/// always do).
pub fn cold_valid_weight_fast(meta: &BlockMeta, now: Nanos) -> f64 {
    let valid_count = meta.valid_count();
    if valid_count == 0 {
        return 0.0;
    }
    let ages_sum =
        (valid_count as u128 * now as u128).saturating_sub(meta.sum_written_valid()) as f64;
    let t_mean = (ages_sum / valid_count as f64).max(1.0);

    let mut weight = 0.0;
    let mut last_t = Nanos::MAX;
    let mut last_w = 0.0;
    let written = meta.written_slots();
    // Walk only the J-population (valid subpages of never-updated pages) via
    // the cold bitset; ascending set-bit order is the oracle's (page, subpage)
    // order, so the f64 summation is term-for-term identical.
    for (w, &word) in meta.cold_mask_words().iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let slot = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let t = written.get(slot).copied().unwrap_or(0);
            if t != last_t {
                let age = now.saturating_sub(t) as f64;
                last_w = 1.0 - (-age / t_mean).exp();
                last_t = t;
            }
            weight += last_w;
        }
    }
    weight
}

/// Incremental variant of [`isr_score`]; same mask-mirrors-device precondition
/// as [`cold_valid_weight_fast`].
pub fn isr_score_fast(block: &BlockState, meta: &BlockMeta, now: Nanos) -> f64 {
    let total = block.total_subpages();
    if total == 0 {
        return 0.0;
    }
    let invalid = block.count_subpages(SubpageState::Invalid) as f64;
    (invalid + cold_valid_weight_fast(meta, now)) / total as f64
}

/// Cheap upper bound on [`isr_score`]: every J-term is ≤ 1, so the score can
/// never exceed `(invalid + j_count) / total`. Used to prune candidates whose
/// bound already loses to the best exact score seen.
pub fn isr_upper_bound(block: &BlockState, meta: &BlockMeta) -> f64 {
    let total = block.total_subpages();
    if total == 0 {
        return 0.0;
    }
    let invalid = block.count_subpages(SubpageState::Invalid) as f64;
    (invalid + meta.j_count() as f64) / total as f64
}

/// Selects the candidate with the highest ISR score; ties break toward the
/// oldest block (FIFO), as in [`select_greedy`].
pub fn select_isr<'a>(
    candidates: impl Iterator<Item = (u64, &'a BlockState, &'a BlockMeta)>,
    now: Nanos,
) -> Option<u64> {
    candidates
        .map(|(idx, block, meta)| (isr_score(block, meta, now), meta.opened_seq(), idx))
        .max_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.cmp(&a.1)) // smaller seq wins ties
        })
        .map(|(_, _, idx)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_meta::CacheMeta;
    use crate::types::BlockLevel;
    use ipu_flash::{BlockAddr, CellMode, DeviceConfig, FlashDevice, Spa};

    /// Builds a 4-page SLC block; `pattern[p]` = (programmed subpages,
    /// invalidated subpages).
    fn build_block(dev: &mut FlashDevice, block: u32, pattern: &[(u8, u8)]) -> BlockAddr {
        let addr = BlockAddr::new(0, 0, 0, 0, block);
        dev.set_block_mode(addr, CellMode::Slc);
        for (p, &(programmed, invalid)) in pattern.iter().enumerate() {
            if programmed > 0 {
                dev.program(Spa::new(addr.page(p as u32), 0), programmed)
                    .unwrap();
            }
            for s in 0..invalid {
                dev.invalidate(Spa::new(addr.page(p as u32), s)).unwrap();
            }
        }
        addr
    }

    #[test]
    fn greedy_subpage_counts_invalids() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let a = build_block(&mut dev, 0, &[(4, 2), (4, 0)]);
        assert_eq!(greedy_score(dev.block(a), GcGranularity::Subpage), 2);
        assert_eq!(greedy_score(dev.block(a), GcGranularity::Page), 0);
        let b = build_block(&mut dev, 1, &[(4, 4), (2, 1)]);
        assert_eq!(greedy_score(dev.block(b), GcGranularity::Subpage), 5);
        assert_eq!(greedy_score(dev.block(b), GcGranularity::Page), 1);
    }

    #[test]
    fn select_greedy_prefers_most_invalid() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let a = build_block(&mut dev, 0, &[(4, 1), (0, 0)]);
        let b = build_block(&mut dev, 1, &[(4, 3), (0, 0)]);
        let g = dev.config().geometry.clone();
        let cands = vec![
            (g.block_index(a), dev.block(a), 0),
            (g.block_index(b), dev.block(b), 1),
        ];
        let winner = select_greedy(cands.into_iter(), GcGranularity::Subpage).unwrap();
        assert_eq!(winner, g.block_index(b));
    }

    #[test]
    fn greedy_ties_break_to_oldest_block() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let a = build_block(&mut dev, 0, &[(4, 2)]);
        let b = build_block(&mut dev, 1, &[(4, 2)]);
        let g = dev.config().geometry.clone();
        // Same score; block b was opened earlier (seq 3 vs 7) → b wins.
        let cands = vec![
            (g.block_index(a), dev.block(a), 7),
            (g.block_index(b), dev.block(b), 3),
        ];
        let winner = select_greedy(cands.into_iter(), GcGranularity::Subpage).unwrap();
        assert_eq!(winner, g.block_index(b));
    }

    #[test]
    fn select_greedy_handles_all_valid_cache() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let a = build_block(&mut dev, 0, &[(4, 0)]);
        let g = dev.config().geometry.clone();
        // No invalid data anywhere: still returns a victim (pure eviction).
        let winner = select_greedy(
            vec![(g.block_index(a), dev.block(a), 0)].into_iter(),
            GcGranularity::Subpage,
        );
        assert_eq!(winner, Some(g.block_index(a)));
    }

    #[test]
    fn isr_matches_figure4_example() {
        // Figure 4(a): candidate A has 6 invalid of 16 subpages and hot valid
        // data (updated pages) → ISR = 6/16. Candidate B has 6 invalid and old
        // cold valid data worth ~0.9 → ISR ≈ 6.9/16 → B wins.
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let a = build_block(&mut dev, 0, &[(4, 2), (4, 2), (4, 2), (4, 0)]);
        let b = build_block(&mut dev, 1, &[(4, 2), (4, 2), (4, 2), (4, 0)]);
        let g = dev.config().geometry.clone();

        let mut meta = CacheMeta::new();
        let now = 1_000_000;
        // A: data written recently and updated (hot) → small IS'.
        meta.open_block(g.block_index(a), a, BlockLevel::Work, 4, 4);
        let ma = meta.get_mut(g.block_index(a)).unwrap();
        for p in 0..4 {
            ma.note_program(p, 0, 4, now - 10, true);
        }
        // B: data written long ago, never updated (cold) → IS' near valid count.
        meta.open_block(g.block_index(b), b, BlockLevel::Work, 4, 4);
        let mb = meta.get_mut(g.block_index(b)).unwrap();
        for p in 0..4 {
            mb.note_program(p, 0, 4, 1, false);
        }

        let isr_a = isr_score(dev.block(a), meta.get(g.block_index(a)).unwrap(), now);
        let isr_b = isr_score(dev.block(b), meta.get(g.block_index(b)).unwrap(), now);
        assert!((isr_a - 6.0 / 16.0).abs() < 0.01, "hot block ISR {isr_a}");
        assert!(isr_b > isr_a, "cold block must win: {isr_b} vs {isr_a}");
        assert!(isr_b <= 16.0 / 16.0 + 1e-9);

        let winner = select_isr(
            vec![
                (
                    g.block_index(a),
                    dev.block(a),
                    meta.get(g.block_index(a)).unwrap(),
                ),
                (
                    g.block_index(b),
                    dev.block(b),
                    meta.get(g.block_index(b)).unwrap(),
                ),
            ]
            .into_iter(),
            now,
        );
        assert_eq!(winner, Some(g.block_index(b)));
    }

    #[test]
    fn cold_weight_is_zero_without_valid_data() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let a = build_block(&mut dev, 0, &[(4, 4)]);
        let g = dev.config().geometry.clone();
        let mut meta = CacheMeta::new();
        meta.open_block(g.block_index(a), a, BlockLevel::Work, 4, 4);
        assert_eq!(
            cold_valid_weight(dev.block(a), meta.get(g.block_index(a)).unwrap(), 500),
            0.0
        );
        // Fully-invalid block: ISR = IS/TS = 4/16.
        assert!(
            (isr_score(dev.block(a), meta.get(g.block_index(a)).unwrap(), 500) - 0.25).abs() < 1e-9
        );
    }

    #[test]
    fn cold_weight_grows_with_age() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let a = build_block(&mut dev, 0, &[(4, 0), (4, 0)]);
        let g = dev.config().geometry.clone();
        let mut meta = CacheMeta::new();
        meta.open_block(g.block_index(a), a, BlockLevel::Work, 4, 4);
        let m = meta.get_mut(g.block_index(a)).unwrap();
        m.note_program(0, 0, 4, 1, false); // old
        m.note_program(1, 0, 4, 900_000, false); // fresh
        let m = meta.get(g.block_index(a)).unwrap();
        let w = cold_valid_weight(dev.block(a), m, 1_000_000);
        // Old page's subpages weigh close to 1, fresh page's close to 0.18.
        assert!(w > 4.0 * 0.8, "old data under-weighted: {w}");
        assert!(w < 8.0, "weight cannot exceed valid count: {w}");
    }
}

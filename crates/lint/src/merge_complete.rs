//! `merge-complete` — conservation-ledger structs must merge and serialize
//! every field.
//!
//! The fleet layer sums per-device stats into fleet totals, CI asserts
//! conservation identities over the merged numbers (`offered ≡ total +
//! lost`, `Σ(ops − mirror_ops) ≡ total_ops`), and the replay cache
//! round-trips every one of these structs through JSON. A field added in a
//! later PR that never makes it into `merge` silently under-counts the
//! fleet ledger; one missing from serialization vanishes across the cache.
//! This rule pins both:
//!
//! * the struct must have a `fn merge` in an inherent `impl` **in the same
//!   file**, and every field name must appear somewhere in that body;
//! * the struct must derive `Serialize` and `Deserialize` (or, if it
//!   implements `Serialize` by hand in the same file, every field must
//!   appear in that impl body).
//!
//! Name-presence is deliberately approximate (a comment can't satisfy it —
//! comments aren't tokens — but `other.field` does): it is exactly strong
//! enough to catch the "grew the struct, forgot the merge" drift this
//! workspace has actually had, and fixture tests pin both directions.

use crate::lexer::TokKind;
use crate::ttree::{Item, ItemKind};
use crate::{FileCtx, Finding};
use std::collections::BTreeSet;

/// `(file, struct)` pairs under the merge-completeness contract.
pub const MERGE_SCOPES: &[(&str, &str)] = &[
    ("crates/ftl/src/stats.rs", "FtlStats"),
    ("crates/host/src/metrics.rs", "LatencyStats"),
    ("crates/host/src/metrics.rs", "ReliabilityStats"),
    ("crates/fleet/src/tolerance.rs", "FleetReliability"),
];

/// Runs the rule over one file.
pub fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let scoped: Vec<&str> = MERGE_SCOPES
        .iter()
        .filter(|(f, _)| *f == ctx.rel_path)
        .map(|&(_, s)| s)
        .collect();
    if scoped.is_empty() {
        return;
    }
    for name in scoped {
        check_struct(ctx, name, out);
    }
}

fn check_struct(ctx: &FileCtx<'_>, name: &str, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    let Some(def) = ctx
        .items
        .iter()
        .find(|i| i.kind == ItemKind::Struct && i.name == name && !i.is_test)
    else {
        return; // struct moved away; the scope table is workspace-curated
    };
    let Some((body_open, body_close)) = def.body else {
        return; // tuple/unit struct: nothing to check field-wise
    };
    let fields = field_names(ctx, body_open, body_close);

    // --- serialization ---------------------------------------------------
    let derives = derive_idents(ctx, def);
    let manual_serialize = ctx.items.iter().find(|i| {
        i.kind == ItemKind::Impl && i.name == name && i.trait_name.as_deref() == Some("Serialize")
    });
    if let Some(imp) = manual_serialize {
        if let Some(body) = imp.body {
            let present = idents_in(ctx, body);
            for (f, line) in &fields {
                if !present.contains(f.as_str()) {
                    out.push(finding(
                        ctx,
                        *line,
                        format!(
                            "field `{name}.{f}` missing from the manual `Serialize` impl — \
                             it would vanish across the replay cache"
                        ),
                    ));
                }
            }
        }
    } else if !derives.contains("Serialize") || !derives.contains("Deserialize") {
        out.push(finding(
            ctx,
            def.line,
            format!(
                "`{name}` must derive Serialize and Deserialize (or implement Serialize \
                 manually) — conservation ledgers round-trip through the replay cache"
            ),
        ));
    }

    // --- merge -----------------------------------------------------------
    let merge_body = ctx
        .items
        .iter()
        .filter(|i| {
            i.kind == ItemKind::Fn
                && i.name == "merge"
                && i.owner.as_deref() == Some(name)
                && !i.is_test
        })
        .filter_map(|i| i.body)
        .next();
    match merge_body {
        None => out.push(finding(
            ctx,
            def.line,
            format!(
                "`{name}` has no `fn merge` in this file — fleet aggregation cannot sum \
                 its counters; add one (and a regression test for the summed fields)"
            ),
        )),
        Some(body) => {
            let present = idents_in(ctx, body);
            for (f, line) in &fields {
                if !present.contains(f.as_str()) {
                    out.push(finding(
                        ctx,
                        *line,
                        format!(
                            "field `{name}.{f}` never appears in `{name}::merge` — merged \
                             ledgers would silently drop it"
                        ),
                    ));
                }
            }
            let _ = toks;
        }
    }
}

fn finding(ctx: &FileCtx<'_>, line: u32, message: String) -> Finding {
    Finding {
        rule: "merge-complete",
        file: ctx.rel_path.to_string(),
        line,
        message,
    }
}

/// Field names (with lines) of a struct body: idents directly followed by
/// `:` at group depth 0, skipping attributes and visibility.
fn field_names(ctx: &FileCtx<'_>, open: usize, close: usize) -> Vec<(String, u32)> {
    let toks = ctx.tokens;
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        // Attributes.
        while i < close && toks[i].is_punct("#") {
            match ctx.tree.close_of(i + 1) {
                Some(c) => i = c + 1,
                None => return out,
            }
        }
        // Visibility.
        while i < close && (toks[i].is_ident("pub") || toks[i].is_punct("(")) {
            if toks[i].is_punct("(") {
                match ctx.tree.close_of(i) {
                    Some(c) => i = c + 1,
                    None => return out,
                }
            } else {
                i += 1;
            }
        }
        if i >= close {
            break;
        }
        if toks[i].kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            out.push((toks[i].text.clone(), toks[i].line));
        }
        // Skip the type to the depth-0 `,`.
        while i < close {
            let t = &toks[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                match ctx.tree.close_of(i) {
                    Some(c) => {
                        i = c + 1;
                        continue;
                    }
                    None => return out,
                }
            }
            if t.is_punct(",") {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    out
}

/// All identifiers inside a token span.
fn idents_in<'a>(ctx: &FileCtx<'a>, (open, close): (usize, usize)) -> BTreeSet<&'a str> {
    ctx.tokens[open..=close.min(ctx.tokens.len() - 1)]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect()
}

/// Identifiers named in `#[derive(...)]` attributes directly above an item.
fn derive_idents<'a>(ctx: &'a FileCtx<'_>, item: &Item) -> BTreeSet<&'a str> {
    let toks = ctx.tokens;
    let mut out = BTreeSet::new();
    let mut i = item.start;
    while i < toks.len() && toks[i].is_punct("#") {
        let Some(close) = ctx.tree.close_of(i + 1) else {
            break;
        };
        if toks.get(i + 2).is_some_and(|t| t.is_ident("derive")) {
            for t in &toks[i + 3..close] {
                if t.kind == TokKind::Ident {
                    out.insert(t.text.as_str());
                }
            }
        }
        i = close + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::lint_str;

    const FILE: &str = "crates/host/src/metrics.rs";

    #[test]
    fn complete_merge_and_derives_are_silent() {
        let src = "#[derive(Serialize, Deserialize)]\npub struct ReliabilityStats { pub total: u64, pub lost: u64 }\nimpl ReliabilityStats { pub fn merge(&mut self, o: &Self) { self.total += o.total; self.lost += o.lost; } }";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn field_missing_from_merge_fires() {
        let src = "#[derive(Serialize, Deserialize)]\npub struct ReliabilityStats { pub total: u64, pub lost: u64 }\nimpl ReliabilityStats { pub fn merge(&mut self, o: &Self) { self.total += o.total; } }";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("ReliabilityStats.lost"));
    }

    #[test]
    fn missing_merge_impl_fires_once() {
        let src =
            "#[derive(Serialize, Deserialize)]\npub struct ReliabilityStats { pub total: u64 }";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("no `fn merge`"));
    }

    #[test]
    fn missing_serialize_derive_fires() {
        let src = "#[derive(Clone)]\npub struct ReliabilityStats { pub total: u64 }\nimpl ReliabilityStats { pub fn merge(&mut self, o: &Self) { self.total += o.total; } }";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("derive Serialize"));
    }

    #[test]
    fn unscoped_structs_ignored() {
        let src = "pub struct Whatever { pub x: u64 }";
        let (findings, _) = lint_str("host", FILE, false, src);
        assert!(findings.is_empty(), "{findings:#?}");
        let (findings, _) = lint_str("host", "crates/host/src/other.rs", false, src);
        assert!(findings.is_empty(), "{findings:#?}");
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, range/tuple/`any`
//! strategies, `prop_map`, `prop_oneof!`, `proptest::collection::vec`, and
//! the `prop_assert*` macros. Failing cases report the generated input but
//! are **not shrunk** — shrinking machinery is out of scope for a vendored
//! shim. Generation is deterministic: the RNG is seeded from the test name.

#![allow(clippy::all)]

pub mod test_runner {
    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property: carries the assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// Real proptest's `TestCaseError::Reject` analogue.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(format!("rejected: {}", msg.into()))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test RNG (SplitMix64 keyed by the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name so every test gets its own stream.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `generate`
    /// produces the final value directly.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
            Self::Value: Shuffleable,
        {
            Shuffle { inner: self }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `.prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Boxes a strategy, preserving its value type for inference — the
    /// `prop_oneof!` macro uses this instead of an `as` cast so the arm's
    /// concrete `Value` propagates out of the union.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Collections `.prop_shuffle()` can permute in place.
    pub trait Shuffleable {
        fn shuffle(&mut self, rng: &mut TestRng);
    }

    fn fisher_yates<T>(slice: &mut [T], rng: &mut TestRng) {
        for i in (1..slice.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    impl<T> Shuffleable for Vec<T> {
        fn shuffle(&mut self, rng: &mut TestRng) {
            fisher_yates(self, rng);
        }
    }

    impl<T, const N: usize> Shuffleable for [T; N] {
        fn shuffle(&mut self, rng: &mut TestRng) {
            fisher_yates(self, rng);
        }
    }

    /// `.prop_shuffle()` adapter: a uniformly random permutation of the
    /// inner strategy's value.
    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S> Strategy for Shuffle<S>
    where
        S: Strategy,
        S::Value: Shuffleable,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut v = self.inner.generate(rng);
            v.shuffle(rng);
            v
        }
    }

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V: Debug> OneOf<V> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            OneOf { arms, total }
        }
    }

    impl<V: Debug> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight accounting")
        }
    }

    /// `any::<T>()` — the full/standard domain of `T`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            v.min(self.end - f64::EPSILON * self.end.abs().max(1.0))
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive maximum.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that generates `cases` inputs and runs the body; the
/// body may use `prop_assert*` and `?` on `Result<_, TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let __strategy = ($($strat,)+);
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let __value = $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __input_dbg = format!("{:?}", __value);
                let ($($arg,)+) = __value;
                let __result = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(__e) = __result {
                    panic!(
                        "property `{}` failed at case {}/{}:\n  {}\n  input: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e,
                        __input_dbg
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Weighted (`w => strategy`) or unweighted (`strategy, ...`) union.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![$(
            ($weight as u32, $crate::strategy::boxed($strat))
        ),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![$(
            (1u32, $crate::strategy::boxed($strat))
        ),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(
            (a, b) in (0u32..10, 5u64..50),
            v in crate::collection::vec(1u8..=3, 2..6),
        ) {
            prop_assert!(a < 10);
            prop_assert!((5..50).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..=3).contains(&x)));
        }

        #[test]
        fn oneof_and_map_work(x in prop_oneof![
            3 => (0u32..5).prop_map(|v| v * 10),
            1 => Just(999u32),
        ]) {
            prop_assert!(x == 999 || x % 10 == 0, "unexpected {x}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..100, 3..10);
        let mut r1 = TestRng::from_name("x");
        let mut r2 = TestRng::from_name("x");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}

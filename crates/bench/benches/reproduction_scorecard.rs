//! `cargo bench -p ipu-bench --bench reproduction_scorecard`
//!
//! Prints the self-checking reproduction scorecard: every quantitative claim
//! from the paper's evaluation, the measured value on the same definition,
//! and a REPRODUCED / PARTIAL / DEVIATION verdict. Shares the cached main
//! matrix with the fig5..fig11 benches.

fn main() {
    let cfg = ipu_bench::bench_config();
    let matrix = ipu_bench::main_matrix_cached(&cfg);
    let results = ipu_core::scorecard::evaluate(&matrix);
    println!("{}", ipu_core::scorecard::render(&results));
}

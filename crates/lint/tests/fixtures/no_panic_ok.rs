//! Fixture: R1-conforming code for a panic-free crate.

pub fn ok_fallible(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing".to_string())
}

pub fn ok_let_else(v: &[u32]) -> u32 {
    let Some(&first) = v.first() else {
        return 0;
    };
    first
}

pub fn ok_match_without_indexing(v: &[u32], flag: bool) -> u32 {
    match flag {
        true => v.first().copied().unwrap_or(0),
        false => 0,
    }
}

//! Flash operation records emitted by the FTL.
//!
//! The FTL executes operations against the device immediately (state-wise) but
//! *timing* is the simulator's job: each operation is reported as an
//! [`OpRecord`] carrying its service latency and the chip it occupies, and
//! `ipu-sim` serializes records per chip to model contention.

use ipu_flash::Nanos;
use serde::{Deserialize, Serialize};

/// What kind of flash operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlashOpKind {
    /// Read issued to serve a host read.
    HostRead,
    /// Read of a logical address the host never wrote (pre-trace data).
    UnmappedRead,
    /// Program issued to serve a host write.
    HostProgram,
    /// Read issued by GC to relocate valid data.
    GcRead,
    /// Program issued by GC to relocate valid data.
    GcProgram,
    /// Block erase (always GC- or eviction-driven).
    Erase,
}

impl FlashOpKind {
    /// Whether this operation was issued on behalf of the host request (and
    /// therefore contributes to its response time directly).
    pub fn is_host(self) -> bool {
        matches!(
            self,
            FlashOpKind::HostRead | FlashOpKind::UnmappedRead | FlashOpKind::HostProgram
        )
    }
}

/// Why a background round of operations was started. The replay engines use
/// the origin to classify the round's pulses as GC-step or scrub-step events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoundOrigin {
    /// Garbage collection (SLC or MLC victim reclaim, emergency reclaim).
    Gc,
    /// Background scrub/refresh rewrites.
    Scrub,
    /// Static wear-leveling migration.
    WearLevel,
}

/// One flash operation with its service latency and chip placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Dense chip index (`FlashGeometry::chip_index`) the operation occupies.
    pub chip: u32,
    pub kind: FlashOpKind,
    /// Service latency of the operation itself.
    pub latency_ns: Nanos,
    /// Background round this operation belongs to, within its batch: `0` for
    /// host operations (and stray background work emitted outside any round),
    /// otherwise a 1-based index into the batch's
    /// [`round origins`](OpBatch::round_origin). The event-driven replay core
    /// uses round boundaries to model run-to-completion GC; batches recorded
    /// before round tagging deserialize as untagged (`0`).
    #[serde(default)]
    pub round: u32,
}

/// Completion status of one host request, in ascending severity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqStatus {
    /// Served without incident.
    #[default]
    Success,
    /// Served, but only after fault recovery (read-retry ladder succeeded,
    /// or a program was replayed onto a fresh page after a failure).
    Recovered,
    /// Data was lost or the request could not be completed (retry ladder
    /// exhausted, write placement failed, or space ran out).
    Failed,
}

impl ReqStatus {
    /// Raises the status to `to` if `to` is more severe; never lowers it.
    pub fn escalate(&mut self, to: ReqStatus) {
        if (to as u8) > (*self as u8) {
            *self = to;
        }
    }
}

/// All operations triggered by one host request (including any GC it tripped).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpBatch {
    pub ops: Vec<OpRecord>,
    /// Outcome of the request these operations served.
    #[serde(default)]
    pub status: ReqStatus,
    /// Origin of each background round begun in this batch, in round order:
    /// an op with `round == r` (r ≥ 1) was emitted by round `round_origins[r-1]`.
    #[serde(default)]
    pub round_origins: Vec<RoundOrigin>,
}

impl OpBatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the batch for the next request, retaining the `ops` allocation.
    ///
    /// The replay hot path reuses one batch across every request of a trace
    /// (see `FtlScheme::on_write_into`), so the per-request `Vec` grows to the
    /// workload's high-water mark once and is never reallocated again.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.status = ReqStatus::Success;
        self.round_origins.clear();
    }

    /// Opens a new background round of `origin`: background operations pushed
    /// from here on (until the next round begins) are tagged as its steps.
    /// Host operations are never tagged — they always carry round `0`.
    pub fn begin_background_round(&mut self, origin: RoundOrigin) {
        self.round_origins.push(origin);
    }

    /// Number of background rounds begun in this batch.
    pub fn rounds_used(&self) -> u32 {
        self.round_origins.len() as u32
    }

    /// Origin of round `round` (1-based); `None` for round `0` (host ops and
    /// stray background work) or an out-of-range index.
    pub fn round_origin(&self, round: u32) -> Option<RoundOrigin> {
        if round == 0 {
            return None;
        }
        self.round_origins.get(round as usize - 1).copied()
    }

    pub fn push(&mut self, chip: u32, kind: FlashOpKind, latency_ns: Nanos) {
        let round = if kind.is_host() {
            0
        } else {
            self.round_origins.len() as u32
        };
        self.ops.push(OpRecord {
            chip,
            kind,
            latency_ns,
            round,
        });
    }

    /// Sum of host-visible operation latencies (ignores chip overlap).
    pub fn host_latency_sum(&self) -> Nanos {
        self.ops
            .iter()
            .filter(|o| o.kind.is_host())
            .map(|o| o.latency_ns)
            .sum()
    }

    /// Sum of all operation latencies.
    pub fn total_latency_sum(&self) -> Nanos {
        self.ops.iter().map(|o| o.latency_ns).sum()
    }

    /// Number of operations of `kind`.
    pub fn count(&self, kind: FlashOpKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_kinds_are_classified() {
        assert!(FlashOpKind::HostRead.is_host());
        assert!(FlashOpKind::HostProgram.is_host());
        assert!(FlashOpKind::UnmappedRead.is_host());
        assert!(!FlashOpKind::GcRead.is_host());
        assert!(!FlashOpKind::GcProgram.is_host());
        assert!(!FlashOpKind::Erase.is_host());
    }

    #[test]
    fn status_escalates_monotonically() {
        let mut s = ReqStatus::default();
        assert_eq!(s, ReqStatus::Success);
        s.escalate(ReqStatus::Recovered);
        assert_eq!(s, ReqStatus::Recovered);
        s.escalate(ReqStatus::Success); // never lowers
        assert_eq!(s, ReqStatus::Recovered);
        s.escalate(ReqStatus::Failed);
        assert_eq!(s, ReqStatus::Failed);
        s.escalate(ReqStatus::Recovered);
        assert_eq!(s, ReqStatus::Failed);
    }

    #[test]
    fn batch_status_survives_serde() {
        let mut b = OpBatch::new();
        b.push(0, FlashOpKind::HostRead, 10);
        b.status.escalate(ReqStatus::Recovered);
        let json = serde_json::to_string(&b).unwrap();
        let back: OpBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
        // Pre-fault-model batches deserialize with the default status.
        let legacy: OpBatch = serde_json::from_str(r#"{"ops":[]}"#).unwrap();
        assert_eq!(legacy.status, ReqStatus::Success);
        // Pre-round-tagging op records deserialize as untagged (round 0).
        let op: OpRecord =
            serde_json::from_str(r#"{"chip":3,"kind":"GcRead","latency_ns":9}"#).unwrap();
        assert_eq!(op.round, 0);
    }

    #[test]
    fn rounds_tag_background_ops_only() {
        let mut b = OpBatch::new();
        b.push(0, FlashOpKind::HostProgram, 100);
        b.push(0, FlashOpKind::GcRead, 10); // stray: before any round
        b.begin_background_round(RoundOrigin::Gc);
        b.push(0, FlashOpKind::GcRead, 50);
        b.push(1, FlashOpKind::GcProgram, 60);
        b.push(0, FlashOpKind::HostProgram, 100); // host never tagged
        b.begin_background_round(RoundOrigin::Scrub);
        b.push(0, FlashOpKind::GcProgram, 70);
        b.push(0, FlashOpKind::Erase, 1000);
        assert_eq!(
            b.ops.iter().map(|o| o.round).collect::<Vec<_>>(),
            vec![0, 0, 1, 1, 0, 2, 2]
        );
        assert_eq!(b.rounds_used(), 2);
        assert_eq!(b.round_origin(0), None);
        assert_eq!(b.round_origin(1), Some(RoundOrigin::Gc));
        assert_eq!(b.round_origin(2), Some(RoundOrigin::Scrub));
        assert_eq!(b.round_origin(3), None);
        b.clear();
        assert_eq!(b.rounds_used(), 0);
        assert!(b.ops.is_empty());
    }

    #[test]
    fn batch_sums_and_counts() {
        let mut b = OpBatch::new();
        b.push(0, FlashOpKind::HostProgram, 100);
        b.push(1, FlashOpKind::GcRead, 50);
        b.push(1, FlashOpKind::Erase, 1000);
        assert_eq!(b.host_latency_sum(), 100);
        assert_eq!(b.total_latency_sum(), 1150);
        assert_eq!(b.count(FlashOpKind::Erase), 1);
        assert_eq!(b.ops.len(), 3);
    }
}

//! Parser for the MSR-Cambridge block I/O trace format.
//!
//! The SNIA-published MSR Cambridge traces (Narayanan et al., ref. \[20\]) are
//! CSV lines of the form
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! 128166372003061629,hm,0,Read,383496192,32768,113736
//! ```
//!
//! where `Timestamp` is a Windows FILETIME (100 ns ticks since 1601),
//! `Offset`/`Size` are bytes and `ResponseTime` is in 100 ns units. Timestamps
//! are rebased so the first request arrives at t = 0.

use std::io::BufRead;

use crate::request::{IoRequest, OpKind};

/// A parse failure, with the offending line number (1-based) when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Windows FILETIME tick length in nanoseconds.
const FILETIME_TICK_NS: u64 = 100;

/// Parses one MSR-format CSV line into `(timestamp_ns, op, offset, size)`.
///
/// The timestamp is *absolute* (FILETIME converted to ns); callers rebase.
pub fn parse_msr_line(line: &str, line_no: usize) -> Result<IoRequest, ParseError> {
    let err = |message: String| ParseError {
        line: line_no,
        message,
    };
    let mut fields = line.trim().split(',');
    let mut next = |name: &str| {
        fields
            .next()
            .ok_or_else(|| err(format!("missing field `{name}`")))
    };

    let ts: u64 = next("Timestamp")?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad timestamp: {e}")))?;
    let _hostname = next("Hostname")?;
    let _disk = next("DiskNumber")?;
    let op = match next("Type")?.trim() {
        t if t.eq_ignore_ascii_case("read") => OpKind::Read,
        t if t.eq_ignore_ascii_case("write") => OpKind::Write,
        other => return Err(err(format!("unknown op `{other}`"))),
    };
    let offset: u64 = next("Offset")?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad offset: {e}")))?;
    let size: u64 = next("Size")?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad size: {e}")))?;
    if size == 0 || size > u32::MAX as u64 {
        return Err(err(format!("size {size} out of range")));
    }

    Ok(IoRequest::new(
        ts.saturating_mul(FILETIME_TICK_NS),
        op,
        offset,
        size as u32,
    ))
}

/// Parses a whole MSR-format trace, rebasing timestamps to start at zero and
/// sorting by arrival time. Blank lines and a leading header line are skipped;
/// malformed data lines are errors.
pub fn parse_msr_reader<R: BufRead>(reader: R) -> Result<Vec<IoRequest>, ParseError> {
    let _span = ipu_obs::span(ipu_obs::Phase::TraceDecode);
    let mut requests = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line.map_err(|e| ParseError {
            line: line_no,
            message: e.to_string(),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if line_no == 1 && trimmed.to_ascii_lowercase().starts_with("timestamp") {
            continue; // header
        }
        requests.push(parse_msr_line(trimmed, line_no)?);
    }
    requests.sort_by_key(|r| r.timestamp_ns);
    if let Some(base) = requests.first().map(|r| r.timestamp_ns) {
        for r in &mut requests {
            r.timestamp_ns -= base;
        }
    }
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
128166372003061629,hm,0,Read,383496192,32768,113736
128166372016382155,hm,0,Write,2748530688,4096,23586
128166372005000000,hm,0,write,2748530688,8192,5000
";

    #[test]
    fn parses_and_rebases_sample() {
        let reqs = parse_msr_reader(SAMPLE.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 3);
        // Sorted by time, first at zero.
        assert_eq!(reqs[0].timestamp_ns, 0);
        assert!(reqs
            .windows(2)
            .all(|w| w[0].timestamp_ns <= w[1].timestamp_ns));
        assert_eq!(reqs[0].op, OpKind::Read);
        assert_eq!(reqs[0].offset, 383496192);
        assert_eq!(reqs[0].size, 32768);
        // Case-insensitive op parsing.
        assert_eq!(reqs[1].op, OpKind::Write);
        assert_eq!(reqs[1].size, 8192);
        // Tick conversion: 128166372016382155 − 128166372003061629 ticks.
        let delta_ticks = 128166372016382155u64 - 128166372003061629u64;
        assert_eq!(reqs[2].timestamp_ns, delta_ticks * 100);
    }

    #[test]
    fn header_is_optional() {
        let body = "128166372003061629,hm,0,Read,0,4096,1";
        let reqs = parse_msr_reader(body.as_bytes()).unwrap();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].timestamp_ns, 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_msr_line("not,a,trace", 1).is_err());
        assert!(parse_msr_line("1,h,0,Erase,0,4096,1", 1).is_err());
        assert!(parse_msr_line("1,h,0,Read,0,0,1", 1).is_err());
        assert!(parse_msr_line("x,h,0,Read,0,4096,1", 1).is_err());
        let err = parse_msr_line("1,h,0", 7).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.message.contains("Type"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let body = "\n\n128166372003061629,hm,0,Read,0,4096,1\n\n";
        assert_eq!(parse_msr_reader(body.as_bytes()).unwrap().len(), 1);
    }
}

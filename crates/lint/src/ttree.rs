//! Token-tree layer: structure on top of the flat [`crate::lexer`] stream.
//!
//! Three services, all index-based so they compose with the existing
//! token-offset rules:
//!
//! 1. **Delimiter matching** ([`TokenTreeIndex`]): for every `(`/`[`/`{` the
//!    index of its matching close delimiter (and vice versa), computed in one
//!    pass. Unbalanced files degrade gracefully (unmatched delimiters map to
//!    `usize::MAX`) — the linter must never panic on weird input.
//! 2. **Item extraction** ([`collect_fns`], [`collect_items`]): `fn`, `impl`,
//!    `trait`, `struct`, `enum` and `mod` items with their names, body spans,
//!    attributes, and — crucially for the call graph — the `impl` owner type
//!    and trait name each `fn` belongs to.
//! 3. **Test-region attribution**: `#[cfg(test)]` and `#[test]` attributes
//!    are inherited down the item tree, so a fn inside `#[cfg(test)] mod
//!    tests` is marked `is_test` without any separate mask pass.
//!
//! This is still not a Rust parser: expressions are opaque token runs, nested
//! `fn` items inside function bodies are not descended into (none exist on
//! the invariant surfaces this linter guards), and generic parameters are
//! skipped as balanced `<…>` runs only where they syntactically must occur
//! (after `impl` / item names). Fixture tests pin the shapes this workspace
//! actually uses.

use crate::lexer::{TokKind, Token};

/// Sentinel for "no matching delimiter".
pub const NO_MATCH: usize = usize::MAX;

/// Matching-delimiter index over a token slice.
pub struct TokenTreeIndex {
    /// `matching[i]` is the index of the delimiter matching `toks[i]`, for
    /// tokens that are `(`/`)`/`[`/`]`/`{`/`}`; [`NO_MATCH`] otherwise or
    /// when unbalanced.
    pub matching: Vec<usize>,
}

impl TokenTreeIndex {
    /// Builds the index in one pass with a per-delimiter-kind stack.
    pub fn build(toks: &[Token]) -> TokenTreeIndex {
        let mut matching = vec![NO_MATCH; toks.len()];
        // One shared stack keeps cross-kind nesting honest: `( [ ) ]` leaves
        // both unmatched rather than pairing across kinds.
        let mut stack: Vec<(usize, &str)> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => stack.push((i, t.text.as_str())),
                ")" | "]" | "}" => {
                    let want = match t.text.as_str() {
                        ")" => "(",
                        "]" => "[",
                        _ => "{",
                    };
                    if let Some(&(open, kind)) = stack.last() {
                        if kind == want {
                            stack.pop();
                            matching[open] = i;
                            matching[i] = open;
                        }
                        // Mismatched close: leave both unmatched, keep the
                        // stack — a stray `)` must not unwind brace nesting.
                    }
                }
                _ => {}
            }
        }
        TokenTreeIndex { matching }
    }

    /// The close index matching the open delimiter at `i`, if balanced.
    pub fn close_of(&self, i: usize) -> Option<usize> {
        match self.matching.get(i) {
            Some(&m) if m != NO_MATCH && m > i => Some(m),
            _ => None,
        }
    }
}

/// Item classification, as much as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function or method.
    Fn,
    /// A `struct` definition.
    Struct,
    /// An `enum` definition.
    Enum,
    /// A `trait` definition.
    Trait,
    /// An `impl` block (inherent or trait).
    Impl,
    /// A `mod` with an inline body.
    Mod,
}

/// One extracted item. Spans are token indices into the file's stream.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name: the fn/struct/enum/trait/mod identifier; for `impl` blocks
    /// the *type* name (last path segment of the self type).
    pub name: String,
    /// For `impl Trait for Type`, the trait's last path segment; for fns
    /// inside such a block, inherited. `None` for inherent items.
    pub trait_name: Option<String>,
    /// For fns: the enclosing `impl` type or `trait` name. `None` for free
    /// functions and non-fn items.
    pub owner: Option<String>,
    /// Index of the first token of the item (its first attribute, or the
    /// first signature token when unattributed).
    pub start: usize,
    /// `{`..`}` token span of the body, if the item has one.
    pub body: Option<(usize, usize)>,
    /// Index of the last token of the item (body close or terminating `;`).
    pub end: usize,
    /// Whether the item (or an enclosing item) is `#[cfg(test)]`/`#[test]`.
    pub is_test: bool,
    /// 1-based line of the first signature token.
    pub line: u32,
}

/// One function definition with its call-graph context.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// The `impl`/`trait` owner type name, `None` for free functions.
    pub owner: Option<String>,
    /// The trait being implemented (or defined, for trait default bodies).
    pub trait_name: Option<String>,
    /// `{`..`}` token span of the body.
    pub body: (usize, usize),
    /// In `#[cfg(test)]` scope or carrying `#[test]`.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

/// Modifier keywords that may precede an item keyword.
fn is_modifier(s: &str) -> bool {
    matches!(
        s,
        "pub" | "const" | "async" | "unsafe" | "extern" | "default"
    )
}

/// Extracts all top-level and nested (mod/impl/trait) items from `toks`.
pub fn collect_items(toks: &[Token], tree: &TokenTreeIndex) -> Vec<Item> {
    let mut items = Vec::new();
    scan_items(toks, tree, 0, toks.len(), false, None, None, &mut items);
    items
}

/// Extracts every `fn` with a body, descending through `mod`/`impl`/`trait`.
pub fn collect_fns(toks: &[Token], tree: &TokenTreeIndex) -> Vec<FnDef> {
    collect_items(toks, tree)
        .into_iter()
        .filter_map(|it| {
            if it.kind != ItemKind::Fn {
                return None;
            }
            let body = it.body?;
            Some(FnDef {
                name: it.name,
                owner: it.owner,
                trait_name: it.trait_name,
                body,
                is_test: it.is_test,
                line: it.line,
            })
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn scan_items(
    toks: &[Token],
    tree: &TokenTreeIndex,
    start: usize,
    end: usize,
    inherited_test: bool,
    owner: Option<&str>,
    trait_name: Option<&str>,
    out: &mut Vec<Item>,
) {
    let mut i = start;
    while i < end {
        let item_start = i;
        // --- attributes ---------------------------------------------------
        let mut is_test = inherited_test;
        while i < end && toks[i].is_punct("#") {
            let mut j = i + 1;
            if j < end && toks[j].is_punct("!") {
                // Inner attribute `#![...]`: belongs to the enclosing scope,
                // not the next item. Skip it without opening an item.
                j += 1;
            }
            let Some(close) = (j < end && toks[j].is_punct("["))
                .then(|| tree.close_of(j))
                .flatten()
            else {
                i += 1;
                continue;
            };
            if attr_is_test(&toks[j + 1..close]) {
                is_test = true;
            }
            i = close + 1;
        }
        if i >= end {
            break;
        }
        // --- modifiers ----------------------------------------------------
        while i < end {
            let t = &toks[i];
            if t.kind == TokKind::Ident && is_modifier(&t.text) {
                i += 1;
                // `pub(crate)` / `extern "C"`
                if i < end && toks[i].is_punct("(") {
                    match tree.close_of(i) {
                        Some(c) => i = c + 1,
                        None => return,
                    }
                } else if i < end && toks[i].kind == TokKind::Str {
                    i += 1;
                }
            } else {
                break;
            }
        }
        if i >= end {
            break;
        }
        let kw = &toks[i];
        if kw.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match kw.text.as_str() {
            "fn" => {
                let name = ident_at(toks, i + 1).unwrap_or_default();
                let line = kw.line;
                // Body: first `{` at group depth 0 before a depth-0 `;`.
                let mut j = i + 1;
                let mut body = None;
                while j < end {
                    let t = &toks[j];
                    if t.is_punct("(") || t.is_punct("[") {
                        match tree.close_of(j) {
                            Some(c) => {
                                j = c + 1;
                                continue;
                            }
                            None => return,
                        }
                    }
                    if t.is_punct(";") {
                        break; // bodyless trait method / extern decl
                    }
                    if t.is_punct("{") {
                        match tree.close_of(j) {
                            Some(c) => body = Some((j, c)),
                            None => return,
                        }
                        break;
                    }
                    j += 1;
                }
                let item_end = body.map(|(_, c)| c).unwrap_or(j.min(end - 1));
                out.push(Item {
                    kind: ItemKind::Fn,
                    name,
                    trait_name: trait_name.map(str::to_string),
                    owner: owner.map(str::to_string),
                    start: item_start,
                    body,
                    end: item_end,
                    is_test,
                    line,
                });
                i = item_end + 1;
            }
            "mod" => {
                let name = ident_at(toks, i + 1).unwrap_or_default();
                // `mod name;` or `mod name { ... }`.
                let mut j = i + 1;
                while j < end && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                    j += 1;
                }
                if j < end && toks[j].is_punct("{") {
                    let Some(close) = tree.close_of(j) else {
                        return;
                    };
                    out.push(Item {
                        kind: ItemKind::Mod,
                        name,
                        trait_name: None,
                        owner: None,
                        start: item_start,
                        body: Some((j, close)),
                        end: close,
                        is_test,
                        line: kw.line,
                    });
                    scan_items(toks, tree, j + 1, close, is_test, None, None, out);
                    i = close + 1;
                } else {
                    i = j.saturating_add(1);
                }
            }
            "impl" => {
                // `impl<G> Type`, `impl<G> Trait for Type`, generics skipped
                // as balanced `<…>` runs.
                let mut j = skip_generics(toks, i + 1, end);
                let first = path_last_segment(toks, &mut j, end);
                let (tname, type_name) = if j < end && toks[j].is_ident("for") {
                    j += 1;
                    let ty = path_last_segment(toks, &mut j, end);
                    (first, ty)
                } else {
                    (None, first)
                };
                // Find the body `{`, skipping a possible where clause.
                while j < end && !toks[j].is_punct("{") {
                    if toks[j].is_punct("(") || toks[j].is_punct("[") {
                        match tree.close_of(j) {
                            Some(c) => j = c,
                            None => return,
                        }
                    }
                    j += 1;
                }
                if j >= end {
                    return;
                }
                let Some(close) = tree.close_of(j) else {
                    return;
                };
                out.push(Item {
                    kind: ItemKind::Impl,
                    name: type_name.clone().unwrap_or_default(),
                    trait_name: tname.clone(),
                    owner: None,
                    start: item_start,
                    body: Some((j, close)),
                    end: close,
                    is_test,
                    line: kw.line,
                });
                scan_items(
                    toks,
                    tree,
                    j + 1,
                    close,
                    is_test,
                    type_name.as_deref(),
                    tname.as_deref(),
                    out,
                );
                i = close + 1;
            }
            "trait" => {
                let name = ident_at(toks, i + 1).unwrap_or_default();
                let mut j = i + 1;
                while j < end && !toks[j].is_punct("{") {
                    if toks[j].is_punct("(") || toks[j].is_punct("[") {
                        match tree.close_of(j) {
                            Some(c) => j = c,
                            None => return,
                        }
                    }
                    j += 1;
                }
                if j >= end {
                    return;
                }
                let Some(close) = tree.close_of(j) else {
                    return;
                };
                out.push(Item {
                    kind: ItemKind::Trait,
                    name: name.clone(),
                    trait_name: None,
                    owner: None,
                    start: item_start,
                    body: Some((j, close)),
                    end: close,
                    is_test,
                    line: kw.line,
                });
                scan_items(
                    toks,
                    tree,
                    j + 1,
                    close,
                    is_test,
                    Some(&name),
                    Some(&name),
                    out,
                );
                i = close + 1;
            }
            "struct" | "enum" | "union" => {
                let name = ident_at(toks, i + 1).unwrap_or_default();
                let kind = if kw.text == "enum" {
                    ItemKind::Enum
                } else {
                    ItemKind::Struct
                };
                // Skip to the body `{` or terminating `;` (tuple struct:
                // `(..);` — the paren run is skipped as a group).
                let mut j = i + 1;
                let mut body = None;
                while j < end {
                    let t = &toks[j];
                    if t.is_punct("(") || t.is_punct("[") {
                        match tree.close_of(j) {
                            Some(c) => {
                                j = c + 1;
                                continue;
                            }
                            None => return,
                        }
                    }
                    if t.is_punct(";") {
                        break;
                    }
                    if t.is_punct("{") {
                        match tree.close_of(j) {
                            Some(c) => body = Some((j, c)),
                            None => return,
                        }
                        break;
                    }
                    j += 1;
                }
                let item_end = body.map(|(_, c)| c).unwrap_or(j.min(end - 1));
                out.push(Item {
                    kind,
                    name,
                    trait_name: None,
                    owner: None,
                    start: item_start,
                    body,
                    end: item_end,
                    is_test,
                    line: kw.line,
                });
                i = item_end + 1;
            }
            // Items without interesting structure: skip to `;` or past a
            // body group at depth 0.
            "use" | "type" | "static" | "extern" | "macro_rules" => {
                let mut j = i + 1;
                while j < end {
                    let t = &toks[j];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        match tree.close_of(j) {
                            Some(c) => {
                                if t.is_punct("{") {
                                    j = c;
                                    break;
                                }
                                j = c + 1;
                                continue;
                            }
                            None => return,
                        }
                    }
                    if t.is_punct(";") {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
}

/// Whether attribute body tokens mark a test item: `test`, `cfg(test)`, or
/// `cfg(any(test, …))`-style bodies mentioning `test` inside `cfg`.
fn attr_is_test(body: &[Token]) -> bool {
    if body.first().is_some_and(|t| t.is_ident("test")) && body.len() <= 1 {
        return true;
    }
    // `#[test]` with path, e.g. `#[tokio::test]` — last segment `test`.
    if body
        .iter()
        .all(|t| t.kind == TokKind::Ident || t.is_punct("::"))
        && body.last().is_some_and(|t| t.is_ident("test"))
    {
        return true;
    }
    body.first().is_some_and(|t| t.is_ident("cfg")) && body.iter().any(|t| t.is_ident("test"))
}

/// The identifier at `i`, if any.
fn ident_at(toks: &[Token], i: usize) -> Option<String> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// Skips a balanced `<…>` generics run starting at `i`, if present.
fn skip_generics(toks: &[Token], i: usize, end: usize) -> usize {
    if i >= end || !toks[i].is_punct("<") {
        return i;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        match toks[j].text.as_str() {
            "<" | "<<" => depth += if toks[j].text == "<<" { 2 } else { 1 },
            ">" | ">>" => {
                depth -= if toks[j].text == ">>" { 2 } else { 1 };
                if depth <= 0 {
                    return j + 1;
                }
            }
            "->" => {} // `fn(..) -> T` inside generics: not a close
            _ => {}
        }
        j += 1;
    }
    end
}

/// Reads a type/trait path at `*i`, returning its last identifier segment
/// and leaving `*i` after the path (including trailing generics).
fn path_last_segment(toks: &[Token], i: &mut usize, end: usize) -> Option<String> {
    let mut last = None;
    // Leading `&`/`&mut`/`dyn` on self types.
    while *i < end
        && (toks[*i].is_punct("&")
            || toks[*i].is_ident("mut")
            || toks[*i].is_ident("dyn")
            || toks[*i].kind == TokKind::Lifetime)
    {
        *i += 1;
    }
    loop {
        match toks.get(*i) {
            Some(t) if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "for" | "where") => {
                last = Some(t.text.clone());
                *i += 1;
            }
            _ => break,
        }
        *i = skip_generics(toks, *i, end);
        if *i < end && toks[*i].is_punct("::") {
            *i += 1;
        } else {
            break;
        }
    }
    *i = skip_generics(toks, *i, end);
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnDef> {
        let out = lex(src);
        let tree = TokenTreeIndex::build(&out.tokens);
        collect_fns(&out.tokens, &tree)
    }

    #[test]
    fn matching_pairs_nested_delims() {
        let out = lex("fn f(a: [u8; 4]) { g(h[i]); }");
        let tree = TokenTreeIndex::build(&out.tokens);
        let open = out.tokens.iter().position(|t| t.is_punct("{")).unwrap();
        let close = tree.close_of(open).unwrap();
        assert!(out.tokens[close].is_punct("}"));
        assert_eq!(tree.matching[close], open);
    }

    #[test]
    fn unbalanced_input_degrades() {
        let out = lex("fn f( {");
        let tree = TokenTreeIndex::build(&out.tokens);
        assert!(tree.matching.iter().all(|&m| m == NO_MATCH));
    }

    #[test]
    fn free_fn_and_method_owners() {
        let src = "fn free() { a(); }\nimpl Dev { fn m(&self) {} }\nimpl Scheme for Dev { fn s(&self) {} }";
        let got = fns(src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].name, "free");
        assert_eq!(got[0].owner, None);
        assert_eq!(got[1].name, "m");
        assert_eq!(got[1].owner.as_deref(), Some("Dev"));
        assert_eq!(got[1].trait_name, None);
        assert_eq!(got[2].name, "s");
        assert_eq!(got[2].owner.as_deref(), Some("Dev"));
        assert_eq!(got[2].trait_name.as_deref(), Some("Scheme"));
    }

    #[test]
    fn generic_impl_paths_resolve_last_segment() {
        let src =
            "impl<T: Clone> crate::sch::Scheme<T> for foo::Bar<T> where T: Eq { fn go(&self) {} }";
        let got = fns(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].owner.as_deref(), Some("Bar"));
        assert_eq!(got[0].trait_name.as_deref(), Some("Scheme"));
    }

    #[test]
    fn trait_default_bodies_are_fns_with_trait_owner() {
        let src = "pub trait S { fn sig(&self); fn dflt(&self) { self.sig() } }";
        let got = fns(src);
        // Only `dflt` has a body.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "dflt");
        assert_eq!(got[0].owner.as_deref(), Some("S"));
        assert_eq!(got[0].trait_name.as_deref(), Some("S"));
    }

    #[test]
    fn cfg_test_inherits_through_mods() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\n#[test]\nfn top_t() {}";
        let got = fns(src);
        let by_name = |n: &str| got.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("live").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("t").is_test);
        assert!(by_name("top_t").is_test);
    }

    #[test]
    fn items_include_structs_and_enums() {
        let src = "pub struct A { x: u32 }\npub enum B { V1, V2(u8) }\npub struct C(u8);";
        let out = lex(src);
        let tree = TokenTreeIndex::build(&out.tokens);
        let items = collect_items(&out.tokens, &tree);
        let names: Vec<(&str, ItemKind)> =
            items.iter().map(|i| (i.name.as_str(), i.kind)).collect();
        assert_eq!(
            names,
            [
                ("A", ItemKind::Struct),
                ("B", ItemKind::Enum),
                ("C", ItemKind::Struct)
            ]
        );
        assert!(items[0].body.is_some());
        assert!(items[2].body.is_none());
    }

    #[test]
    fn inner_attributes_do_not_consume_items() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}";
        let got = fns(src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "f");
    }

    #[test]
    fn fn_sig_with_array_types_finds_body() {
        let src = "fn f(xs: [u64; 4]) -> [u8; 2] { let y = xs; [0, 1] }";
        let got = fns(src);
        assert_eq!(got.len(), 1);
        assert!(got[0].body.0 < got[0].body.1);
    }
}

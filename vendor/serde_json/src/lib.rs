//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's [`Value`] tree as JSON text.

#![allow(clippy::all)]

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

pub use serde::Value as JsonValue;

/// JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(pairs) => write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
            write_string(out, &pairs[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &pairs[i].1, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

/// Rust's shortest-round-trip `Display` for floats, with non-finite values
/// mapped to `null` (JSON has no representation for them).
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep it a float on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(18446744073709551615)),
            ("b".into(), Value::Float(0.00028)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("d".into(), Value::Str("hi \"there\"\n".into())),
            ("e".into(), Value::Int(-42)),
        ]);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}

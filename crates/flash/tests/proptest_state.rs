//! Property-based tests over the flash device state machine.
//!
//! Random sequences of program / invalidate / erase operations must preserve:
//! subpage-count conservation, NOP-budget enforcement, disturb monotonicity and
//! the pristine-after-erase guarantee.

use ipu_flash::{BlockAddr, CellMode, DeviceConfig, FlashDevice, FlashError, Spa, SubpageState};
use proptest::prelude::*;

/// One step of the random workload.
#[derive(Debug, Clone)]
enum Step {
    Program { page: u32, subpage: u8, count: u8 },
    Invalidate { page: u32, subpage: u8 },
    Erase { to_slc: bool },
}

fn step_strategy(max_pages: u32, subpages: u8) -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0..max_pages, 0..subpages, 1..=subpages).prop_map(|(page, subpage, count)| {
            Step::Program { page, subpage, count }
        }),
        2 => (0..max_pages, 0..subpages).prop_map(|(page, subpage)| {
            Step::Invalidate { page, subpage }
        }),
        1 => any::<bool>().prop_map(|to_slc| Step::Erase { to_slc }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever happens, per-block subpage accounting must balance, disturb
    /// counters must never decrease except at erase, and every erase must
    /// leave the block pristine with a bumped P/E count.
    #[test]
    fn state_machine_invariants(steps in proptest::collection::vec(step_strategy(4, 4), 1..120)) {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        let idx = dev.config().geometry.block_index(addr);
        let mut erase_count = 0u32;
        let mut last_disturb_events = 0u64;

        for step in steps {
            match step {
                Step::Program { page, subpage, count } => {
                    if subpage + count > 4 { continue; }
                    let spa = Spa::new(addr.page(page), subpage);
                    let in_range = page < dev.block(addr).page_count();
                    match dev.program(spa, count) {
                        Ok(res) => {
                            prop_assert!(in_range);
                            prop_assert!(res.latency_ns > 0);
                        }
                        Err(FlashError::OutOfRange(_)) => prop_assert!(!in_range),
                        Err(FlashError::SubpageNotFree(_))
                        | Err(FlashError::PartialProgramLimit { .. })
                        | Err(FlashError::PartialNotSupported { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Step::Invalidate { page, subpage } => {
                    if page < dev.block(addr).page_count() {
                        let spa = Spa::new(addr.page(page), subpage);
                        let was_valid =
                            dev.block(addr).page(page).subpage(subpage) == SubpageState::Valid;
                        let res = dev.invalidate(spa);
                        prop_assert_eq!(res.is_ok(), was_valid);
                    }
                }
                Step::Erase { to_slc } => {
                    let mode = if to_slc { CellMode::Slc } else { CellMode::Mlc };
                    let res = dev.erase(addr, mode);
                    erase_count += 1;
                    prop_assert_eq!(
                        res.pe_cycles,
                        dev.config().initial_pe_cycles + erase_count
                    );
                    prop_assert!(dev.block(addr).is_pristine());
                    prop_assert_eq!(dev.block(addr).mode(), mode);
                }
            }

            // Conservation: free + valid + invalid == total, always.
            let b = dev.block(addr);
            let total = b.total_subpages();
            let sum = b.count_subpages(SubpageState::Free)
                + b.count_subpages(SubpageState::Valid)
                + b.count_subpages(SubpageState::Invalid);
            prop_assert_eq!(total, sum);

            // NOP budget: no page ever exceeds 4 program operations.
            for p in 0..b.page_count() {
                prop_assert!(b.page(p).program_ops() <= 4);
            }

            // Disturb event counters are monotone.
            let events = dev.counters().in_page_disturb_events
                + dev.counters().neighbour_disturb_events;
            prop_assert!(events >= last_disturb_events);
            last_disturb_events = events;

            // Wear only advances through erases.
            prop_assert_eq!(dev.wear().pe_cycles(idx),
                dev.config().initial_pe_cycles + erase_count);
        }
    }

    /// Effective RBER never decreases as a page accumulates partial programs,
    /// and is always at least the baseline for the block's wear.
    #[test]
    fn rber_monotone_under_partial_programming(order in Just([0u8,1,2,3]).prop_shuffle()) {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let addr = BlockAddr::new(0, 0, 0, 0, 0);
        dev.set_block_mode(addr, CellMode::Slc);
        let page = addr.page(0);

        let first = order[0];
        dev.program(Spa::new(page, first), 1).unwrap();
        let mut last = dev.effective_rber(Spa::new(page, first));
        let baseline = last;

        for &s in &order[1..] {
            dev.program(Spa::new(page, s), 1).unwrap();
            let now = dev.effective_rber(Spa::new(page, first));
            prop_assert!(now >= last, "RBER decreased: {now} < {last}");
            last = now;
        }
        prop_assert!(last > baseline, "3 disturbs must raise RBER");
    }
}

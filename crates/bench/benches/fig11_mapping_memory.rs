//! `cargo bench -p ipu-bench --bench fig11_mapping_memory`
//!
//! Regenerates the paper's Figure 11 (normalized mapping table size) from the cached evaluation matrix
//! (see crate docs for the IPU_BENCH_* environment knobs).

fn main() {
    let cfg = ipu_bench::bench_config();
    let matrix = ipu_bench::main_matrix_cached(&cfg);
    println!("{}", ipu_core::report::render_fig11(&matrix));
}

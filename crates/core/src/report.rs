//! Plain-text report rendering: aligned tables matching the paper's figures.

use ipu_ftl::SchemeKind;

use crate::experiment::{BerCurvePoint, MatrixResult, PeSweepResult, TraceCalibrationRow};
use crate::profile::PhaseWall;
use crate::qd_sweep::QdSweepResult;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numerics (first column left).
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cell, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", cell, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn ms(x: f64) -> String {
    format!("{x:.4}")
}

fn sci(x: f64) -> String {
    format!("{x:.3e}")
}

/// Table 1: update-size distribution, measured vs paper.
pub fn render_table1(rows: &[TraceCalibrationRow]) -> String {
    let mut t = TextTable::new(&[
        "Trace",
        "<=4K",
        "(4K,8K]",
        ">8K",
        "paper<=4K",
        "paper(4K,8K]",
        "paper>8K",
    ]);
    for r in rows {
        t.row(vec![
            r.trace.clone(),
            pct(r.measured.update_sizes.up_to_4k),
            pct(r.measured.update_sizes.up_to_8k),
            pct(r.measured.update_sizes.over_8k),
            pct(r.paper_table1[0]),
            pct(r.paper_table1[1]),
            pct(r.paper_table1[2]),
        ]);
    }
    format!(
        "Table 1 — size distribution of updated requests\n{}",
        t.render()
    )
}

/// Table 3: trace specifications, measured vs paper.
pub fn render_table3(rows: &[TraceCalibrationRow]) -> String {
    let mut t = TextTable::new(&[
        "Trace",
        "#Req",
        "WriteR",
        "WriteSZ(KB)",
        "HotWrite",
        "paperWR",
        "paperSZ",
        "paperHot",
    ]);
    for r in rows {
        let (_, wr, sz, hot) = r.paper_table3;
        t.row(vec![
            r.trace.clone(),
            r.measured.requests.to_string(),
            pct(r.measured.write_ratio),
            format!("{:.1}", r.measured.avg_write_size / 1024.0),
            pct(r.measured.hot_write_ratio),
            pct(wr),
            format!("{sz:.1}"),
            pct(hot),
        ]);
    }
    format!(
        "Table 3 — specifications of the selected traces\n{}",
        t.render()
    )
}

/// Figure 2: RBER vs P/E curves.
pub fn render_fig2(curve: &[BerCurvePoint]) -> String {
    let mut t = TextTable::new(&["P/E", "conventional", "partial"]);
    for p in curve {
        t.row(vec![
            p.pe_cycles.to_string(),
            sci(p.conventional),
            sci(p.partial),
        ]);
    }
    format!(
        "Figure 2 — bit error rate of conventional vs partial programming\n{}",
        t.render()
    )
}

/// Figure 5: mean response times per trace × scheme (read / write / overall).
pub fn render_fig5(m: &MatrixResult) -> String {
    let mut t = TextTable::new(&["Trace", "Scheme", "read(ms)", "write(ms)", "overall(ms)"]);
    for (ti, trace) in m.traces.iter().enumerate() {
        for (si, scheme) in m.schemes.iter().enumerate() {
            let r = m.report(ti, si);
            t.row(vec![
                trace.clone(),
                scheme.label().to_string(),
                ms(r.read_latency.mean_ms()),
                ms(r.write_latency.mean_ms()),
                ms(r.overall_latency.mean_ms()),
            ]);
        }
    }
    let mut out = format!("Figure 5 — I/O response time distribution\n{}", t.render());
    out.push('\n');
    out.push_str(&crate::charts::chart_matrix(
        m,
        "overall mean response time",
        "ms",
        |r| r.overall_latency.mean_ms(),
    ));
    if let (Some(_), Some(_), Some(_)) = (
        m.scheme_index(SchemeKind::Baseline),
        m.scheme_index(SchemeKind::Mga),
        m.scheme_index(SchemeKind::Ipu),
    ) {
        let overall = |r: &ipu_sim::SimReport| r.overall_latency.mean_ns();
        let writes = |r: &ipu_sim::SimReport| r.write_latency.mean_ns();
        let reads = |r: &ipu_sim::SimReport| r.read_latency.mean_ns();
        out.push_str(&format!(
            "summary: overall IPU/Baseline={:.3} MGA/Baseline={:.3} | write IPU/Baseline={:.3} \
             IPU/MGA={:.3} | read IPU/MGA={:.3}\n",
            m.mean_ratio(SchemeKind::Ipu, SchemeKind::Baseline, overall),
            m.mean_ratio(SchemeKind::Mga, SchemeKind::Baseline, overall),
            m.mean_ratio(SchemeKind::Ipu, SchemeKind::Baseline, writes),
            m.mean_ratio(SchemeKind::Ipu, SchemeKind::Mga, writes),
            m.mean_ratio(SchemeKind::Ipu, SchemeKind::Mga, reads),
        ));
    }
    out
}

/// Figure 6: completed writes split between SLC-mode and MLC regions.
pub fn render_fig6(m: &MatrixResult) -> String {
    let mut t = TextTable::new(&[
        "Trace",
        "Scheme",
        "SLC subpages",
        "MLC subpages",
        "MLC share",
    ]);
    for (ti, trace) in m.traces.iter().enumerate() {
        for (si, scheme) in m.schemes.iter().enumerate() {
            let r = m.report(ti, si);
            // Host writes completed in each region; the hybrid bypass sends
            // writes to MLC when the cache is under GC pressure, so this is
            // a direct measure of how much write traffic the cache absorbs.
            let slc = r.ftl.host_subpages_to_slc;
            let mlc = r.ftl.host_subpages_to_mlc;
            t.row(vec![
                trace.clone(),
                scheme.label().to_string(),
                slc.to_string(),
                mlc.to_string(),
                pct(mlc as f64 / (slc + mlc).max(1) as f64),
            ]);
        }
    }
    format!(
        "Figure 6 — completed writes distribution in SLC/MLC blocks\n{}",
        t.render()
    )
}

/// Figure 7: IPU's write distribution across the three-level blocks.
pub fn render_fig7(m: &MatrixResult) -> String {
    let Some(si) = m.scheme_index(SchemeKind::Ipu) else {
        return "Figure 7 requires the IPU scheme in the matrix\n".into();
    };
    let mut t = TextTable::new(&["Trace", "HighDensity", "Work", "Monitor", "Hot"]);
    for (ti, trace) in m.traces.iter().enumerate() {
        let d = m.report(ti, si).ftl.level_distribution();
        t.row(vec![
            trace.clone(),
            pct(d[0]),
            pct(d[1]),
            pct(d[2]),
            pct(d[3]),
        ]);
    }
    format!(
        "Figure 7 — occurred writes distribution in three-level blocks (IPU)\n{}",
        t.render()
    )
}

/// Figure 8: average read error rate.
pub fn render_fig8(m: &MatrixResult) -> String {
    let mut t = TextTable::new(&["Trace", "Scheme", "read error rate"]);
    for (ti, trace) in m.traces.iter().enumerate() {
        for (si, scheme) in m.schemes.iter().enumerate() {
            t.row(vec![
                trace.clone(),
                scheme.label().to_string(),
                sci(m.report(ti, si).read_error_rate()),
            ]);
        }
    }
    let mut out = format!("Figure 8 — average read error rate\n{}", t.render());
    out.push('\n');
    out.push_str(&crate::charts::chart_matrix(
        m,
        "average read error rate",
        "rber",
        |r| r.read_error_rate(),
    ));
    if m.scheme_index(SchemeKind::Baseline).is_some()
        && m.scheme_index(SchemeKind::Mga).is_some()
        && m.scheme_index(SchemeKind::Ipu).is_some()
    {
        let err = |r: &ipu_sim::SimReport| r.read_error_rate();
        out.push_str(&format!(
            "summary: MGA/Baseline={:.3} IPU/Baseline={:.3} IPU/MGA={:.3}\n",
            m.mean_ratio(SchemeKind::Mga, SchemeKind::Baseline, err),
            m.mean_ratio(SchemeKind::Ipu, SchemeKind::Baseline, err),
            m.mean_ratio(SchemeKind::Ipu, SchemeKind::Mga, err),
        ));
    }
    out
}

/// Figure 9: page utilization of GC'd blocks in the SLC cache.
pub fn render_fig9(m: &MatrixResult) -> String {
    let mut t = TextTable::new(&["Trace", "Scheme", "page utilization"]);
    for (ti, trace) in m.traces.iter().enumerate() {
        for (si, scheme) in m.schemes.iter().enumerate() {
            t.row(vec![
                trace.clone(),
                scheme.label().to_string(),
                pct(m.report(ti, si).gc_page_utilization()),
            ]);
        }
    }
    format!(
        "Figure 9 — page utilization ratio of GC blocks in the SLC-mode cache\n{}",
        t.render()
    )
}

/// Figure 10: erase counts in SLC-mode and MLC blocks.
pub fn render_fig10(m: &MatrixResult) -> String {
    let mut t = TextTable::new(&["Trace", "Scheme", "SLC erases", "MLC erases"]);
    for (ti, trace) in m.traces.iter().enumerate() {
        for (si, scheme) in m.schemes.iter().enumerate() {
            let r = m.report(ti, si);
            t.row(vec![
                trace.clone(),
                scheme.label().to_string(),
                r.wear.slc_erases.to_string(),
                r.wear.mlc_erases.to_string(),
            ]);
        }
    }
    format!(
        "Figure 10 — erase number occurred in SLC and MLC blocks\n{}",
        t.render()
    )
}

/// Figure 11: normalized mapping-table size.
pub fn render_fig11(m: &MatrixResult) -> String {
    let mut t = TextTable::new(&["Trace", "Scheme", "normalized size", "bytes"]);
    for (ti, trace) in m.traces.iter().enumerate() {
        let norm = m.normalized_mapping(ti);
        for (si, scheme) in m.schemes.iter().enumerate() {
            t.row(vec![
                trace.clone(),
                scheme.label().to_string(),
                format!("{:.4}", norm[si]),
                m.report(ti, si).mapping.total().to_string(),
            ]);
        }
    }
    format!("Figure 11 — normalized mapping table size\n{}", t.render())
}

/// Reliability section (extension): per-request completion status under the
/// configured fault profile, plus the recovery-path counters — read retries,
/// recovered reads, retired blocks and accounted data loss.
pub fn render_reliability(m: &MatrixResult) -> String {
    let mut t = TextTable::new(&[
        "Trace",
        "Scheme",
        "success",
        "recovered",
        "failed",
        "avail",
        "retries",
        "retired",
        "uncorr",
        "data loss",
    ]);
    for (ti, trace) in m.traces.iter().enumerate() {
        for (si, scheme) in m.schemes.iter().enumerate() {
            let r = m.report(ti, si);
            t.row(vec![
                trace.clone(),
                scheme.label().to_string(),
                r.reliability.success.to_string(),
                r.reliability.recovered.to_string(),
                r.reliability.failed.to_string(),
                format!("{:.6}", r.reliability.availability()),
                r.ftl.read_retries.to_string(),
                r.ftl.retired_blocks.to_string(),
                r.ftl.host_uncorrectable_reads.to_string(),
                r.ftl.data_loss_events.to_string(),
            ]);
        }
    }
    let mut out = format!(
        "Reliability — request completion and recovery under fault injection\n{}",
        t.render()
    );
    let total_retry_ns: u64 = (0..m.traces.len())
        .flat_map(|ti| (0..m.schemes.len()).map(move |si| (ti, si)))
        .map(|(ti, si)| m.report(ti, si).ftl.retry_latency_ns)
        .sum();
    out.push('\n');
    out.push_str(&format!(
        "total retry-ladder latency: {:.3} ms across all runs\n",
        total_retry_ns as f64 / 1e6
    ));
    out
}

/// Figures 13/14: the P/E sweep, one row per (P/E, scheme) with latency and
/// error rate averaged (geometric mean over traces handled by mean_ratio; here
/// we print arithmetic means across traces, as the paper's bars do).
pub fn render_pe_sweep(s: &PeSweepResult) -> String {
    let mut t = TextTable::new(&["P/E", "Scheme", "overall(ms)", "read err rate"]);
    for (pi, m) in s.matrices.iter().enumerate() {
        for (si, scheme) in m.schemes.iter().enumerate() {
            let n = m.traces.len() as f64;
            let lat: f64 = m
                .reports
                .iter()
                .map(|row| row[si].overall_latency.mean_ms())
                .sum::<f64>()
                / n;
            let err: f64 = m
                .reports
                .iter()
                .map(|row| row[si].read_error_rate())
                .sum::<f64>()
                / n;
            t.row(vec![
                s.pe_points[pi].to_string(),
                scheme.label().to_string(),
                ms(lat),
                sci(err),
            ]);
        }
    }
    format!(
        "Figures 13 & 14 — I/O latency and bit error rate under varied P/E cycles\n{}",
        t.render()
    )
}

/// Queue-depth sweep: per-tenant QoS of the closed-loop host interface.
pub fn render_qd_sweep(s: &QdSweepResult) -> String {
    let mut t = TextTable::new(&[
        "QD",
        "Scheme",
        "Tenant",
        "svc mean(ms)",
        "svc p99(ms)",
        "svc p999(ms)",
        "stall(ms/req)",
        "occ mean",
        "thr(req/s)",
        "fairness",
    ]);
    for (qi, row) in s.reports.iter().enumerate() {
        for (si, cell) in row.iter().enumerate() {
            for tenant in &cell.host.tenants {
                t.row(vec![
                    s.qd_points[qi].to_string(),
                    s.schemes[si].label().to_string(),
                    tenant.name.clone(),
                    ms(tenant.service_latency.mean_ms()),
                    ms(tenant.service_latency.percentile_ns(99.0) as f64 / 1e6),
                    ms(tenant.service_latency.percentile_ns(99.9) as f64 / 1e6),
                    ms(tenant.mean_stall_ns() / 1e6),
                    format!("{:.2}", tenant.occupancy.mean()),
                    format!("{:.0}", tenant.throughput_rps()),
                    format!("{:.3}", cell.host.fairness),
                ]);
            }
        }
    }
    format!(
        "Queue-depth sweep — closed-loop host interface on `{}` \
         ({} tenants, {} arbitration, split {})\n{}",
        s.trace,
        s.host.tenants.len(),
        s.host.arbitration.label(),
        s.host.split,
        t.render()
    )
}

/// The per-phase wall-time breakdown measured by `ipu-obs` spans. `total`
/// is the wall time of everything (instrumented or not); the residual row
/// shows time outside any span (allocation, aggregation, scheduling model).
pub fn render_phase_breakdown(phases: &[PhaseWall], total_seconds: f64) -> String {
    let mut t = TextTable::new(&["Phase", "spans", "wall(s)", "share"]);
    let mut covered = 0.0;
    for p in phases {
        covered += p.wall_seconds;
        t.row(vec![
            p.phase.clone(),
            p.count.to_string(),
            format!("{:.3}", p.wall_seconds),
            pct(p.share),
        ]);
    }
    let residual = (total_seconds - covered).max(0.0);
    t.row(vec![
        "(uninstrumented)".to_string(),
        "—".to_string(),
        format!("{residual:.3}"),
        pct(if total_seconds > 0.0 {
            residual / total_seconds
        } else {
            0.0
        }),
    ]);
    format!(
        "Phase breakdown — exclusive wall time per instrumented phase\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_aligns_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "12345".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows are equally wide.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_rejected() {
        TextTable::new(&["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn fig2_render_contains_calibration() {
        let curve = crate::experiment::run_ber_curve(&[4000]);
        let out = render_fig2(&curve);
        assert!(out.contains("4000"));
        assert!(out.contains("2.800e-4"));
    }

    #[test]
    fn pe_sweep_renderer_lists_every_point_and_scheme() {
        let mut cfg = crate::ExperimentConfig::scaled(0.001);
        cfg.traces = vec![ipu_trace::PaperTrace::Lun2];
        cfg.threads = 1;
        let sweep = crate::experiment::run_pe_sweep(&cfg, &[1000, 8000]);
        let text = render_pe_sweep(&sweep);
        assert!(text.contains("1000") && text.contains("8000"));
        for scheme in SchemeKind::all() {
            assert!(text.contains(scheme.label()), "{} missing", scheme.label());
        }
        // 2 points × 3 schemes = 6 data rows (+ header + separator + title).
        assert_eq!(text.lines().count(), 9);
    }

    #[test]
    fn fig5_report_includes_bar_chart() {
        let mut cfg = crate::ExperimentConfig::scaled(0.001);
        cfg.traces = vec![ipu_trace::PaperTrace::Lun2];
        cfg.threads = 1;
        let m = crate::experiment::run_main_matrix(&cfg);
        let text = render_fig5(&m);
        assert!(text.contains("█"), "bar chart missing from fig5 output");
        assert!(text.contains("summary:"));
    }

    #[test]
    fn phase_breakdown_lists_phases_and_residual() {
        let phases = vec![
            PhaseWall {
                phase: "ftl_write".into(),
                count: 1000,
                wall_seconds: 0.6,
                share: 0.6,
            },
            PhaseWall {
                phase: "gc".into(),
                count: 12,
                wall_seconds: 0.25,
                share: 0.25,
            },
        ];
        let text = render_phase_breakdown(&phases, 1.0);
        assert!(text.contains("Phase breakdown"));
        assert!(text.contains("ftl_write"));
        assert!(text.contains("gc"));
        // Residual row accounts for the uninstrumented 0.15s.
        assert!(text.contains("(uninstrumented)"));
        assert!(text.contains("15.0%"));
        // Degenerate zero-length profile renders without dividing by zero.
        let empty = render_phase_breakdown(&[], 0.0);
        assert!(empty.contains("(uninstrumented)"));
    }

    #[test]
    fn percent_and_sci_formats() {
        assert_eq!(pct(0.505), "50.5%");
        assert_eq!(sci(2.8e-4), "2.800e-4");
        assert_eq!(ms(0.12345), "0.1235"); // banker's-free round-half-up
    }
}

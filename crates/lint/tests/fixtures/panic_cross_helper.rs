//! Fixture: cross-file proof, helper side — a free function in another crate
//! whose `.unwrap()` only matters once a host-reachable caller is in view.

pub fn resolve_mapping(lpn: u64) -> u64 {
    lookup(lpn).unwrap()
}

fn lookup(lpn: u64) -> Option<u64> {
    Some(lpn)
}

//! Driving a fleet: route tenants, replay every device in parallel, merge,
//! then overlay the fault-tolerance pass.
//!
//! Each device is an independent closed-loop world — its own FTL, chip
//! schedule and host queues — so devices simulate concurrently with
//! [`parallel_map`] and the per-device [`ClosedLoopReport`]s merge into one
//! [`FleetReport`]. Every device replays under its *own* fault seed
//! (`fleet_seed ⊕ FNV-1a(device_id)` — see
//! [`crate::fault::derive_device_seed`]), so a shared fault profile never
//! faults the fleet in lockstep. When the [`FleetFaultPlan`] is non-inert
//! or replication is active, the tolerance pass replays the logical request
//! stream against the plan's availability windows and the router's health
//! machine; with the inert plan and no replication the pass is skipped
//! entirely and the run is bit-identical to the pre-fault fleet.
//!
//! A fleet run is a pure function of `(ExperimentConfig, scheme, trace
//! spec, FleetSpec)` — fault plan, replication and health policy included —
//! which is exactly the key [`run_fleet_cached`] stores it under.

use crate::fault::FleetFaultPlan;
use crate::health::HealthPolicy;
use crate::report::{FleetReport, MergeContext};
use crate::router::{route_replicated, synthesize_tenants, ReplicationPolicy, ShardPolicy};
use crate::tolerance::{run_tolerance, DeviceProfile, LogicalRequest};
use ipu_core::{parallel_map, ExperimentConfig, ReplayCache, TraceSet};
use ipu_ftl::SchemeKind;
use ipu_host::{ArbitrationPolicy, HostConfig, TenantSpec};
use ipu_obs::{event, span, Phase};
use ipu_sim::{replay_closed_loop_detailed, ClosedLoopReport, ReplayConfig};
use ipu_trace::{IoRequest, OpKind, PaperTrace, SyntheticTraceSpec};
use serde::Serialize;

/// Shape of one fleet: how many devices serve how many tenants, how they
/// are routed — and what goes wrong ([`FleetFaultPlan`]) plus what the
/// router does about it ([`ReplicationPolicy`], [`HealthPolicy`]).
#[derive(Debug, Clone)]
pub struct FleetSpec {
    pub devices: usize,
    pub tenants: usize,
    pub policy: ShardPolicy,
    /// Per-tenant queue depth on each device.
    pub queue_depth: usize,
    pub arbitration: ArbitrationPolicy,
    /// Where retries, hedges and replica writes land.
    pub replication: ReplicationPolicy,
    /// Per-device disruptions over simulated time (inert by default).
    pub fault_plan: FleetFaultPlan,
    /// Health machine + retry/hedge tuning for the tolerance pass.
    pub health: HealthPolicy,
}

impl FleetSpec {
    /// Round-robin arbitration at queue depth 1 per tenant, no faults, no
    /// replication. Depth 1 keeps a tenant's service latency free of its
    /// own self-queueing, so fleet p99 measures the *sharing* cost —
    /// deeper queues are an explicit choice via
    /// [`FleetSpec::with_queue_depth`].
    pub fn new(devices: usize, tenants: usize, policy: ShardPolicy) -> Self {
        assert!(devices >= 1, "need at least one device");
        assert!(tenants >= 1, "need at least one tenant");
        FleetSpec {
            devices,
            tenants,
            policy,
            queue_depth: 1,
            arbitration: ArbitrationPolicy::RoundRobin,
            replication: ReplicationPolicy::None,
            fault_plan: FleetFaultPlan::none(),
            health: HealthPolicy::default(),
        }
    }

    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth >= 1, "queue depth must be ≥ 1");
        self.queue_depth = queue_depth;
        self
    }

    pub fn with_arbitration(mut self, arbitration: ArbitrationPolicy) -> Self {
        self.arbitration = arbitration;
        self
    }

    pub fn with_replication(mut self, replication: ReplicationPolicy) -> Self {
        self.replication = replication;
        self
    }

    pub fn with_fault_plan(mut self, plan: FleetFaultPlan) -> Self {
        plan.validate().expect("fault plan");
        self.fault_plan = plan;
        self
    }

    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        health.validate().expect("health policy");
        self.health = health;
        self
    }

    /// Whether this spec needs the tolerance pass at all. With the inert
    /// plan and no replication the fleet run is byte-identical to one that
    /// predates the fault machinery.
    pub fn tolerance_active(&self) -> bool {
        !self.fault_plan.is_inert() || self.replication != ReplicationPolicy::None
    }
}

/// [`run_fleet`] returning the per-device closed-loop reports as well
/// (indexed by device id; `None` where no stream was routed).
pub fn run_fleet_detailed(
    cfg: &ExperimentConfig,
    scheme: SchemeKind,
    trace_name: &str,
    base: &[IoRequest],
    spec: &FleetSpec,
) -> (FleetReport, Vec<Option<ClosedLoopReport>>) {
    let assignments = {
        let _span = span(Phase::HostArbitration);
        route_replicated(
            spec.policy,
            synthesize_tenants(base, spec.tenants),
            spec.devices,
            spec.replication,
        )
    };
    let tolerance = spec.tolerance_active();
    // Keep what the tolerance pass needs before the assignments move into
    // the worker closures: per-device primary stream count and per-request
    // op kinds (outcomes carry (tenant, seq), not the op).
    let primary_streams: Vec<usize> = assignments.iter().map(|a| a.workloads.len()).collect();
    let primary_ops: Vec<Vec<Vec<OpKind>>> = if tolerance {
        assignments
            .iter()
            .map(|a| {
                a.workloads
                    .iter()
                    .map(|w| w.iter().map(|r| r.op).collect())
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    let replay_cfg = cfg.replay_config(scheme);
    let queue_depth = spec.queue_depth;
    let arbitration = spec.arbitration;
    let plan = &spec.fault_plan;
    let indexed: Vec<(usize, crate::router::DeviceAssignment)> =
        assignments.into_iter().enumerate().collect();
    let mut per_device_detailed = parallel_map(
        indexed,
        cfg.effective_threads(),
        |(device, assignment)| -> Option<(ClosedLoopReport, Vec<ipu_host::RequestOutcome>)> {
            if assignment.tenant_ids.is_empty() && assignment.mirror_ids.is_empty() {
                return None;
            }
            let tenants: Vec<TenantSpec> = assignment
                .tenant_ids
                .iter()
                .map(|t| TenantSpec::new(format!("t{t}")))
                .chain(
                    assignment
                        .mirror_ids
                        .iter()
                        .map(|t| TenantSpec::new(format!("m{t}"))),
                )
                .collect();
            let host = HostConfig::new(queue_depth, arbitration, tenants);
            let mut device_cfg = replay_cfg.clone();
            device_cfg.device = plan.device_config(&replay_cfg.device, device);
            let workloads: Vec<Vec<IoRequest>> = assignment
                .workloads
                .into_iter()
                .chain(assignment.mirror_workloads)
                .collect();
            Some(replay_closed_loop_detailed(
                &device_cfg,
                &host,
                &workloads,
                trace_name,
            ))
        },
    );

    let per_device: Vec<Option<ClosedLoopReport>> = per_device_detailed
        .iter()
        .map(|slot| slot.as_ref().map(|(r, _)| r.clone()))
        .collect();
    let ctx = MergeContext {
        replication: spec.replication.label().to_string(),
        fault_plan: plan.label(),
        primary_streams: (spec.replication != ReplicationPolicy::None)
            .then(|| primary_streams.clone()),
    };
    let mut report = {
        let _span = span(Phase::Report);
        FleetReport::merge_with(
            scheme.label(),
            trace_name,
            spec.policy,
            spec.tenants,
            spec.queue_depth,
            &per_device,
            &ctx,
        )
    };

    if tolerance {
        let _span = span(Phase::HostArbitration);
        let mut requests: Vec<LogicalRequest> = Vec::with_capacity(base.len());
        let mut profiles = vec![DeviceProfile::default(); spec.devices];
        for (device, slot) in per_device_detailed.iter_mut().enumerate() {
            let Some((rep, outcomes)) = slot else {
                continue;
            };
            profiles[device].mean_service_ns = rep.host.overall_service_latency().mean_ns() as u64;
            let primary_n = primary_streams[device];
            for o in outcomes.iter() {
                if o.tenant >= primary_n {
                    continue; // mirror write stream: not a logical request
                }
                requests.push(LogicalRequest {
                    device,
                    arrival_ns: o.arrival_ns,
                    admit_ns: o.admit_ns,
                    dispatch_ns: o.dispatch_ns,
                    completion_ns: o.completion_ns,
                    is_read: primary_ops[device][o.tenant][o.seq] == OpKind::Read,
                });
            }
        }
        let mut outcome = run_tolerance(
            plan,
            spec.replication,
            &spec.health,
            spec.devices,
            &mut requests,
            &profiles,
        );
        outcome.reliability.replica_write_ops =
            report.per_device.iter().map(|d| d.mirror_ops).sum();
        event(
            Phase::HostArbitration,
            "fleet-retries",
            outcome.reliability.retries,
        );
        event(
            Phase::HostArbitration,
            "fleet-hedges",
            outcome.reliability.hedges_fired,
        );
        event(
            Phase::HostArbitration,
            "fleet-timeouts",
            outcome.reliability.timeouts,
        );
        report.apply_tolerance(&outcome);
    }
    (report, per_device)
}

/// Simulates the whole fleet, merges the per-device outcomes and applies
/// the tolerance pass when the spec's fault plan or replication calls for
/// it.
pub fn run_fleet(
    cfg: &ExperimentConfig,
    scheme: SchemeKind,
    trace_name: &str,
    base: &[IoRequest],
    spec: &FleetSpec,
) -> FleetReport {
    run_fleet_detailed(cfg, scheme, trace_name, base, spec).0
}

/// Everything a fleet run's outcome depends on, for content addressing.
/// Policy/arbitration/replication travel as labels (stable spellings,
/// stable key); the fault plan and health policy serialize structurally so
/// *any* knob change is a different cache entry.
#[derive(Serialize)]
struct FleetCacheKey {
    replay: ReplayConfig,
    trace: SyntheticTraceSpec,
    devices: usize,
    tenants: usize,
    policy: String,
    queue_depth: usize,
    arbitration: String,
    replication: String,
    fault_plan: FleetFaultPlan,
    health: HealthPolicy,
}

/// [`run_fleet`] through the replay cache: a warm re-run (same config,
/// scheme, trace spec and fleet shape — fault plan included) loads the
/// merged report from disk instead of re-simulating every device.
pub fn run_fleet_cached(
    cfg: &ExperimentConfig,
    scheme: SchemeKind,
    trace: PaperTrace,
    spec: &FleetSpec,
    traces: &TraceSet,
    cache: Option<&ReplayCache>,
) -> FleetReport {
    let trace_name = trace.to_string();
    let Some(cache) = cache else {
        return run_fleet(cfg, scheme, &trace_name, &traces.get(trace), spec);
    };
    let key = FleetCacheKey {
        replay: cfg.replay_config(scheme),
        trace: ipu_core::scaled_spec(cfg, trace),
        devices: spec.devices,
        tenants: spec.tenants,
        policy: spec.policy.label().to_string(),
        queue_depth: spec.queue_depth,
        arbitration: spec.arbitration.label().to_string(),
        replication: spec.replication.label().to_string(),
        fault_plan: spec.fault_plan.clone(),
        health: spec.health.clone(),
    };
    cache.get_or_compute("fleet", &key, || {
        run_fleet(cfg, scheme, &trace_name, &traces.get(trace), spec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_trace::OpKind;

    fn base_workload(n: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| {
                let op = if i % 4 == 3 {
                    OpKind::Read
                } else {
                    OpKind::Write
                };
                IoRequest::new(i * 2_000, op, (i % 64) * 65_536, 4096)
            })
            .collect()
    }

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::scaled(0.002);
        cfg.threads = 2;
        cfg
    }

    #[test]
    fn fleet_ops_sum_to_routed_requests() {
        let cfg = tiny_cfg();
        let base = base_workload(120);
        for policy in ShardPolicy::all() {
            let spec = FleetSpec::new(4, 8, policy).with_queue_depth(4);
            let (report, per_device) =
                run_fleet_detailed(&cfg, SchemeKind::Ipu, "ts0", &base, &spec);
            assert_eq!(report.total_ops, 120, "{policy:?} lost requests");
            assert_eq!(
                report.per_device.iter().map(|d| d.ops).sum::<u64>(),
                report.total_ops
            );
            assert_eq!(per_device.len(), 4);
            assert_eq!(report.devices, 4);
            assert_eq!(report.tenants, 8);
            // Per-device summaries mirror the detailed reports.
            for (summary, detail) in report.per_device.iter().zip(&per_device) {
                match detail {
                    Some(d) => assert_eq!(summary.ops, d.host.total_completed()),
                    None => assert_eq!(summary.ops, 0),
                }
            }
        }
    }

    #[test]
    fn more_devices_than_tenants_leaves_devices_idle_not_broken() {
        let cfg = tiny_cfg();
        let base = base_workload(30);
        let spec = FleetSpec::new(8, 2, ShardPolicy::Range);
        let (report, per_device) =
            run_fleet_detailed(&cfg, SchemeKind::Baseline, "ts0", &base, &spec);
        assert_eq!(report.total_ops, 30);
        assert!(per_device.iter().filter(|d| d.is_none()).count() >= 6);
        assert_eq!(report.per_device.len(), 8);
    }

    #[test]
    fn cached_fleet_run_round_trips_bit_identical() {
        let mut cfg = tiny_cfg();
        cfg.traces = vec![PaperTrace::Ts0];
        cfg.scale = 0.002;
        let traces = TraceSet::generate(&cfg);
        let spec = FleetSpec::new(3, 5, ShardPolicy::Hash).with_queue_depth(2);
        let dir = std::env::temp_dir().join(format!("ipu-fleet-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ReplayCache::new(&dir);

        let cold = run_fleet_cached(
            &cfg,
            SchemeKind::Ipu,
            PaperTrace::Ts0,
            &spec,
            &traces,
            Some(&cache),
        );
        assert_eq!(cache.stats().misses, 1);
        let warm = run_fleet_cached(
            &cfg,
            SchemeKind::Ipu,
            PaperTrace::Ts0,
            &spec,
            &traces,
            Some(&cache),
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&warm).unwrap()
        );

        // A different fleet shape is a different entry.
        let other = FleetSpec::new(4, 5, ShardPolicy::Hash).with_queue_depth(2);
        let _ = run_fleet_cached(
            &cfg,
            SchemeKind::Ipu,
            PaperTrace::Ts0,
            &other,
            &traces,
            Some(&cache),
        );
        assert_eq!(cache.stats().misses, 2);

        // A different fault plan is a different entry too — the plan is
        // part of the content address.
        let faulted = FleetSpec::new(3, 5, ShardPolicy::Hash)
            .with_queue_depth(2)
            .with_fault_plan(FleetFaultPlan::fail_stop(3, 1, 0.5, 7))
            .with_replication(ReplicationPolicy::MirrorPair);
        let cold_faulted = run_fleet_cached(
            &cfg,
            SchemeKind::Ipu,
            PaperTrace::Ts0,
            &faulted,
            &traces,
            Some(&cache),
        );
        assert_eq!(cache.stats().misses, 3);
        let warm_faulted = run_fleet_cached(
            &cfg,
            SchemeKind::Ipu,
            PaperTrace::Ts0,
            &faulted,
            &traces,
            Some(&cache),
        );
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(
            serde_json::to_string(&cold_faulted).unwrap(),
            serde_json::to_string(&warm_faulted).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_stop_with_mirror_recovers_in_a_real_fleet_run() {
        let cfg = tiny_cfg();
        let base = base_workload(160);
        let plan = FleetFaultPlan::fail_stop(4, 1, 0.4, 11);
        let spec = FleetSpec::new(4, 8, ShardPolicy::Range)
            .with_queue_depth(2)
            .with_fault_plan(plan)
            .with_replication(ReplicationPolicy::MirrorPair);
        let (report, _) = run_fleet_detailed(&cfg, SchemeKind::Ipu, "ts0", &base, &spec);
        let fr = report.fleet_reliability.expect("tolerance pass ran");
        assert_eq!(fr.logical_ops, 160);
        assert_eq!(fr.lost, 0, "mirror pair must recover everything");
        assert!(fr.recovered > 0, "the dead device's tail must fail over");
        assert_eq!(fr.acked, fr.clean + fr.recovered);
        // Mirror writes were really replayed and conserved in the merge.
        assert!(fr.replica_write_ops > 0);
        assert_eq!(
            report
                .per_device
                .iter()
                .map(|d| d.ops - d.mirror_ops)
                .sum::<u64>(),
            report.total_ops
        );
        assert_eq!(report.fault_plan, spec.fault_plan.label());
        assert_eq!(report.replication, "mirror-pair");
        assert_eq!(report.health.len(), 4);
        // Availability reflects the ledger: nothing lost → full marks from
        // the fleet's point of view.
        assert_eq!(report.reliability.lost, 0);
    }
}

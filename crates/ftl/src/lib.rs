//! # ipu-ftl — flash translation layer with an SLC-mode cache
//!
//! The logical half of the reproduction: address mapping, free-block
//! management, the three-level SLC-mode cache, GC policies (greedy and the
//! paper's ISR policy with Equations 1–2), and the three schemes under
//! evaluation:
//!
//! * [`schemes::baseline::BaselineFtl`] — page-level mapping, no partial
//!   programming;
//! * [`schemes::mga::MgaFtl`] — subpage packing with partial programming
//!   (the state-of-the-art comparison point);
//! * [`schemes::ipu::IpuFtl`] — the paper's intra-page update scheme.
//!
//! Schemes execute against an [`ipu_flash::FlashDevice`] and emit
//! [`ops::OpBatch`]es of timed operations that `ipu-sim` schedules onto chips.

#![forbid(unsafe_code)]

pub mod block_mgr;
pub mod cache_meta;
pub mod config;
pub mod error;
pub mod gc;
pub mod mapping;
pub mod memory;
pub mod ops;
pub mod schemes;
pub mod stats;
pub mod types;
pub mod victim_index;
pub mod wear_leveling;

pub use block_mgr::BlockManager;
pub use cache_meta::{BlockMeta, CacheMeta};
pub use config::{FtlConfig, ScrubConfig};
pub use error::FtlError;
pub use gc::{
    cold_valid_weight_fast, greedy_score, isr_score, isr_score_fast, isr_upper_bound,
    select_greedy, select_isr, GcGranularity,
};
pub use mapping::{ChunkSummary, FxBuildHasher, FxHasher, MappingTable, OwnerTable};
pub use memory::MappingMemory;
pub use ops::{FlashOpKind, OpBatch, OpRecord, ReqStatus, RoundOrigin};
pub use schemes::{common::FtlCore, FtlScheme, SchemeKind};
pub use stats::FtlStats;
pub use types::{BlockLevel, Lcn, Lsn};
pub use victim_index::VictimIndex;
pub use wear_leveling::{WearLeveler, WearLevelingConfig};

//! Reliability models: raw bit error rate, program disturb and ECC latency.
//!
//! The three submodules compose into the read-path cost model used throughout
//! the reproduction:
//!
//! 1. [`ber`] gives the *baseline* raw bit error rate of a subpage from its
//!    block's P/E cycle count and cell mode (paper Figure 2, conventional
//!    programming curve);
//! 2. [`disturb`] amplifies that baseline by the in-page and neighbour program
//!    disturb the subpage accumulated from partial programming (the gap between
//!    Figure 2's two curves);
//! 3. [`ecc`] converts the resulting expected raw bit error count into a BCH
//!    decode latency between the paper's `ECC min time` and `ECC max time`.

pub mod ber;
pub mod disturb;
pub mod ecc;
pub mod sampling;

//! Replay a real MSR-Cambridge-format trace through a chosen scheme.
//!
//! If you have the actual SNIA traces (`ts0`, `wdev0`, `usr0`, ...), this is
//! the drop-in path the paper used:
//!
//! ```text
//! cargo run --release --example msr_replay -- /path/to/trace.csv [baseline|mga|ipu]
//! ```

use std::fs::File;
use std::io::BufReader;

use ipu_core::ftl::SchemeKind;
use ipu_core::sim::{replay_with_progress, ReplayConfig};
use ipu_core::trace::parse_msr_reader;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: msr_replay <trace.csv> [baseline|mga|ipu]");
        std::process::exit(2);
    };
    let scheme = match args.next().as_deref() {
        None | Some("ipu") => SchemeKind::Ipu,
        Some("mga") => SchemeKind::Mga,
        Some("baseline") => SchemeKind::Baseline,
        Some(other) => {
            eprintln!("unknown scheme `{other}` (expected baseline|mga|ipu)");
            std::process::exit(2);
        }
    };

    eprintln!("parsing {path} ...");
    let file = File::open(&path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    let requests = parse_msr_reader(BufReader::new(file))
        .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    eprintln!(
        "replaying {} requests under {scheme} on the paper-scale device ...",
        requests.len()
    );

    let cfg = ReplayConfig::paper_scale(scheme);
    let report = replay_with_progress(&cfg, &requests, &path, |done, total| {
        if total > 0 {
            eprint!(
                "\r  {done}/{total} requests ({:.0}%)",
                done as f64 / total as f64 * 100.0
            );
        }
    });
    eprintln!();

    println!("scheme            : {}", report.scheme);
    println!("requests          : {}", report.requests);
    println!(
        "read latency      : {:.4} ms mean",
        report.read_latency.mean_ms()
    );
    println!(
        "write latency     : {:.4} ms mean",
        report.write_latency.mean_ms()
    );
    println!(
        "overall latency   : {:.4} ms mean",
        report.overall_latency.mean_ms()
    );
    println!("read error rate   : {:.3e}", report.read_error_rate());
    println!(
        "GC page util      : {:.1}%",
        report.gc_page_utilization() * 100.0
    );
    println!(
        "SLC / MLC erases  : {} / {}",
        report.wear.slc_erases, report.wear.mlc_erases
    );
    println!(
        "host writes SLC/MLC: {} / {} subpages",
        report.ftl.host_subpages_to_slc, report.ftl.host_subpages_to_mlc
    );
    println!("mapping table     : {} bytes", report.mapping.total());
}

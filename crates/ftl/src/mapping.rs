//! Address translation: the forward map (logical subpage → physical subpage)
//! and the reverse owner table (physical subpage → logical subpage).
//!
//! All three schemes share this machinery; what differs is the *analytic
//! memory accounting* of Figure 11 (see [`crate::memory`]), which models what
//! each scheme would actually have to keep in controller DRAM.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use ipu_flash::{FlashGeometry, Ppa, Spa};
use serde::{Deserialize, Serialize};

use crate::types::{Lcn, Lsn};

/// Multiply-xor hasher for the dense integer keys both tables use (bucket and
/// block indices). The default SipHash is DoS-resistant, which simulation
/// state does not need; this hasher is a single rotate/xor/multiply per key
/// and measurably shortens every map probe on the write hot path. Iteration
/// order is only consumed by order-independent aggregates (and becomes
/// deterministic, since there is no per-process random seed).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth-style odd multiplicative constant (same one rustc's FxHash uses).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Forward map: logical subpage number → physical subpage address.
///
/// ```
/// use ipu_ftl::MappingTable;
/// use ipu_flash::{Ppa, Spa};
///
/// let mut map = MappingTable::new();
/// // LSN 42 belongs at in-chunk offset 2 (42 mod 4); storing it at
/// // subpage 1 makes its chunk "scattered" — it would need second-level
/// // mapping under MGA's scheme.
/// let spa = Spa::new(Ppa::new(0, 0, 0, 0, 7, 3), 1);
/// assert!(map.insert(42, spa).is_none());
/// assert_eq!(map.lookup(42), Some(spa));
/// assert_eq!(map.chunk_summary(4).scattered_chunks, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MappingTable {
    /// LSN-space bucket (`lsn / 8`) → the 8 consecutive subpage locations,
    /// occupancy tracked by `mask`. Host requests translate contiguous LSN
    /// runs, so bucketing amortizes the hash probe across a whole chunk
    /// (see [`MappingTable::lookup_span`]) instead of paying one per subpage.
    buckets: HashMap<u64, MapBucket, FxBuildHasher>,
    len: usize,
}

/// Locations of 8 consecutive LSNs; `mask` bit *i* says slot *i* is mapped.
#[derive(Debug, Clone, Copy)]
struct MapBucket {
    mask: u8,
    spas: [Spa; BUCKET_LSNS as usize],
}

/// LSNs per bucket. 8 keeps a bucket at one cache line of `Spa`s and is a
/// multiple of every supported `subpages_per_page`, so a page-aligned chunk
/// never straddles more than one bucket boundary.
const BUCKET_LSNS: u64 = 8;

impl MapBucket {
    fn empty() -> Self {
        MapBucket {
            mask: 0,
            spas: [Spa::new(Ppa::new(0, 0, 0, 0, 0, 0), 0); BUCKET_LSNS as usize],
        }
    }
}

impl MappingTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current physical location of `lsn`, if mapped.
    #[inline]
    pub fn lookup(&self, lsn: Lsn) -> Option<Spa> {
        let slot = (lsn % BUCKET_LSNS) as usize;
        self.buckets
            .get(&(lsn / BUCKET_LSNS))
            .filter(|b| b.mask & (1 << slot) != 0)
            .map(|b| b.spas[slot])
    }

    /// Maps `lsn` to `spa`, returning the previous location if any.
    #[inline]
    pub fn insert(&mut self, lsn: Lsn, spa: Spa) -> Option<Spa> {
        let slot = (lsn % BUCKET_LSNS) as usize;
        let bucket = self
            .buckets
            .entry(lsn / BUCKET_LSNS)
            .or_insert_with(MapBucket::empty);
        let old = (bucket.mask & (1 << slot) != 0).then(|| bucket.spas[slot]);
        bucket.mask |= 1 << slot;
        bucket.spas[slot] = spa;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Unmaps `lsn`, returning its previous location.
    #[inline]
    pub fn remove(&mut self, lsn: Lsn) -> Option<Spa> {
        let slot = (lsn % BUCKET_LSNS) as usize;
        let bucket = self.buckets.get_mut(&(lsn / BUCKET_LSNS))?;
        if bucket.mask & (1 << slot) == 0 {
            return None;
        }
        let old = bucket.spas[slot];
        bucket.mask &= !(1 << slot);
        if bucket.mask == 0 {
            self.buckets.remove(&(lsn / BUCKET_LSNS));
        }
        self.len -= 1;
        Some(old)
    }

    /// Calls `visit(lsn, location)` for every LSN in `[start, end)`, in
    /// ascending order, probing the table once per 8-LSN bucket instead of
    /// once per subpage. This is the batch path the write and read request
    /// handlers use: a request's subpage span is contiguous in LSN space, so
    /// the per-subpage hash probes of a naive loop collapse to one per bucket.
    #[inline]
    pub fn lookup_span(&self, start: Lsn, end: Lsn, mut visit: impl FnMut(Lsn, Option<Spa>)) {
        let mut lsn = start;
        while lsn < end {
            let bucket_idx = lsn / BUCKET_LSNS;
            let bucket_end = ((bucket_idx + 1) * BUCKET_LSNS).min(end);
            if let Some(b) = self.buckets.get(&bucket_idx) {
                for l in lsn..bucket_end {
                    let slot = (l % BUCKET_LSNS) as usize;
                    let loc = (b.mask & (1 << slot) != 0).then(|| b.spas[slot]);
                    visit(l, loc);
                }
            } else {
                for l in lsn..bucket_end {
                    visit(l, None);
                }
            }
            lsn = bucket_end;
        }
    }

    /// Number of mapped logical subpages.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(lsn, spa)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Lsn, Spa)> + '_ {
        self.buckets.iter().flat_map(|(&bi, b)| {
            (0..BUCKET_LSNS)
                .filter(move |slot| b.mask & (1 << slot) != 0)
                .map(move |slot| (bi * BUCKET_LSNS + slot, b.spas[slot as usize]))
        })
    }

    /// Summary used by the Figure 11 memory model: how many distinct logical
    /// chunks (pages) are mapped, and how many of them are *scattered* — i.e.
    /// their live subpages do not all sit identity-aligned in one physical
    /// page, so a page-granular table cannot describe them without a
    /// second-level (subpage) table.
    pub fn chunk_summary(&self, subpages_per_page: u32) -> ChunkSummary {
        let spp = subpages_per_page as u64;
        // lcn → (first physical page seen, all-aligned-so-far)
        let mut chunks: HashMap<Lcn, (Spa, bool), FxBuildHasher> = HashMap::default();
        for (lsn, spa) in self.iter() {
            let lcn = lsn / spp;
            let aligned = spa.subpage as u64 == lsn % spp;
            match chunks.entry(lcn) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((spa, aligned));
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let (first, ok) = *e.get();
                    let same_page = first.ppa == spa.ppa;
                    e.insert((first, ok && aligned && same_page));
                }
            }
        }
        let mapped_chunks = chunks.len() as u64;
        let scattered_chunks = chunks.values().filter(|(_, aligned)| !aligned).count() as u64;
        ChunkSummary {
            mapped_chunks,
            scattered_chunks,
            mapped_subpages: self.len as u64,
        }
    }
}

/// Output of [`MappingTable::chunk_summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkSummary {
    /// Distinct logical chunks with at least one mapped subpage.
    pub mapped_chunks: u64,
    /// Chunks whose subpages are not identity-aligned within one physical page.
    pub scattered_chunks: u64,
    /// Total mapped logical subpages.
    pub mapped_subpages: u64,
}

/// Reverse map: physical subpage → owning logical subpage.
///
/// Required by GC to relocate valid data. Block entries are allocated lazily
/// (a paper-scale device has 33 M physical subpages, most never touched).
#[derive(Debug, Clone)]
pub struct OwnerTable {
    /// block index → owner LSN per (page × subpage) slot; `NONE` if unowned.
    blocks: HashMap<u64, Vec<Lsn>, FxBuildHasher>,
    slots_per_block: usize,
    subpages_per_page: u32,
}

const NONE_OWNER: Lsn = Lsn::MAX;

impl OwnerTable {
    pub fn new(geometry: &FlashGeometry) -> Self {
        OwnerTable {
            blocks: HashMap::default(),
            // Sized for the larger (MLC) page count so mode switches never
            // reallocate.
            slots_per_block: (geometry.pages_per_block_mlc * geometry.subpages_per_page()) as usize,
            subpages_per_page: geometry.subpages_per_page(),
        }
    }

    #[inline]
    fn slot(&self, spa: Spa) -> usize {
        (spa.ppa.page * self.subpages_per_page + spa.subpage as u32) as usize
    }

    /// Records `lsn` as the owner of `spa`.
    pub fn set(&mut self, block_idx: u64, spa: Spa, lsn: Lsn) {
        let slots = self.slots_per_block;
        let v = self
            .blocks
            .entry(block_idx)
            .or_insert_with(|| vec![NONE_OWNER; slots]);
        let slot = (spa.ppa.page * self.subpages_per_page + spa.subpage as u32) as usize;
        v[slot] = lsn;
    }

    /// Clears the owner of `spa` (subpage invalidated).
    pub fn clear(&mut self, block_idx: u64, spa: Spa) {
        let slot = self.slot(spa);
        if let Some(v) = self.blocks.get_mut(&block_idx) {
            v[slot] = NONE_OWNER;
        }
    }

    /// Owner of `spa`, if any.
    pub fn owner(&self, block_idx: u64, spa: Spa) -> Option<Lsn> {
        let slot = self.slot(spa);
        self.blocks
            .get(&block_idx)
            .and_then(|v| v.get(slot))
            .copied()
            .filter(|&l| l != NONE_OWNER)
    }

    /// Drops all owner records of a block (called at erase).
    pub fn clear_block(&mut self, block_idx: u64) {
        self.blocks.remove(&block_idx);
    }

    /// Owners within one page, by subpage offset.
    pub fn page_owners(&self, block_idx: u64, page: u32) -> Vec<Option<Lsn>> {
        (0..self.subpages_per_page)
            .map(|s| {
                self.blocks
                    .get(&block_idx)
                    .and_then(|v| v.get((page * self.subpages_per_page + s) as usize))
                    .copied()
                    .filter(|&l| l != NONE_OWNER)
            })
            .collect()
    }

    /// Number of blocks with allocated owner storage (memory introspection).
    pub fn allocated_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_flash::Ppa;

    fn spa(block: u32, page: u32, sub: u8) -> Spa {
        Spa::new(Ppa::new(0, 0, 0, 0, block, page), sub)
    }

    #[test]
    fn forward_map_round_trips() {
        let mut m = MappingTable::new();
        assert!(m.lookup(7).is_none());
        assert!(m.insert(7, spa(1, 2, 3)).is_none());
        assert_eq!(m.lookup(7), Some(spa(1, 2, 3)));
        assert_eq!(m.insert(7, spa(4, 5, 0)), Some(spa(1, 2, 3)));
        assert_eq!(m.remove(7), Some(spa(4, 5, 0)));
        assert!(m.is_empty());
    }

    #[test]
    fn chunk_summary_detects_scatter() {
        let mut m = MappingTable::new();
        // Chunk 0: lsns 0..4 identity-aligned in page (0,0) → not scattered.
        for s in 0..4u8 {
            m.insert(s as Lsn, spa(0, 0, s));
        }
        // Chunk 1: lsn 4 at misaligned offset → scattered.
        m.insert(4, spa(0, 1, 2));
        // Chunk 2: lsns 8,9 aligned but in different pages → scattered.
        m.insert(8, spa(0, 2, 0));
        m.insert(9, spa(0, 3, 1));
        let s = m.chunk_summary(4);
        assert_eq!(s.mapped_chunks, 3);
        assert_eq!(s.scattered_chunks, 2);
        assert_eq!(s.mapped_subpages, 7);
    }

    #[test]
    fn single_subpage_chunk_at_offset_zero_is_aligned() {
        let mut m = MappingTable::new();
        m.insert(8, spa(0, 5, 0)); // lsn 8 = chunk 2 offset 0 → aligned
        assert_eq!(m.chunk_summary(4).scattered_chunks, 0);
        m.insert(13, spa(0, 6, 0)); // lsn 13 = chunk 3 offset 1 at subpage 0 → scattered
        assert_eq!(m.chunk_summary(4).scattered_chunks, 1);
    }

    #[test]
    fn lookup_span_agrees_with_per_lsn_lookups() {
        let mut m = MappingTable::new();
        // Mapped run straddling a bucket boundary (lsns 5..11), plus a hole.
        for l in 5..11u64 {
            if l != 8 {
                m.insert(l, spa(0, l as u32, (l % 4) as u8));
            }
        }
        let mut seen = Vec::new();
        m.lookup_span(3, 13, |l, loc| seen.push((l, loc)));
        assert_eq!(seen.len(), 10);
        for (l, loc) in seen {
            assert_eq!(loc, m.lookup(l), "span disagrees with lookup at {l}");
        }
        // Empty range visits nothing.
        m.lookup_span(20, 20, |_, _| unreachable!());
    }

    #[test]
    fn len_tracks_inserts_overwrites_and_removes() {
        let mut m = MappingTable::new();
        m.insert(0, spa(0, 0, 0));
        m.insert(1, spa(0, 0, 1));
        m.insert(0, spa(0, 1, 0)); // overwrite: len unchanged
        assert_eq!(m.len(), 2);
        assert!(m.remove(5).is_none());
        assert_eq!(m.remove(0), Some(spa(0, 1, 0)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.iter().count(), 1);
    }

    #[test]
    fn owner_table_lazy_allocation_and_round_trip() {
        let g = FlashGeometry::small_for_tests();
        let mut o = OwnerTable::new(&g);
        assert_eq!(o.allocated_blocks(), 0);
        assert!(o.owner(3, spa(3, 1, 2)).is_none());

        o.set(3, spa(3, 1, 2), 99);
        assert_eq!(o.allocated_blocks(), 1);
        assert_eq!(o.owner(3, spa(3, 1, 2)), Some(99));

        o.clear(3, spa(3, 1, 2));
        assert!(o.owner(3, spa(3, 1, 2)).is_none());

        o.set(3, spa(3, 0, 0), 5);
        o.set(3, spa(3, 0, 1), 6);
        assert_eq!(o.page_owners(3, 0), vec![Some(5), Some(6), None, None]);

        o.clear_block(3);
        assert_eq!(o.allocated_blocks(), 0);
        assert!(o.owner(3, spa(3, 0, 0)).is_none());
    }
}

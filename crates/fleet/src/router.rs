//! Shard routing: mapping tenants (and their requests) onto fleet devices.
//!
//! A fleet run synthesizes per-tenant request streams from one calibrated
//! trace ([`synthesize_tenants`]) and then a [`ShardPolicy`] decides which
//! device serves each request. `hash` and `range` are tenant-affine — every
//! request of a tenant lands on one device — while `lba-stripe` spreads each
//! tenant's address space across the whole fleet in fixed-size extents, so a
//! single hot tenant cannot melt a single shard.

use ipu_trace::tenants::split_round_robin;
use ipu_trace::{IoRequest, OpKind};
use serde::{Deserialize, Serialize};

/// Stripe width of the `lba-stripe` policy: consecutive [`STRIPE_BYTES`]
/// extents of the logical address space land on consecutive devices.
pub const STRIPE_BYTES: u64 = 1 << 20;

/// Cache-slot granularity used when rebasing tenant extents, matching the
/// 64 KiB slot size the FTL's SLC cache manages.
const SLOT_BYTES: u64 = 64 * 1024;

/// How the shard router maps tenants onto devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardPolicy {
    /// FNV-1a hash of the tenant id modulo the device count: stateless,
    /// statistically balanced, but placement-blind (neighbouring tenants
    /// scatter arbitrarily).
    Hash,
    /// Contiguous tenant-id ranges: tenant `t` of `T` goes to device
    /// `t·D/T`. Perfectly balanced in tenant *count*, but load follows
    /// whatever skew the tenant population carries.
    Range,
    /// Requests route by logical address: extent `offset / STRIPE_BYTES`
    /// modulo the device count. Each tenant's traffic stripes across every
    /// device, trading tenant affinity for load spreading.
    LbaStripe,
}

impl ShardPolicy {
    /// Every policy, in report order.
    pub fn all() -> [ShardPolicy; 3] {
        [
            ShardPolicy::Hash,
            ShardPolicy::Range,
            ShardPolicy::LbaStripe,
        ]
    }

    /// Parses the CLI spelling (`hash`, `range`, `lba-stripe`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "hash" => Ok(ShardPolicy::Hash),
            "range" => Ok(ShardPolicy::Range),
            "lba-stripe" | "stripe" => Ok(ShardPolicy::LbaStripe),
            other => Err(format!(
                "unknown shard policy `{other}` (hash | range | lba-stripe)"
            )),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            ShardPolicy::Hash => "hash",
            ShardPolicy::Range => "range",
            ShardPolicy::LbaStripe => "lba-stripe",
        }
    }

    /// The home device of `tenant` under a tenant-affine policy; `None` for
    /// [`ShardPolicy::LbaStripe`], where placement is per-request.
    pub fn device_for_tenant(self, tenant: usize, tenants: usize, devices: usize) -> Option<usize> {
        assert!(tenant < tenants, "tenant {tenant} out of {tenants}");
        assert!(devices >= 1, "need at least one device");
        match self {
            ShardPolicy::Hash => Some((fnv1a(tenant as u64) % devices as u64) as usize),
            ShardPolicy::Range => Some(tenant * devices / tenants),
            ShardPolicy::LbaStripe => None,
        }
    }

    /// The device serving one request of `tenant`.
    pub fn device_for_request(
        self,
        tenant: usize,
        tenants: usize,
        devices: usize,
        offset: u64,
    ) -> usize {
        match self.device_for_tenant(tenant, tenants, devices) {
            Some(d) => d,
            None => ((offset / STRIPE_BYTES) % devices as u64) as usize,
        }
    }
}

/// Where retries, hedges and replica writes land when a device cannot (or
/// should not) serve a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplicationPolicy {
    /// No replicas: a request whose device is down is lost after the retry
    /// budget — PR 6 behaviour, and the honest baseline the mirror numbers
    /// are judged against.
    #[default]
    None,
    /// Device `d` mirrors with `d ^ 1`: writes are duplicated onto the
    /// mirror (capacity cost paid in the replay), reads fail over and hedge
    /// there. The last device of an odd fleet has no partner.
    MirrorPair,
}

impl ReplicationPolicy {
    /// Parses the CLI spelling (`none`, `mirror-pair`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(ReplicationPolicy::None),
            "mirror-pair" | "mirror" => Ok(ReplicationPolicy::MirrorPair),
            other => Err(format!(
                "unknown replication policy `{other}` (none | mirror-pair)"
            )),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            ReplicationPolicy::None => "none",
            ReplicationPolicy::MirrorPair => "mirror-pair",
        }
    }

    /// The replica of `device`, if this policy gives it one.
    pub fn mirror_of(self, device: usize, devices: usize) -> Option<usize> {
        match self {
            ReplicationPolicy::None => None,
            ReplicationPolicy::MirrorPair => {
                let partner = device ^ 1;
                (partner < devices).then_some(partner)
            }
        }
    }
}

/// FNV-1a over the little-endian bytes of a tenant id — the same stateless
/// hash family the replay cache uses for content addressing.
fn fnv1a(id: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    id.to_le_bytes()
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
            (h ^ u64::from(b)).wrapping_mul(PRIME)
        })
}

/// Synthesizes `tenants` independent full-rate streams from one calibrated
/// trace. Requests are dealt round-robin in arrival order, then each stream
/// is
///
/// * rebased into a private slot-aligned address extent so tenants never
///   share cache slots, and
/// * compressed in time by the tenant count, restoring each 1/n-density
///   slice to the base trace's arrival rate.
///
/// Every tenant therefore *offers the demand of the whole calibrated
/// workload*, and n tenants press n× the aggregate intensity into 1/n of
/// the horizon while the simulated op count stays `base.len()` — which is
/// what lets a capacity search sweep tens of thousands of tenants without
/// tens of thousands of replays' worth of work. With one tenant the
/// synthesis is the identity — the base stream untouched — which pins the
/// fleet layer to `replay_closed_loop` exactly (see the equivalence test).
pub fn synthesize_tenants(base: &[IoRequest], tenants: usize) -> Vec<Vec<IoRequest>> {
    let mut streams = split_round_robin(base, tenants);
    if tenants == 1 {
        return streams;
    }
    let span = base
        .iter()
        .map(|r| r.offset + r.size as u64)
        .max()
        .unwrap_or(0);
    let stride = span.div_ceil(SLOT_BYTES).max(1) * SLOT_BYTES;
    for (t, stream) in streams.iter_mut().enumerate() {
        for req in stream {
            req.offset += t as u64 * stride;
            req.timestamp_ns /= tenants as u64;
        }
    }
    streams
}

/// One device's share of the fleet workload: which tenants it serves
/// (by global tenant id, ascending) and their routed request streams,
/// parallel to `tenant_ids`.
#[derive(Debug, Clone, Default)]
pub struct DeviceAssignment {
    pub tenant_ids: Vec<usize>,
    pub workloads: Vec<Vec<IoRequest>>,
    /// Mirror write streams hosted here for tenants whose primary lives on
    /// the pair partner (global tenant ids, parallel to
    /// `mirror_workloads`). Replayed after the primary streams; excluded
    /// from fleet latency pooling but charged to this device's load.
    pub mirror_ids: Vec<usize>,
    pub mirror_workloads: Vec<Vec<IoRequest>>,
}

impl DeviceAssignment {
    fn push(&mut self, tenant: usize, stream: Vec<IoRequest>) {
        self.tenant_ids.push(tenant);
        self.workloads.push(stream);
    }

    /// Primary (logical) requests routed to this device.
    pub fn ops(&self) -> u64 {
        self.workloads.iter().map(|w| w.len() as u64).sum()
    }

    /// Replica write requests hosted for the pair partner.
    pub fn mirror_ops(&self) -> u64 {
        self.mirror_workloads.iter().map(|w| w.len() as u64).sum()
    }
}

/// Routes per-tenant streams onto `devices` shards under `policy`. Tenant
/// order within a device is ascending global tenant id; request order within
/// a tenant keeps arrival order. A tenant whose stream routes nowhere (empty
/// stream under `lba-stripe`) is parked on device `tenant % devices` so
/// every tenant owns a queue pair somewhere.
pub fn route(
    policy: ShardPolicy,
    streams: Vec<Vec<IoRequest>>,
    devices: usize,
) -> Vec<DeviceAssignment> {
    assert!(devices >= 1, "need at least one device");
    let tenants = streams.len();
    let mut out = vec![DeviceAssignment::default(); devices];
    for (t, stream) in streams.into_iter().enumerate() {
        match policy.device_for_tenant(t, tenants, devices) {
            Some(d) => out[d].push(t, stream),
            None => {
                let mut buckets = vec![Vec::new(); devices];
                for req in stream {
                    let d = policy.device_for_request(t, tenants, devices, req.offset);
                    buckets[d].push(req);
                }
                let mut placed = false;
                for (d, bucket) in buckets.into_iter().enumerate() {
                    if !bucket.is_empty() {
                        out[d].push(t, bucket);
                        placed = true;
                    }
                }
                if !placed {
                    out[t % devices].push(t, Vec::new());
                }
            }
        }
    }
    out
}

/// [`route`], then duplicates every primary stream's *writes* onto the
/// device's mirror under [`ReplicationPolicy::MirrorPair`] — the capacity
/// cost of keeping a second copy, paid inside the mirror's own replay.
/// Reads are not duplicated (they fail over or hedge at request time).
pub fn route_replicated(
    policy: ShardPolicy,
    streams: Vec<Vec<IoRequest>>,
    devices: usize,
    replication: ReplicationPolicy,
) -> Vec<DeviceAssignment> {
    let mut out = route(policy, streams, devices);
    if replication == ReplicationPolicy::None {
        return out;
    }
    let mut mirrored: Vec<Vec<(usize, Vec<IoRequest>)>> = vec![Vec::new(); devices];
    for (d, a) in out.iter().enumerate() {
        let Some(m) = replication.mirror_of(d, devices) else {
            continue;
        };
        for (&tenant, stream) in a.tenant_ids.iter().zip(&a.workloads) {
            let writes: Vec<IoRequest> = stream
                .iter()
                .filter(|r| matches!(r.op, OpKind::Write))
                .copied()
                .collect();
            if !writes.is_empty() {
                mirrored[m].push((tenant, writes));
            }
        }
    }
    for (d, streams) in mirrored.into_iter().enumerate() {
        for (tenant, stream) in streams {
            out[d].mirror_ids.push(tenant);
            out[d].mirror_workloads.push(stream);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_trace::OpKind;

    fn trace(n: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| IoRequest::new(i * 1_000, OpKind::Write, i * 65_536, 4096))
            .collect()
    }

    #[test]
    fn policy_parsing_round_trips() {
        for p in ShardPolicy::all() {
            assert_eq!(ShardPolicy::parse(p.label()).unwrap(), p);
        }
        assert_eq!(
            ShardPolicy::parse("stripe").unwrap(),
            ShardPolicy::LbaStripe
        );
        assert!(ShardPolicy::parse("rr").is_err());
    }

    #[test]
    fn single_tenant_synthesis_is_identity() {
        let base = trace(7);
        assert_eq!(synthesize_tenants(&base, 1), vec![base]);
    }

    #[test]
    fn synthesized_streams_run_at_the_base_rate() {
        // 4 tenants: each stream keeps every 4th request but compressed to
        // 1/4 of the horizon, so per-tenant arrival rate == base rate and
        // aggregate demand is 4× the base.
        let base = trace(16);
        let streams = synthesize_tenants(&base, 4);
        for (t, stream) in streams.iter().enumerate() {
            assert_eq!(stream.len(), 4);
            for (i, req) in stream.iter().enumerate() {
                let original = &base[i * 4 + t];
                assert_eq!(req.timestamp_ns, original.timestamp_ns / 4);
            }
            // Arrival order survives the compression.
            assert!(stream
                .windows(2)
                .all(|w| w[0].timestamp_ns <= w[1].timestamp_ns));
        }
        let horizon = base.last().unwrap().timestamp_ns;
        let compressed = streams
            .iter()
            .filter_map(|s| s.last())
            .map(|r| r.timestamp_ns)
            .max()
            .unwrap();
        assert!(compressed <= horizon / 4);
    }

    #[test]
    fn synthesized_tenants_get_disjoint_slot_aligned_extents() {
        let base = trace(12);
        let streams = synthesize_tenants(&base, 3);
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 12);
        for pair in streams.windows(2) {
            let hi_a = pair[0]
                .iter()
                .map(|r| r.offset + r.size as u64)
                .max()
                .unwrap();
            let lo_b = pair[1].iter().map(|r| r.offset).min().unwrap();
            assert!(lo_b >= hi_a, "tenant extents collide: {lo_b} < {hi_a}");
            assert_eq!(lo_b % SLOT_BYTES, 0, "extent base not slot-aligned");
        }
    }

    #[test]
    fn tenant_affine_policies_keep_each_tenant_on_one_device() {
        for policy in [ShardPolicy::Hash, ShardPolicy::Range] {
            let assignments = route(policy, synthesize_tenants(&trace(40), 10), 4);
            let mut seen = vec![0usize; 10];
            for a in &assignments {
                for &t in &a.tenant_ids {
                    seen[t] += 1;
                }
            }
            assert_eq!(seen, vec![1; 10], "{policy:?} split a tenant");
        }
    }

    #[test]
    fn range_policy_assigns_contiguous_blocks() {
        let tenants = 8;
        let devices = 4;
        let homes: Vec<usize> = (0..tenants)
            .map(|t| {
                ShardPolicy::Range
                    .device_for_tenant(t, tenants, devices)
                    .unwrap()
            })
            .collect();
        assert_eq!(homes, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn lba_stripe_spreads_one_tenant_across_devices() {
        // One tenant whose extent spans many stripes must appear on
        // every device, with requests partitioned by extent.
        let base: Vec<IoRequest> = (0..32)
            .map(|i| IoRequest::new(i * 100, OpKind::Write, i * STRIPE_BYTES, 4096))
            .collect();
        let assignments = route(ShardPolicy::LbaStripe, vec![base], 4);
        assert!(assignments.iter().all(|a| a.tenant_ids == vec![0]));
        assert_eq!(
            assignments.iter().map(DeviceAssignment::ops).sum::<u64>(),
            32
        );
        assert!(assignments.iter().all(|a| a.ops() == 8));
    }

    #[test]
    fn routing_conserves_every_request() {
        let base = trace(100);
        for policy in ShardPolicy::all() {
            let assignments = route(policy, synthesize_tenants(&base, 9), 5);
            let total: u64 = assignments.iter().map(DeviceAssignment::ops).sum();
            assert_eq!(total, 100, "{policy:?} dropped requests");
        }
    }

    #[test]
    fn single_device_routing_is_the_synthesized_split() {
        let base = trace(20);
        for policy in ShardPolicy::all() {
            let streams = synthesize_tenants(&base, 3);
            let assignments = route(policy, streams.clone(), 1);
            assert_eq!(assignments.len(), 1);
            assert_eq!(assignments[0].tenant_ids, vec![0, 1, 2]);
            assert_eq!(assignments[0].workloads, streams, "{policy:?}");
        }
    }

    #[test]
    fn mirror_pair_replicates_writes_onto_the_partner() {
        let base = trace(40); // all writes
        let assignments = route_replicated(
            ShardPolicy::Range,
            synthesize_tenants(&base, 8),
            4,
            ReplicationPolicy::MirrorPair,
        );
        // Primary routing is untouched.
        let primary: u64 = assignments.iter().map(DeviceAssignment::ops).sum();
        assert_eq!(primary, 40);
        // Every write shows up exactly once more, on the pair partner.
        let mirrored: u64 = assignments.iter().map(DeviceAssignment::mirror_ops).sum();
        assert_eq!(mirrored, 40);
        for (d, a) in assignments.iter().enumerate() {
            let partner = &assignments[d ^ 1];
            assert_eq!(a.mirror_ops(), partner.ops(), "device {d}");
            assert_eq!(a.mirror_ids, partner.tenant_ids, "device {d}");
        }
    }

    #[test]
    fn replication_none_and_odd_tail_add_no_mirrors() {
        let base = trace(30);
        let none = route_replicated(
            ShardPolicy::Hash,
            synthesize_tenants(&base, 6),
            4,
            ReplicationPolicy::None,
        );
        assert!(none.iter().all(|a| a.mirror_ids.is_empty()));
        // Odd fleet: device 2 has no partner, so nothing mirrors anywhere
        // from it and nothing lands on it.
        let odd = route_replicated(
            ShardPolicy::Range,
            synthesize_tenants(&base, 6),
            3,
            ReplicationPolicy::MirrorPair,
        );
        assert!(odd[2].mirror_ids.is_empty());
        assert_eq!(ReplicationPolicy::MirrorPair.mirror_of(2, 3), None);
        assert_eq!(ReplicationPolicy::MirrorPair.mirror_of(1, 3), Some(0));
        // Reads never replicate: a read-only stream mirrors nothing.
        let reads: Vec<IoRequest> = (0..8)
            .map(|i| IoRequest::new(i * 100, OpKind::Read, i * 65_536, 4096))
            .collect();
        let ro = route_replicated(
            ShardPolicy::Range,
            vec![reads],
            2,
            ReplicationPolicy::MirrorPair,
        );
        assert!(ro.iter().all(|a| a.mirror_ops() == 0));
    }

    #[test]
    fn replication_policy_parses_and_labels() {
        for p in [ReplicationPolicy::None, ReplicationPolicy::MirrorPair] {
            assert_eq!(ReplicationPolicy::parse(p.label()).unwrap(), p);
        }
        assert_eq!(
            ReplicationPolicy::parse("mirror").unwrap(),
            ReplicationPolicy::MirrorPair
        );
        assert!(ReplicationPolicy::parse("raid6").is_err());
    }

    #[test]
    fn requestless_tenant_still_owns_a_queue_pair() {
        // 3 tenants but only 2 requests: tenant 2's stream is empty. Under
        // lba-stripe it must still be parked somewhere.
        let base = trace(2);
        for policy in ShardPolicy::all() {
            let assignments = route(policy, synthesize_tenants(&base, 3), 2);
            let seen: usize = assignments.iter().map(|a| a.tenant_ids.len()).sum();
            assert_eq!(seen, 3, "{policy:?} lost a tenant");
        }
    }
}

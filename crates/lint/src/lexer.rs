//! A minimal hand-rolled Rust lexer: just enough to token-scan source files
//! without being fooled by comments, strings, char literals, lifetimes or raw
//! strings. No `syn`, no full grammar — the rule engine works on this flat
//! token stream plus the comment side channel.
//!
//! Fidelity notes (deliberate simplifications, safe for our rules):
//! * multi-char operators are joined by maximal munch over a fixed table
//!   (`==`, `!=`, `::`, `..=`, …); everything else is a single-char punct;
//! * a float literal is a numeric token containing a decimal point, an
//!   exponent, or an `f32`/`f64` suffix;
//! * tuple-field chains like `x.0.1` mis-lex the tail as a float — harmless
//!   for the comparison rule, which anchors on `==`/`!=` neighbours.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`match`, `unwrap`, `HashMap`, …).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// String, raw string, byte string or char literal.
    Str,
    /// Integer literal (incl. hex/octal/binary).
    Int,
    /// Float literal (`0.5`, `1e9`, `2f64`).
    Float,
    /// Punctuation / operator, possibly multi-char (`::`, `==`).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment with its line span. `doc` marks `///`, `//!`, `/**`, `/*!`.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
    pub doc: bool,
}

/// Lexer output: the token stream plus all comments, in source order.
#[derive(Debug, Default)]
pub struct LexOut {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-char operators joined by maximal munch (longest first).
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated constructs
/// consume to end-of-file (the linter must degrade gracefully on any input).
pub fn lex(src: &str) -> LexOut {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = LexOut::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances over `count` chars, bumping the line counter on newlines.
    macro_rules! advance {
        ($count:expr) => {{
            for _ in 0..$count {
                if i < n {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < n {
        let c = b[i];

        // Whitespace.
        if c.is_whitespace() {
            advance!(1);
            continue;
        }

        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            while i < n && b[i] != '\n' {
                text.push(b[i]);
                i += 1;
            }
            let doc = text.starts_with("///") || text.starts_with("//!");
            out.comments.push(Comment {
                line: start_line,
                end_line: start_line,
                text,
                doc,
            });
            continue;
        }

        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    advance!(2);
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    text.push_str("*/");
                    advance!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(b[i]);
                    advance!(1);
                }
            }
            let doc = text.starts_with("/**") || text.starts_with("/*!");
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text,
                doc,
            });
            continue;
        }

        // Raw strings and byte/raw-byte strings: r"", r#""#, br#""#, b"".
        if c == 'r' || c == 'b' || c == 'c' {
            if let Some((len, lines)) = scan_raw_or_byte_string(&b[i..]) {
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(), // contents never matter to rules
                    line,
                });
                line += lines as u32;
                i += len;
                continue;
            }
        }

        // Plain string.
        if c == '"' {
            let start_line = line;
            advance!(1);
            while i < n {
                if b[i] == '\\' {
                    advance!(2);
                } else if b[i] == '"' {
                    advance!(1);
                    break;
                } else {
                    advance!(1);
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let start_line = line;
            // 'x' / '\n' / '\u{..}' are char literals; 'ident (no closing
            // quote) is a lifetime.
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal.
                advance!(2); // ' and backslash
                while i < n && b[i] != '\'' {
                    advance!(1);
                }
                advance!(1);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
                continue;
            }
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == '\'' {
                    // 'a' style char literal.
                    let len = j + 1 - i;
                    advance!(len);
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: start_line,
                    });
                } else {
                    // Lifetime.
                    let text: String = b[i..j].iter().collect();
                    advance!(j - i);
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text,
                        line: start_line,
                    });
                }
                continue;
            }
            // '(' style char literal: quote, one char, quote.
            advance!(1);
            if i < n {
                advance!(1);
            }
            if i < n && b[i] == '\'' {
                advance!(1);
            }
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let start_line = line;
            let mut j = i;
            let mut text = String::new();
            let mut is_float = false;
            // Integer part (covers 0x/0o/0b bodies too).
            while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                text.push(b[j]);
                j += 1;
            }
            // Fraction: a dot followed by a digit (excludes `..` and `1.max()`).
            if j < n && b[j] == '.' && j + 1 < n && b[j + 1].is_ascii_digit() {
                is_float = true;
                text.push('.');
                j += 1;
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    text.push(b[j]);
                    j += 1;
                }
            }
            // Exponent sign (the digits were consumed as alphanumerics).
            if (text.contains('e') || text.contains('E'))
                && j < n
                && (b[j] == '+' || b[j] == '-')
                && !text.starts_with("0x")
                && !text.starts_with("0X")
            {
                text.push(b[j]);
                j += 1;
                while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                    text.push(b[j]);
                    j += 1;
                }
            }
            let lower = text.to_ascii_lowercase();
            if !lower.starts_with("0x")
                && (is_float
                    || lower.ends_with("f32")
                    || lower.ends_with("f64")
                    || (lower.contains('e')
                        && lower.chars().next().is_some_and(|c| c.is_ascii_digit())
                        && !lower.ends_with("u8")
                        && !lower.contains("us")
                        && !lower.contains("i3")))
            {
                is_float = true;
            }
            advance!(j - i);
            out.tokens.push(Token {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text,
                line: start_line,
            });
            continue;
        }

        // Identifier / keyword (incl. raw identifiers).
        if is_ident_start(c) {
            let start_line = line;
            let mut j = i;
            // r#ident raw identifier (the r was not a raw string above).
            if c == 'r' && i + 1 < n && b[i + 1] == '#' && i + 2 < n && is_ident_start(b[i + 2]) {
                j = i + 2;
            }
            let word_start = j;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            let text: String = b[word_start..j].iter().collect();
            advance!(j - i);
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line: start_line,
            });
            continue;
        }

        // Punctuation: maximal munch over the multi-char table.
        let start_line = line;
        let mut matched = None;
        for &op in MULTI_PUNCT {
            let len = op.len();
            if i + len <= n {
                let slice: String = b[i..i + len].iter().collect();
                if slice == op {
                    matched = Some(op.to_string());
                    break;
                }
            }
        }
        let text = matched.unwrap_or_else(|| c.to_string());
        advance!(text.chars().count());
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text,
            line: start_line,
        });
    }

    out
}

/// Recognizes raw strings, byte strings and c-strings starting at `b[0]`
/// (`r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'x'`, `c"…"`). Returns
/// `(chars consumed, newlines inside)` or `None` if this is not one.
fn scan_raw_or_byte_string(b: &[char]) -> Option<(usize, usize)> {
    let mut j = 0usize;
    // Optional b/c prefix, optional r, then hashes + quote.
    if b[j] == 'b' || b[j] == 'c' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if !raw && hashes > 0 {
        return None; // e.g. `r#ident` raw identifier, not a string
    }
    // b'x' byte char literal.
    if !raw && hashes == 0 && j == 1 && b[0] == 'b' && j < b.len() && b[j] == '\'' {
        j += 1;
        let mut newlines = 0;
        while j < b.len() {
            if b[j] == '\\' {
                j += 2;
                continue;
            }
            if b[j] == '\'' {
                return Some((j + 1, newlines));
            }
            if b[j] == '\n' {
                newlines += 1;
            }
            j += 1;
        }
        return Some((j, newlines));
    }
    if j >= b.len() || b[j] != '"' {
        return None;
    }
    j += 1;
    let mut newlines = 0usize;
    while j < b.len() {
        if !raw && b[j] == '\\' {
            j += 2;
            continue;
        }
        if b[j] == '\n' {
            newlines += 1;
        }
        if b[j] == '"' {
            // Need `hashes` trailing #s to close a raw string.
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && k < b.len() && b[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some((k, newlines));
            }
        }
        j += 1;
    }
    Some((j, newlines))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("let x = a::b();"),
            ["let", "x", "=", "a", "::", "b", "(", ")", ";"]
        );
    }

    #[test]
    fn comments_are_side_channel_not_tokens() {
        let out = lex("a // unwrap() in a comment\nb /* panic! */ c");
        let toks: Vec<_> = out.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(toks, ["a", "b", "c"]);
        assert_eq!(out.comments.len(), 2);
        assert!(out.comments[0].text.contains("unwrap"));
        assert!(!out.comments[0].doc);
    }

    #[test]
    fn doc_comments_flagged() {
        let out = lex("/// docs\nfn f() {}\n//! inner\n/** block */");
        assert!(out.comments.iter().all(|c| c.doc));
        assert_eq!(out.comments.len(), 3);
    }

    #[test]
    fn strings_swallow_everything() {
        let out = lex(r#"let s = "unwrap() // not a comment"; x"#);
        assert_eq!(out.comments.len(), 0);
        assert!(out.tokens.iter().any(|t| t.is_ident("x")));
        assert!(!out.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let out = lex(r##"let s = r#"has "quotes" and unwrap()"#; y"##);
        assert!(out.tokens.iter().any(|t| t.is_ident("y")));
        assert!(!out.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'z'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = out.tokens.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn float_vs_int_literals() {
        let out = lex("a == 0.0; b != 1; c == 1e9; d == 2f64; e == 0xff; f == 1..4");
        let kinds: Vec<(String, TokKind)> = out
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.text.clone(), t.kind))
            .collect();
        assert_eq!(
            kinds,
            [
                ("0.0".to_string(), TokKind::Float),
                ("1".to_string(), TokKind::Int),
                ("1e9".to_string(), TokKind::Float),
                ("2f64".to_string(), TokKind::Float),
                ("0xff".to_string(), TokKind::Int),
                ("1".to_string(), TokKind::Int),
                ("4".to_string(), TokKind::Int),
            ]
        );
        // `..` must not be glued into the preceding int.
        assert!(out.tokens.iter().any(|t| t.is_punct("..")));
    }

    #[test]
    fn multi_char_operators_join() {
        let out = lex("a==b; c!=d; e..=f; g->h; i=>j");
        for op in ["==", "!=", "..=", "->", "=>"] {
            assert!(out.tokens.iter().any(|t| t.is_punct(op)), "missing {op}");
        }
    }

    #[test]
    fn line_numbers_track_newlines() {
        let out = lex("a\nb\n\nc /* x\ny */ d");
        let find = |s: &str| out.tokens.iter().find(|t| t.is_ident(s)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 4);
        assert_eq!(find("d"), 5);
        assert_eq!(out.comments[0].end_line, 5);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let out = lex("let a = b\"bytes\"; let c = b'x'; let r = br#\"raw\"#; z");
        assert!(out.tokens.iter().any(|t| t.is_ident("z")));
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panic() {
        let out = lex("let s = \"never closed");
        assert!(out.tokens.iter().any(|t| t.kind == TokKind::Str));
    }
}

//! `ipu-sim` — the command-line face of the IPU paper reproduction.
//!
//! Run `ipu-sim help` for the full usage text; typical invocations:
//!
//! ```text
//! cargo run --release -p ipu-cli -- figure 5 --scale 0.25
//! cargo run --release -p ipu-cli -- run --traces ts0 --schemes ipu
//! cargo run --release -p ipu-cli -- replay /data/msr/ts0.csv --schemes ipu
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use args::ParsedArgs;

/// Flags consumed by `config_from`, shared by every experiment command.
const CONFIG_FLAGS: &[&str] = &[
    "scale",
    "traces",
    "schemes",
    "pe",
    "threads",
    "fault-profile",
];

/// Flags/switches consumed by `cache_from` (replay-cache control).
const CACHE_FLAGS: &[&str] = &["cache-dir"];
const CACHE_SWITCHES: &[&str] = &["cache", "no-cache"];

/// The exact flag/switch grammar of one command. A flag a command would
/// silently ignore is *not* listed, so `ipu-sim tables --queue-depth 8`
/// fails loudly instead of running without the option.
fn command_grammar(command: &str) -> Option<(Vec<&'static str>, Vec<&'static str>)> {
    let mut flags: Vec<&'static str> = CONFIG_FLAGS.to_vec();
    let mut switches: Vec<&'static str> = Vec::new();
    let with_cache = |flags: &mut Vec<&'static str>, switches: &mut Vec<&'static str>| {
        flags.extend_from_slice(CACHE_FLAGS);
        switches.extend_from_slice(CACHE_SWITCHES);
    };
    match command {
        "tables" => flags.push("save"),
        "figure" | "sweep" | "scorecard" | "reliability" => {
            flags.push("save");
            with_cache(&mut flags, &mut switches);
        }
        "run" | "ablate" => with_cache(&mut flags, &mut switches),
        "figures" => {
            flags.push("out");
            with_cache(&mut flags, &mut switches);
        }
        "profile" => flags.extend_from_slice(&["out", "events"]),
        "simulate" => flags.extend_from_slice(&[
            "save",
            "queue-depth",
            "tenants",
            "arbitration",
            "dispatch-overhead",
            "split",
            "out",
        ]),
        "replay" => flags = vec!["schemes", "fault-profile"],
        "fleet" => {
            flags.extend_from_slice(&[
                "save",
                "devices",
                "policy",
                "queue-depth",
                "arbitration",
                "slo-p99-ms",
                "max-tenants",
                "tenants",
                "replication",
                "fault-plan",
                "faulty",
                "out",
                "from",
            ]);
            with_cache(&mut flags, &mut switches);
        }
        _ => return None,
    }
    Some((flags, switches))
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "help" || raw[0] == "--help" || raw[0] == "-h" {
        print!("{}", commands::USAGE);
        return;
    }

    let Some((flags, switches)) = command_grammar(&raw[0]) else {
        eprintln!("error: unknown command `{}`\n\n{}", raw[0], commands::USAGE);
        std::process::exit(2);
    };

    let parsed = match ParsedArgs::parse_with_switches(raw, &flags, &switches) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };

    let result = match parsed.command.as_str() {
        "tables" => commands::cmd_tables(&parsed),
        "figure" => commands::cmd_figure(&parsed),
        "run" => commands::cmd_run(&parsed),
        "sweep" => commands::cmd_sweep(&parsed),
        "simulate" => commands::cmd_simulate(&parsed),
        "reliability" => commands::cmd_reliability(&parsed),
        "replay" => commands::cmd_replay(&parsed),
        "ablate" => commands::cmd_ablate(&parsed),
        "figures" => commands::cmd_figures(&parsed),
        "profile" => commands::cmd_profile(&parsed),
        "scorecard" => commands::cmd_scorecard(&parsed),
        "fleet" => commands::cmd_fleet(&parsed),
        other => {
            eprintln!("error: unknown command `{other}`\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };

    match result {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    fn parse(cmdline: &str) -> Result<ParsedArgs, args::ArgError> {
        let cmd = cmdline.split_whitespace().next().unwrap();
        let (flags, switches) = command_grammar(cmd).expect("known command");
        ParsedArgs::parse_with_switches(argv(cmdline), &flags, &switches)
    }

    #[test]
    fn every_command_has_a_grammar() {
        for cmd in [
            "tables",
            "figure",
            "run",
            "sweep",
            "simulate",
            "reliability",
            "replay",
            "ablate",
            "figures",
            "profile",
            "scorecard",
            "fleet",
        ] {
            assert!(command_grammar(cmd).is_some(), "{cmd}");
        }
        assert!(command_grammar("bogus").is_none());
    }

    #[test]
    fn unknown_flags_error_instead_of_being_ignored() {
        // `tables` runs no QD sweep: a queue-depth flag must be rejected, not
        // silently dropped.
        let err = parse("tables --queue-depth 8").unwrap_err();
        assert!(err.0.contains("unknown flag --queue-depth"), "{err}");
        // Misspelled flags fail the same way on any command.
        assert!(parse("figure 5 --sclae 0.1").is_err());
        assert!(parse("profile --save out.json").is_err());
    }

    #[test]
    fn per_command_flags_parse() {
        let p = parse("simulate --queue-depth 1,16 --tenants fg:4:0,bg:1:1").unwrap();
        assert_eq!(p.flag("tenants"), Some("fg:4:0,bg:1:1"));
        let p = parse("profile --out p.json --events e.jsonl --threads 1").unwrap();
        assert_eq!(p.flag("out"), Some("p.json"));
        let p = parse("figure 5 --cache --save m.json").unwrap();
        assert!(p.switch("cache"));
    }

    #[test]
    fn replay_accepts_only_its_own_flags() {
        let p = parse("replay trace.csv --schemes ipu --fault-profile light").unwrap();
        assert_eq!(p.positionals, vec!["trace.csv"]);
        assert!(parse("replay trace.csv --scale 0.5").is_err());
        assert!(parse("replay trace.csv --cache").is_err());
    }
}

//! Fleet-level report types: per-device summaries merged into one
//! [`FleetReport`], capacity-search results, and their text renderings.
//!
//! Everything serialized from a fleet run lives in this file — it is listed
//! in `ipu-lint`'s ordered-output surface, so iteration order feeding any of
//! these structs must be deterministic (no `HashMap`/`HashSet`).

use crate::router::ShardPolicy;
use ipu_core::report::TextTable;
use ipu_host::{LatencyStats, ReliabilityStats, TenantMetrics};
use ipu_sim::ClosedLoopReport;
use serde::{Deserialize, Serialize};

/// How many of the hottest devices a [`LoadSkew`] keeps.
pub const HOT_SHARD_TOP_K: usize = 8;

/// One device's contribution to the fleet, in device-id order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSummary {
    pub device: usize,
    /// Tenants with a queue pair on this device.
    pub tenants: usize,
    /// Requests this device completed.
    pub ops: u64,
    /// Mean service latency, ms.
    pub mean_ms: f64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    /// Last completion on this device, ns.
    pub horizon_ns: u64,
}

/// One of the top-K most loaded devices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotShard {
    pub device: usize,
    pub ops: u64,
    /// This device's fraction of all fleet ops.
    pub share: f64,
}

/// Load-balance diagnostics across the fleet: how far the hottest shard
/// sits above the mean, and which shards carry the most traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadSkew {
    /// Mean requests per device.
    pub mean_ops: f64,
    /// Requests on the hottest device.
    pub max_ops: u64,
    /// `max_ops / mean_ops` (1.0 is perfectly balanced; 0 when idle).
    pub skew: f64,
    /// Up to [`HOT_SHARD_TOP_K`] busiest devices, descending by ops
    /// (ties broken by ascending device id).
    pub hot_shards: Vec<HotShard>,
}

impl LoadSkew {
    fn from_ops(ops: &[u64]) -> LoadSkew {
        let total: u64 = ops.iter().sum();
        let mean_ops = if ops.is_empty() {
            0.0
        } else {
            total as f64 / ops.len() as f64
        };
        let max_ops = ops.iter().copied().max().unwrap_or(0);
        let skew = if mean_ops <= 0.0 {
            0.0
        } else {
            max_ops as f64 / mean_ops
        };
        let mut ranked: Vec<(usize, u64)> = ops
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(HOT_SHARD_TOP_K);
        let hot_shards = ranked
            .into_iter()
            .map(|(device, n)| HotShard {
                device,
                ops: n,
                share: if total == 0 {
                    0.0
                } else {
                    n as f64 / total as f64
                },
            })
            .collect();
        LoadSkew {
            mean_ops,
            max_ops,
            skew,
            hot_shards,
        }
    }
}

/// Merged view of one fleet run: N devices, each replayed closed-loop,
/// aggregated with the exact `LatencyStats::merge` semantics (bucket sums),
/// so fleet percentiles equal the percentiles of the pooled population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    pub scheme: String,
    pub trace: String,
    pub policy: String,
    pub devices: usize,
    pub tenants: usize,
    pub queue_depth: usize,
    /// Requests completed fleet-wide.
    pub total_ops: u64,
    /// `total_ops` over the fleet horizon (slowest device), ops/s.
    pub throughput_ops_per_sec: f64,
    /// Submission→completion latency pooled over every tenant of every
    /// device.
    pub service_latency: LatencyStats,
    /// Arrival→completion latency (includes admission stall), pooled.
    pub e2e_latency: LatencyStats,
    /// `service_latency.percentile_ns(99.0)` — the SLO metric.
    pub p99_ns: u64,
    pub p999_ns: u64,
    /// Min/max per-tenant throughput ratio across the whole fleet.
    pub fairness: f64,
    pub reliability: ReliabilityStats,
    /// Fleet horizon: the last completion on the slowest device, ns.
    pub horizon_ns: u64,
    /// One row per device, device-id ascending (idle devices included).
    pub per_device: Vec<DeviceSummary>,
    pub load: LoadSkew,
}

impl FleetReport {
    /// Merges per-device closed-loop reports (indexed by device id; `None`
    /// for a device that received no tenants) into one fleet report.
    pub fn merge(
        scheme: &str,
        trace: &str,
        policy: ShardPolicy,
        tenants: usize,
        queue_depth: usize,
        per_device: &[Option<ClosedLoopReport>],
    ) -> FleetReport {
        let mut service = LatencyStats::new();
        let mut e2e = LatencyStats::new();
        let mut reliability = ReliabilityStats::new();
        let mut horizon_ns = 0u64;
        let mut total_ops = 0u64;
        let mut tenant_count = 0usize;
        // Fairness without cloning tens of thousands of TenantMetrics:
        // track the min/max per-tenant throughput inline.
        let mut tp_min = f64::INFINITY;
        let mut tp_max = 0.0f64;
        let mut summaries = Vec::with_capacity(per_device.len());
        let mut ops = Vec::with_capacity(per_device.len());

        for (device, slot) in per_device.iter().enumerate() {
            let Some(report) = slot else {
                summaries.push(DeviceSummary {
                    device,
                    tenants: 0,
                    ops: 0,
                    mean_ms: 0.0,
                    p99_ns: 0,
                    p999_ns: 0,
                    horizon_ns: 0,
                });
                ops.push(0);
                continue;
            };
            let dev_service = report.host.overall_service_latency();
            let dev_ops = report.host.total_completed();
            for t in &report.host.tenants {
                service.merge(&t.service_latency);
                e2e.merge(&t.e2e_latency);
                let tp = TenantMetrics::throughput_rps(t);
                tp_min = tp_min.min(tp);
                tp_max = tp_max.max(tp);
            }
            tenant_count += report.host.tenants.len();
            reliability.merge(&report.sim.reliability);
            horizon_ns = horizon_ns.max(report.host.horizon_ns);
            total_ops += dev_ops;
            summaries.push(DeviceSummary {
                device,
                tenants: report.host.tenants.len(),
                ops: dev_ops,
                mean_ms: dev_service.mean_ms(),
                p99_ns: dev_service.percentile_ns(99.0),
                p999_ns: dev_service.percentile_ns(99.9),
                horizon_ns: report.host.horizon_ns,
            });
            ops.push(dev_ops);
        }

        let fairness = if tenant_count < 2 || tp_max <= 0.0 {
            1.0
        } else {
            tp_min / tp_max
        };
        let throughput_ops_per_sec = if horizon_ns == 0 {
            0.0
        } else {
            total_ops as f64 * 1e9 / horizon_ns as f64
        };
        FleetReport {
            scheme: scheme.to_string(),
            trace: trace.to_string(),
            policy: policy.label().to_string(),
            devices: per_device.len(),
            tenants,
            queue_depth,
            total_ops,
            throughput_ops_per_sec,
            p99_ns: service.percentile_ns(99.0),
            p999_ns: service.percentile_ns(99.9),
            service_latency: service,
            e2e_latency: e2e,
            fairness,
            reliability,
            horizon_ns,
            per_device: summaries,
            load: LoadSkew::from_ops(&ops),
        }
    }
}

/// One probe of the capacity search: a fleet run at `tenants` tenants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityProbe {
    pub tenants: u64,
    pub p99_ns: u64,
    pub met_slo: bool,
}

/// Result of the per-scheme capacity search: the largest tenant count whose
/// fleet p99 stays under the SLO.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityResult {
    pub scheme: String,
    pub trace: String,
    pub policy: String,
    /// The SLO threshold probed against, ns.
    pub slo_p99_ns: u64,
    /// Upper bound the search was allowed to probe.
    pub tenant_cap: u64,
    /// Largest probed tenant count meeting the SLO (0 if even 1 tenant
    /// misses it).
    pub max_tenants: u64,
    /// Every probe, in probe order.
    pub probes: Vec<CapacityProbe>,
    /// The full fleet report at `max_tenants` (absent when `max_tenants`
    /// is 0).
    pub at_capacity: Option<FleetReport>,
}

/// Everything one `fleet` CLI invocation produced: capacity-search results
/// per trace × scheme, or fixed-size fleet reports when a tenant count was
/// pinned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetRunResult {
    pub devices: usize,
    pub policy: String,
    pub queue_depth: usize,
    pub slo_p99_ns: u64,
    /// Capacity-search mode results (empty in fixed-size mode).
    #[serde(default)]
    pub capacity: Vec<CapacityResult>,
    /// Fixed-size mode reports (empty in capacity-search mode).
    #[serde(default)]
    pub reports: Vec<FleetReport>,
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Text rendering of one merged fleet report: headline aggregates plus the
/// hottest shards.
pub fn render_fleet_report(r: &FleetReport) -> String {
    let mut out = format!(
        "fleet {} / {} [{}]: {} devices, {} tenants, QD {}\n\
         ops {}  throughput {:.0} ops/s  p99 {} ms  p999 {} ms\n\
         mean {:.3} ms  fairness {:.3}  availability {:.6}  load skew {:.2}\n",
        r.trace,
        r.scheme,
        r.policy,
        r.devices,
        r.tenants,
        r.queue_depth,
        r.total_ops,
        r.throughput_ops_per_sec,
        ms(r.p99_ns),
        ms(r.p999_ns),
        r.service_latency.mean_ms(),
        r.fairness,
        r.reliability.availability(),
        r.load.skew,
    );
    if !r.load.hot_shards.is_empty() {
        let mut t = TextTable::new(&["Hot shard", "ops", "share", "p99(ms)"]);
        for h in &r.load.hot_shards {
            let p99 = r.per_device[h.device].p99_ns;
            t.row(vec![
                format!("dev{}", h.device),
                h.ops.to_string(),
                format!("{:.1}%", h.share * 100.0),
                ms(p99),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// Text rendering of the capacity-search headline: max tenants at SLO per
/// trace × scheme.
pub fn render_capacity(results: &[CapacityResult]) -> String {
    let mut t = TextTable::new(&[
        "Trace",
        "Scheme",
        "Policy",
        "SLO p99(ms)",
        "max tenants",
        "p99@cap(ms)",
        "probes",
    ]);
    for r in results {
        let p99_at_cap = r
            .at_capacity
            .as_ref()
            .map(|f| ms(f.p99_ns))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            r.trace.clone(),
            r.scheme.clone(),
            r.policy.clone(),
            ms(r.slo_p99_ns),
            r.max_tenants.to_string(),
            p99_at_cap,
            r.probes.len().to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_host::HostConfig;
    use ipu_sim::{replay_closed_loop, ReplayConfig};
    use ipu_trace::{IoRequest, OpKind};

    fn workload(n: u64, base: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| IoRequest::new(i * 2_000, OpKind::Write, base + (i % 8) * 65_536, 4096))
            .collect()
    }

    fn device_report(n: u64, base: u64) -> ClosedLoopReport {
        let cfg = ReplayConfig::small_for_tests(ipu_ftl::SchemeKind::Ipu);
        let host = HostConfig::single(2);
        replay_closed_loop(&cfg, &host, &[workload(n, base)], "t")
    }

    #[test]
    fn merge_conserves_ops_and_pools_latency() {
        let a = device_report(30, 0);
        let b = device_report(20, 1 << 24);
        let expect_ops = a.host.total_completed() + b.host.total_completed();
        let mut pooled = a.host.overall_service_latency();
        pooled.merge(&b.host.overall_service_latency());

        let fleet = FleetReport::merge("ipu", "ts0", ShardPolicy::Hash, 2, 2, &[Some(a), Some(b)]);
        assert_eq!(fleet.total_ops, 50);
        assert_eq!(fleet.total_ops, expect_ops);
        assert_eq!(fleet.service_latency.count(), pooled.count());
        assert_eq!(fleet.service_latency.sum_ns(), pooled.sum_ns());
        // Bucket-sum merge: fleet percentile == pooled-population percentile.
        assert_eq!(fleet.p99_ns, pooled.percentile_ns(99.0));
        assert_eq!(fleet.p999_ns, pooled.percentile_ns(99.9));
        assert_eq!(fleet.per_device.len(), 2);
        assert_eq!(
            fleet.per_device.iter().map(|d| d.ops).sum::<u64>(),
            fleet.total_ops
        );
    }

    #[test]
    fn merge_tolerates_idle_devices() {
        let a = device_report(10, 0);
        let fleet = FleetReport::merge(
            "ipu",
            "ts0",
            ShardPolicy::Range,
            1,
            2,
            &[None, Some(a), None],
        );
        assert_eq!(fleet.devices, 3);
        assert_eq!(fleet.per_device.len(), 3);
        assert_eq!(fleet.per_device[0].ops, 0);
        assert_eq!(fleet.per_device[2].ops, 0);
        assert_eq!(fleet.total_ops, 10);
        // One busy device of three: skew = max / mean = 3.
        assert!((fleet.load.skew - 3.0).abs() < 1e-9);
        assert_eq!(fleet.load.hot_shards.len(), 1);
        assert_eq!(fleet.load.hot_shards[0].device, 1);
        assert!((fleet.load.hot_shards[0].share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_spans_devices() {
        // A lone tenant per device is <2 tenants per HostReport, but fleet
        // fairness must still compare them across devices.
        let a = device_report(40, 0);
        let b = device_report(10, 1 << 24);
        let tp_a = a.host.tenants[0].throughput_rps();
        let tp_b = b.host.tenants[0].throughput_rps();
        let fleet = FleetReport::merge("ipu", "ts0", ShardPolicy::Hash, 2, 2, &[Some(a), Some(b)]);
        let expect = tp_a.min(tp_b) / tp_a.max(tp_b);
        assert!(
            (fleet.fairness - expect).abs() < 1e-12,
            "{}",
            fleet.fairness
        );
        assert!(fleet.fairness < 1.0);
    }

    #[test]
    fn hot_shards_rank_descending_with_stable_ties() {
        let skew = LoadSkew::from_ops(&[5, 9, 9, 0, 7, 1, 2, 3, 4, 6, 8, 9]);
        let ranked: Vec<(usize, u64)> = skew.hot_shards.iter().map(|h| (h.device, h.ops)).collect();
        assert_eq!(
            ranked,
            vec![
                (1, 9),
                (2, 9),
                (11, 9),
                (10, 8),
                (4, 7),
                (9, 6),
                (0, 5),
                (8, 4)
            ]
        );
        assert_eq!(skew.hot_shards.len(), HOT_SHARD_TOP_K);
        assert_eq!(skew.max_ops, 9);
    }

    #[test]
    fn empty_fleet_is_all_zero() {
        let fleet = FleetReport::merge("ipu", "ts0", ShardPolicy::Hash, 0, 1, &[None, None]);
        assert_eq!(fleet.total_ops, 0);
        assert_eq!(fleet.p99_ns, 0);
        assert_eq!(fleet.horizon_ns, 0);
        assert!((fleet.throughput_ops_per_sec - 0.0).abs() < f64::EPSILON);
        assert!((fleet.fairness - 1.0).abs() < f64::EPSILON);
        assert!(fleet.load.hot_shards.is_empty());
        assert!((fleet.load.skew - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn reports_render_and_round_trip() {
        let a = device_report(25, 0);
        let fleet = FleetReport::merge("ipu", "ts0", ShardPolicy::LbaStripe, 1, 2, &[Some(a)]);
        let text = render_fleet_report(&fleet);
        assert!(text.contains("lba-stripe"));
        assert!(text.contains("Hot shard"));

        let json = serde_json::to_string(&fleet).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);

        let cap = CapacityResult {
            scheme: "ipu".into(),
            trace: "ts0".into(),
            policy: "hash".into(),
            slo_p99_ns: 1_000_000,
            tenant_cap: 64,
            max_tenants: 12,
            probes: vec![CapacityProbe {
                tenants: 12,
                p99_ns: 900_000,
                met_slo: true,
            }],
            at_capacity: Some(fleet),
        };
        let table = render_capacity(std::slice::from_ref(&cap));
        assert!(table.contains("max tenants"));
        assert!(table.contains("12"));
        let run = FleetRunResult {
            devices: 1,
            policy: "hash".into(),
            queue_depth: 2,
            slo_p99_ns: 1_000_000,
            capacity: vec![cap],
            reports: Vec::new(),
        };
        let json = serde_json::to_string_pretty(&run).unwrap();
        let back: FleetRunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
    }
}

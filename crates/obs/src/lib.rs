//! # ipu-obs — observability for the IPU simulator stack
//!
//! Lightweight span-based wall-clock profiling of the replay hot paths,
//! monotonic counter snapshots with diffing, and a structured JSONL export.
//! Every layer of the stack (`ipu-trace`, `ipu-ftl`, `ipu-sim`, `ipu-host`,
//! the CLI) opens [`span()`]s around its hot phases; this crate aggregates
//! *exclusive* (self) time per [`Phase`] so the per-phase breakdown sums to
//! the instrumented total even though phases nest (GC runs inside an FTL
//! write, FTL work runs inside host arbitration).
//!
//! Instrumentation is **off by default** and gated behind one relaxed atomic
//! load: a disabled [`span()`] constructs no timer, touches no thread-local and
//! records nothing, so the replay engine's bit-identical regression tests and
//! its wall-clock behaviour are unaffected unless a profiling entry point
//! ([`enable`]) arms the subsystem.
//!
//! ```
//! use ipu_obs::{enable, disable, reset, snapshot, span, Phase};
//!
//! reset();
//! enable();
//! {
//!     let _outer = span(Phase::FtlWrite);
//!     let _inner = span(Phase::Gc); // nested: subtracted from FtlWrite
//! }
//! disable();
//! let snap = snapshot();
//! assert_eq!(snap.phase(Phase::Gc).unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]

pub mod counters;
pub mod export;
pub mod span;

pub use counters::{CounterDelta, CounterSnapshot};
pub use export::{events_jsonl, snapshot_jsonl, ObsEvent};
pub use span::{
    disable, enable, enabled, event, reset, snapshot, span, ObsSnapshot, Phase, PhaseStat, Span,
};

//! Per-block cache metadata: level labels, write timestamps and update flags.
//!
//! This is the logical bookkeeping the SLC-mode cache needs on top of the
//! physical state in `ipu-flash`: which level a block belongs to (IPU's
//! Work/Monitor/Hot labels), when each subpage was written (the `t_ij` of the
//! ISR GC policy's Equation 2), and whether a page has received an intra-page
//! update (which drives the paper's degraded data movement in GC).

use std::collections::BTreeMap;

use ipu_flash::{BlockAddr, Nanos};

use crate::types::BlockLevel;

/// Metadata for one in-use (allocated, non-free) block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    pub addr: BlockAddr,
    /// Cache level; `HighDensity` for MLC-region blocks.
    pub level: BlockLevel,
    /// Monotonic open order; GC victim selection breaks score ties toward
    /// the oldest block (FIFO) so eviction pressure rotates over the region
    /// instead of hammering one plane.
    opened_seq: u64,
    /// Write timestamp per subpage slot (page-major). 0 = never written.
    sub_written_ns: Vec<Nanos>,
    /// Whether each page received an intra-page update while in this block.
    page_updated: Vec<bool>,
    subpages_per_page: u32,
}

impl BlockMeta {
    fn new(
        addr: BlockAddr,
        level: BlockLevel,
        opened_seq: u64,
        pages: u32,
        subpages_per_page: u32,
    ) -> Self {
        BlockMeta {
            addr,
            level,
            opened_seq,
            sub_written_ns: vec![0; (pages * subpages_per_page) as usize],
            page_updated: vec![false; pages as usize],
            subpages_per_page,
        }
    }

    /// Monotonic open order of this block (smaller = opened earlier).
    pub fn opened_seq(&self) -> u64 {
        self.opened_seq
    }

    /// Records a program covering `[start, start+count)` of `page` at `now`.
    ///
    /// A second or later program op on a page is by definition an intra-page
    /// update under IPU (the page holds versions of one chunk's data), so the
    /// caller tells us whether this program was a follow-up.
    pub fn note_program(&mut self, page: u32, start: u8, count: u8, now: Nanos, follow_up: bool) {
        for s in start..start + count {
            self.sub_written_ns[(page * self.subpages_per_page + s as u32) as usize] = now.max(1);
        }
        if follow_up {
            self.page_updated[page as usize] = true;
        }
    }

    /// Timestamp the subpage was written (0 = never).
    pub fn written_at(&self, page: u32, subpage: u8) -> Nanos {
        self.sub_written_ns[(page * self.subpages_per_page + subpage as u32) as usize]
    }

    /// Whether `page` received an intra-page update while resident here.
    pub fn page_updated(&self, page: u32) -> bool {
        self.page_updated[page as usize]
    }

    /// Restores one subpage's bookkeeping from a durable (OOB) record during
    /// power-loss reconstruction. `written_ns` is the timestamp as persisted
    /// (already clamped non-zero at program time).
    pub fn restore_program(&mut self, page: u32, subpage: u8, written_ns: Nanos, follow_up: bool) {
        self.sub_written_ns[(page * self.subpages_per_page + subpage as u32) as usize] = written_ns;
        if follow_up {
            self.page_updated[page as usize] = true;
        }
    }

    /// Number of pages tracked.
    pub fn page_count(&self) -> u32 {
        self.page_updated.len() as u32
    }
}

/// Registry of in-use blocks and their metadata, keyed by dense block index.
#[derive(Debug, Clone, Default)]
pub struct CacheMeta {
    blocks: BTreeMap<u64, BlockMeta>,
    next_seq: u64,
}

impl CacheMeta {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a freshly-opened block at `level`.
    pub fn open_block(
        &mut self,
        block_idx: u64,
        addr: BlockAddr,
        level: BlockLevel,
        pages: u32,
        subpages_per_page: u32,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let prev = self.blocks.insert(
            block_idx,
            BlockMeta::new(addr, level, seq, pages, subpages_per_page),
        );
        debug_assert!(prev.is_none(), "block {addr} opened twice");
    }

    /// Removes a block's metadata (called at erase).
    pub fn close_block(&mut self, block_idx: u64) -> Option<BlockMeta> {
        self.blocks.remove(&block_idx)
    }

    /// Re-registers a block with its *original* open sequence number during
    /// power-loss reconstruction (ISR GC tie-breaking depends on open order,
    /// so rebuilt metadata must preserve it). Does not advance `next_seq`;
    /// callers finish with [`CacheMeta::set_next_seq`]. Returns the freshly
    /// inserted metadata so callers can replay per-subpage records without a
    /// second (fallible) lookup.
    pub fn restore_block(
        &mut self,
        block_idx: u64,
        addr: BlockAddr,
        level: BlockLevel,
        opened_seq: u64,
        pages: u32,
        subpages_per_page: u32,
    ) -> &mut BlockMeta {
        let meta = BlockMeta::new(addr, level, opened_seq, pages, subpages_per_page);
        match self.blocks.entry(block_idx) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                debug_assert!(false, "block {addr} restored twice");
                e.insert(meta);
                e.into_mut()
            }
            std::collections::btree_map::Entry::Vacant(v) => v.insert(meta),
        }
    }

    /// Sets the next open sequence number (power-loss reconstruction: one
    /// past the largest restored `opened_seq`).
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    pub fn get(&self, block_idx: u64) -> Option<&BlockMeta> {
        self.blocks.get(&block_idx)
    }

    pub fn get_mut(&mut self, block_idx: u64) -> Option<&mut BlockMeta> {
        self.blocks.get_mut(&block_idx)
    }

    /// Level of a block, if tracked.
    pub fn level(&self, block_idx: u64) -> Option<BlockLevel> {
        self.blocks.get(&block_idx).map(|m| m.level)
    }

    /// Iterates `(block_idx, meta)` over all in-use blocks.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &BlockMeta)> {
        self.blocks.iter().map(|(&i, m)| (i, m))
    }

    /// Number of in-use blocks tracked.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// In-use blocks in the SLC cache (level above `HighDensity`).
    pub fn slc_blocks(&self) -> impl Iterator<Item = (u64, &BlockMeta)> {
        self.iter().filter(|(_, m)| m.level.is_slc())
    }

    /// In-use blocks in the MLC region.
    pub fn mlc_blocks(&self) -> impl Iterator<Item = (u64, &BlockMeta)> {
        self.iter().filter(|(_, m)| !m.level.is_slc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> BlockAddr {
        BlockAddr::new(0, 0, 0, 0, 7)
    }

    #[test]
    fn open_close_round_trip() {
        let mut c = CacheMeta::new();
        c.open_block(7, addr(), BlockLevel::Work, 4, 4);
        assert_eq!(c.level(7), Some(BlockLevel::Work));
        assert_eq!(c.len(), 1);
        let meta = c.close_block(7).unwrap();
        assert_eq!(meta.addr, addr());
        assert!(c.is_empty());
        assert!(c.close_block(7).is_none());
    }

    #[test]
    fn program_records_time_and_update_flag() {
        let mut c = CacheMeta::new();
        c.open_block(7, addr(), BlockLevel::Monitor, 4, 4);
        let m = c.get_mut(7).unwrap();
        m.note_program(2, 0, 2, 1000, false);
        assert_eq!(m.written_at(2, 0), 1000);
        assert_eq!(m.written_at(2, 1), 1000);
        assert_eq!(m.written_at(2, 2), 0);
        assert!(!m.page_updated(2));

        m.note_program(2, 2, 1, 2000, true);
        assert!(m.page_updated(2));
        assert_eq!(m.written_at(2, 2), 2000);
        // Earlier subpages keep their original write time.
        assert_eq!(m.written_at(2, 0), 1000);
    }

    #[test]
    fn time_zero_writes_are_still_marked_written() {
        let mut c = CacheMeta::new();
        c.open_block(7, addr(), BlockLevel::Work, 2, 4);
        let m = c.get_mut(7).unwrap();
        m.note_program(0, 0, 1, 0, false);
        assert!(
            m.written_at(0, 0) > 0,
            "written_at must distinguish written from never"
        );
    }

    #[test]
    fn restore_preserves_open_order_and_flags() {
        let mut c = CacheMeta::new();
        c.restore_block(7, addr(), BlockLevel::Monitor, 41, 4, 4);
        c.set_next_seq(42);
        let m = c.get_mut(7).unwrap();
        m.restore_program(1, 2, 5000, true);
        assert_eq!(m.opened_seq(), 41);
        assert_eq!(m.written_at(1, 2), 5000);
        assert!(m.page_updated(1));
        assert!(!m.page_updated(0));
        // The next freshly-opened block continues the sequence.
        c.open_block(8, BlockAddr::new(0, 0, 0, 0, 8), BlockLevel::Work, 4, 4);
        assert_eq!(c.get(8).unwrap().opened_seq(), 42);
    }

    #[test]
    fn region_filters_split_by_level() {
        let mut c = CacheMeta::new();
        c.open_block(1, BlockAddr::new(0, 0, 0, 0, 1), BlockLevel::Work, 4, 4);
        c.open_block(
            2,
            BlockAddr::new(0, 0, 0, 0, 2),
            BlockLevel::HighDensity,
            8,
            4,
        );
        c.open_block(3, BlockAddr::new(0, 0, 0, 0, 3), BlockLevel::Hot, 4, 4);
        assert_eq!(c.slc_blocks().count(), 2);
        assert_eq!(c.mlc_blocks().count(), 1);
    }
}

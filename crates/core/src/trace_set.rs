//! Shared calibrated request streams: generate each trace once per run.
//!
//! Every cell of the trace × scheme evaluation matrix replays the *same*
//! calibrated stream, yet the original runners called
//! [`generate_trace`] per cell — a
//! 6-trace × 4-scheme matrix synthesized each multi-million-request trace
//! four times, and the P/E sweep multiplied that again per aging point.
//! A [`TraceSet`] generates each `(spec, scale)` stream exactly once and
//! hands out cheap [`Arc`] clones, so figure regeneration spends its wall
//! time simulating instead of re-deriving identical inputs.

use std::sync::Arc;

use ipu_trace::{IoRequest, PaperTrace};

use crate::config::ExperimentConfig;
use crate::experiment::generate_trace;
use crate::parallel::parallel_map;

/// The calibrated request streams of one experiment run, generated once and
/// shared (`Arc<[IoRequest]>`) across every scheme / queue-depth / P/E cell.
///
/// A set is tied to the `(traces, scale)` of the config it was generated
/// from; replay-side knobs (schemes, P/E cycles, fault profiles) do not
/// affect the streams, so one set serves a whole P/E sweep.
#[derive(Debug, Clone)]
pub struct TraceSet {
    scale: f64,
    entries: Vec<(PaperTrace, Arc<[IoRequest]>)>,
}

impl TraceSet {
    /// Generates every trace in `cfg.traces` once, using the configured
    /// parallelism (trace synthesis is embarrassingly parallel across traces).
    pub fn generate(cfg: &ExperimentConfig) -> Self {
        Self::generate_with_threads(cfg, cfg.effective_threads())
    }

    /// [`TraceSet::generate`] with an explicit worker count; `threads == 1`
    /// generates strictly sequentially (the profile harness uses this so
    /// wall-clock attribution is not polluted by sibling generators).
    pub fn generate_with_threads(cfg: &ExperimentConfig, threads: usize) -> Self {
        let streams = parallel_map(cfg.traces.clone(), threads, |trace| {
            Arc::<[IoRequest]>::from(generate_trace(cfg, trace))
        });
        TraceSet {
            scale: cfg.scale,
            entries: cfg.traces.iter().copied().zip(streams).collect(),
        }
    }

    /// The scale the set was generated at.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Traces present, in generation order.
    pub fn traces(&self) -> impl Iterator<Item = PaperTrace> + '_ {
        self.entries.iter().map(|&(t, _)| t)
    }

    /// The shared stream for `trace`.
    ///
    /// # Panics
    /// If `trace` was not in the config this set was generated from — the
    /// runners require every requested trace to be generated up front so no
    /// path silently regenerates one.
    pub fn get(&self, trace: PaperTrace) -> Arc<[IoRequest]> {
        self.entries
            .iter()
            .find(|&&(t, _)| t == trace)
            .map(|(_, reqs)| Arc::clone(reqs))
            .unwrap_or_else(|| {
                // ipu-lint: allow(panic-reachability) — documented fail-fast for misgenerated experiments; reached only via the method-name fallback (no FTL path holds a TraceSet)
                panic!(
                    "TraceSet generated without {trace}; regenerate it from a \
                     config containing every trace the experiment runs"
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::scaled(0.002);
        cfg.traces = vec![PaperTrace::Ts0, PaperTrace::Lun2];
        cfg.threads = 2;
        cfg
    }

    #[test]
    fn streams_match_direct_generation_and_are_shared() {
        let cfg = tiny_cfg();
        let set = TraceSet::generate(&cfg);
        assert_eq!(set.traces().count(), 2);
        assert_eq!(set.scale(), cfg.scale);
        for &trace in &cfg.traces {
            let shared = set.get(trace);
            assert_eq!(&*shared, &generate_trace(&cfg, trace)[..]);
            // Two gets return the same allocation, not a regeneration.
            assert!(Arc::ptr_eq(&shared, &set.get(trace)));
        }
    }

    #[test]
    #[should_panic(expected = "TraceSet generated without")]
    fn missing_trace_is_a_loud_error() {
        let set = TraceSet::generate(&tiny_cfg());
        set.get(PaperTrace::Usr0);
    }
}

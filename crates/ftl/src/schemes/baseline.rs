//! The `Baseline` scheme: dynamic page-level mapping without partial
//! programming.
//!
//! Every write chunk — even a single 4 KB subpage — consumes a whole fresh
//! 16 KB SLC page in one program operation, so small writes leave the rest of
//! the page permanently unusable until GC (the paper's "page fragmentation":
//! ~52.8% utilization in Figure 9). GC is conventional greedy at page
//! granularity, and all valid data found in a victim is evicted to the MLC
//! region, as a plain SLC write cache does.

use ipu_flash::{FlashDevice, Nanos, MAX_SUBPAGES_PER_PAGE};
use ipu_trace::IoRequest;

use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::memory::MappingMemory;
use crate::ops::{FlashOpKind, OpBatch, RoundOrigin};
use crate::stats::FtlStats;
use crate::types::{BlockLevel, Lsn};

use super::common::FtlCore;
use super::FtlScheme;

/// Page-mapped SLC-cache FTL without partial programming.
#[derive(Debug)]
pub struct BaselineFtl {
    core: FtlCore,
}

impl BaselineFtl {
    pub fn new(dev: &mut FlashDevice, cfg: FtlConfig) -> Self {
        BaselineFtl {
            core: FtlCore::new(dev, cfg),
        }
    }

    fn write_chunk(
        &mut self,
        lsns: &[Lsn],
        now: Nanos,
        dev: &mut FlashDevice,
        batch: &mut OpBatch,
    ) -> Result<(), FtlError> {
        // A fresh page per chunk, always; no partial programming.
        let (ppa, _) = self.core.take_host_page(dev, BlockLevel::Work, batch)?;
        self.core
            .program_group(dev, ppa, 0, lsns, FlashOpKind::HostProgram, now, batch)
    }

    fn run_gc(&mut self, now: Nanos, dev: &mut FlashDevice, batch: &mut OpBatch) {
        let mut rounds = 0;
        while self.core.slc_gc_needed()
            && self.core.slc_gc_gate_open(now)
            && rounds < self.core.cfg.gc_rounds_per_write
        {
            let _span = ipu_obs::span(ipu_obs::Phase::Gc);
            batch.begin_background_round(RoundOrigin::Gc);
            rounds += 1;
            let cost_before = batch.total_latency_sum();
            let victim = self.core.select_slc_victim_greedy();
            let Some(victim) = victim else { break };
            let Some(victim_addr) = self.core.meta.get(victim).map(|m| m.addr) else {
                break;
            };
            let mut groups = std::mem::take(&mut self.core.gc_groups);
            let groups_cap = groups.capacity();
            self.core
                .collect_victim_groups_into(dev, victim, &mut groups);
            let mut aborted = false;
            for group in &groups {
                // Plain cache eviction: all valid data leaves the SLC region.
                if self
                    .core
                    .relocate_group(dev, victim_addr, group, BlockLevel::HighDensity, now, batch)
                    .is_err()
                {
                    aborted = true;
                    break;
                }
            }
            if groups.capacity() != groups_cap {
                self.core.stats.scratch_grows += 1;
            }
            self.core.gc_groups = groups;
            if aborted {
                // Never erase a partially-relocated victim.
                break;
            }
            self.core.erase_victim(dev, victim, now, batch);
            let round_cost = batch.total_latency_sum() - cost_before;
            self.core.finish_slc_gc_round(now, round_cost);
        }
        self.core.run_mlc_gc_if_needed(dev, now, batch);
        self.core.run_wear_leveling_if_due(dev, now, batch);
        self.core.run_scrub_if_due(dev, now, batch);
    }
}

impl FtlScheme for BaselineFtl {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn on_write_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    ) {
        self.core.begin_request(now);
        self.core.stats.host_write_requests += 1;
        for (start, len) in self.core.chunk_spans(req) {
            // A chunk is a contiguous LSN run of at most one page: stage it in
            // a stack buffer so the write path performs no heap allocation.
            let mut chunk = [0 as Lsn; MAX_SUBPAGES_PER_PAGE];
            for (i, slot) in chunk[..len as usize].iter_mut().enumerate() {
                *slot = start + i as u64;
            }
            if let Err(e) = self.write_chunk(&chunk[..len as usize], now, dev, out) {
                self.core.note_write_failure(&e, out);
            }
            self.run_gc(now, dev, out);
        }
    }

    fn on_read_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    ) {
        self.core.begin_request(now);
        if let Err(e) = self.core.host_read(req, dev, out) {
            self.core.note_read_failure(&e, out);
        }
    }

    fn power_cycle(&mut self, dev: &FlashDevice) {
        self.core.rebuild_from_flash(dev);
    }

    fn stats(&self) -> &FtlStats {
        &self.core.stats
    }

    fn mapping_memory(&self, _dev: &FlashDevice) -> MappingMemory {
        MappingMemory::baseline(self.core.logical_pages())
    }

    fn core(&self) -> &FtlCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut FtlCore {
        &mut self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_flash::{DeviceConfig, SubpageState};
    use ipu_trace::OpKind;

    fn setup() -> (BaselineFtl, FlashDevice) {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let ftl = BaselineFtl::new(&mut dev, FtlConfig::default());
        (ftl, dev)
    }

    fn w(offset: u64, size: u32) -> IoRequest {
        IoRequest::new(0, OpKind::Write, offset, size)
    }

    #[test]
    fn small_write_burns_a_whole_page() {
        let (mut ftl, mut dev) = setup();
        let batch = ftl.on_write(&w(0, 4096), 1, &mut dev);
        assert_eq!(batch.count(FlashOpKind::HostProgram), 1);
        let spa = ftl.core.map.lookup(0).unwrap();
        let page = dev.block(spa.ppa.block_addr()).page(spa.ppa.page);
        // One subpage programmed, three stranded free — but the page can never
        // be programmed again under Baseline (next chunk gets a new page).
        assert_eq!(page.count(SubpageState::Valid), 1);
        assert_eq!(page.program_ops(), 1);

        ftl.on_write(&w(1 << 20, 4096), 2, &mut dev);
        let spa2 = ftl.core.map.lookup((1 << 20) / 4096).unwrap();
        assert_ne!(spa.ppa, spa2.ppa, "Baseline must not pack into used pages");
    }

    #[test]
    fn update_invalidates_previous_version() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 8192), 1, &mut dev);
        let old = ftl.core.map.lookup(0).unwrap();
        ftl.on_write(&w(0, 8192), 2, &mut dev);
        let new = ftl.core.map.lookup(0).unwrap();
        assert_ne!(old, new);
        assert_eq!(
            dev.block(old.ppa.block_addr())
                .page(old.ppa.page)
                .subpage(old.subpage),
            SubpageState::Invalid
        );
    }

    #[test]
    fn sustained_writes_trigger_gc_and_eviction_to_mlc() {
        let (mut ftl, mut dev) = setup();
        // 2 SLC blocks × 4 pages; write far more chunks than that. Half the
        // LSNs are rewritten so GC finds invalid pages.
        for round in 0..10u64 {
            for slot in 0..4u64 {
                ftl.on_write(&w(slot * 65536, 4096), round * 10 + slot, &mut dev);
            }
        }
        let stats = ftl.stats();
        assert!(stats.gc_runs_slc > 0, "GC never ran");
        assert!(stats.gc_victim_total_subpages > 0);
        // Everything the host wrote landed in SLC first (the cache absorbed
        // the writes); eviction happened via GC.
        assert!(stats.host_subpages_to_slc > 0);
        assert!(dev.wear().totals().slc_erases > 0);
        // Read-your-writes still holds for every live slot.
        for slot in 0..4u64 {
            assert!(ftl.core.map.lookup(slot * 16).is_some(), "slot {slot} lost");
        }
    }

    #[test]
    fn page_utilization_reflects_fragmentation() {
        let (mut ftl, mut dev) = setup();
        // All 4 KB writes: pages are quarter-used, utilization ~25%.
        for i in 0..40u64 {
            ftl.on_write(&w(i * 65536, 4096), i, &mut dev);
        }
        let stats = ftl.stats();
        assert!(stats.gc_runs_slc > 0);
        let util = stats.gc_page_utilization();
        assert!(
            util < 0.30,
            "4K-only workload must fragment pages, got {util}"
        );
    }

    #[test]
    fn static_wear_leveling_migrates_cold_blocks() {
        // Aggressive thresholds so the tiny workload triggers a migration:
        // check after every erase, and call any 1-cycle gap significant.
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        // A roomier SLC region (8 blocks) so the cold block is not an active
        // and can squat while the churn wears out its neighbours.
        let cfg = FtlConfig {
            slc_ratio: 0.25,
            wear_leveling: crate::wear_leveling::WearLevelingConfig {
                enabled: true,
                check_interval_erases: 1,
                wear_gap_threshold: 1,
            },
            ..FtlConfig::default()
        };
        let mut ftl = BaselineFtl::new(&mut dev, cfg);
        // Slot 0 is written once (cold, squats on its block); other slots
        // churn, racking up erases elsewhere and widening the wear gap.
        ftl.on_write(&w(0, 4096), 1, &mut dev);
        for round in 0..120u64 {
            for slot in 1..5u64 {
                let now = (round * 4 + slot) * 20_000_000; // 20 ms apart
                ftl.on_write(&w(slot * 65536, 4096), now, &mut dev);
            }
        }
        assert!(
            ftl.stats().wear_leveling_migrations > 0,
            "wear gap never triggered a migration"
        );
        // Cold data survives the migrations.
        assert!(ftl.core.map.lookup(0).is_some());
    }

    #[test]
    fn wear_leveling_disabled_never_migrates() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let cfg = FtlConfig {
            wear_leveling: crate::wear_leveling::WearLevelingConfig {
                enabled: false,
                check_interval_erases: 1,
                wear_gap_threshold: 1,
            },
            ..FtlConfig::default()
        };
        let mut ftl = BaselineFtl::new(&mut dev, cfg);
        for round in 0..40u64 {
            for slot in 0..5u64 {
                let now = (round * 5 + slot) * 20_000_000;
                ftl.on_write(&w(slot * 65536, 4096), now, &mut dev);
            }
        }
        assert_eq!(ftl.stats().wear_leveling_migrations, 0);
    }

    #[test]
    fn mapping_memory_is_page_level_only() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 16384), 1, &mut dev);
        ftl.on_write(&w(65536, 4096), 2, &mut dev);
        let m = ftl.mapping_memory(&dev);
        assert_eq!(m.second_level_bytes, 0);
        assert_eq!(m.label_bytes, 0);
        // Full-space table: 32 blocks × 8 MLC pages × 8 B per entry.
        assert_eq!(m.page_table_bytes, 32 * 8 * 8);
    }
}

//! Fixture: panic-reachability violations — every panicking token lives in a
//! method of an `impl FtlScheme` block, the per-request host dispatch seed.

pub struct Fixture;

impl FtlScheme for Fixture {
    fn bad_unwrap(&mut self, v: Option<u32>) -> u32 {
        v.unwrap()
    }

    fn bad_expect(&mut self, v: Option<u32>) -> u32 {
        v.expect("must exist")
    }

    fn bad_macros(&mut self, x: u32) -> u32 {
        if x > 3 {
            panic!("boom");
        }
        unreachable!()
    }

    fn bad_index_in_match(&mut self, v: &[u32], flag: bool) -> u32 {
        match flag {
            true => v[0],
            false => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and no crates.io mirror, so
//! the workspace vendors a minimal serialization framework under the same
//! crate name. It models data as a JSON-like [`Value`] tree: `Serialize`
//! lowers a type into a `Value`, `Deserialize` rebuilds it from one, and the
//! companion `serde_json` crate renders/parses the tree as JSON text.
//!
//! Only the surface the workspace actually uses is implemented: derived
//! structs with named fields (including generics and `#[serde(default)]`),
//! enums with unit and struct variants (externally tagged, matching real
//! serde's default representation), and the primitive/container impls below.

#![allow(clippy::all)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the intermediate representation between typed data
/// and serialized text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (u128 so `LatencyStats::sum_ns` round-trips).
    UInt(u128),
    /// Negative integers.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved so output is stable and readable.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` for `{ty}`"))
    }

    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error(format!("unknown variant `{variant}` for `{ty}`"))
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error(format!("expected {expected}, found {kind}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod ser {
    pub use crate::{Error, Serialize};
}

pub mod de {
    pub use crate::{Deserialize, Error};

    /// Owned deserialization marker; equivalent to `Deserialize` here.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u128,
                    other => return Err(Error::type_mismatch("unsigned integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i128;
                if n >= 0 { Value::UInt(n as u128) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i128 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i128::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of i128 range")))?,
                    other => return Err(Error::type_mismatch("integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::type_mismatch("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Deserialize for &'static str {
    /// Leaks the parsed string. Real serde compiles `&'static str` fields and
    /// fails only on non-static input; the shim trades a small leak on the
    /// rare deserialize-a-scorecard path for the same source compatibility.
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::type_mismatch("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error::custom(format!(
                        "expected tuple of length {LEN}, got {}", items.len()
                    ))),
                    other => Err(Error::type_mismatch("tuple (array)", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

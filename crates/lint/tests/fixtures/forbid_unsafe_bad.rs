//! Fixture: a crate root missing `#![forbid(unsafe_code)]` (R5).

pub fn noop() {}

//! The event-heap replay core against its oracle.
//!
//! Two pins from ISSUE 9: (1) with the default timing model the event core is
//! **bit-identical** to the retained inline engine (`replay_oracle`) — checked
//! as full `SimReport` JSON equality over random small traces × all four
//! schemes; (2) preemptible GC strictly improves write p999 over
//! run-to-completion GC on a bursty write trace.

use ipu_ftl::SchemeKind;
use ipu_sim::{replay, replay_oracle, GcMode, ReplayConfig, TimingConfig};
use ipu_trace::{IoRequest, OpKind};
use proptest::prelude::*;

/// Builds a trace from proptest raw material: per request a time gap, an
/// op selector, a slot in a small working set (overwrites force GC), and a
/// size class.
fn build_trace(raw: &[(u64, u8, u64, u8)]) -> Vec<IoRequest> {
    let mut t = 0u64;
    raw.iter()
        .map(|&(gap, op, slot, size)| {
            t += gap;
            let op = if op % 4 == 3 {
                OpKind::Read
            } else {
                OpKind::Write
            };
            IoRequest::new(t, op, slot * 65536, 4096 * (1 + size as u32 % 4))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit-identity: the event core's `SimReport` serializes to exactly the
    /// oracle's JSON for every scheme on random small traces.
    #[test]
    fn event_core_report_is_bit_identical_to_oracle(
        raw in proptest::collection::vec(
            (0u64..200_000, 0u8..4, 0u64..14, 0u8..4),
            1..80,
        )
    ) {
        let reqs = build_trace(&raw);
        for scheme in SchemeKind::all_extended() {
            let cfg = ReplayConfig::small_for_tests(scheme);
            let ours = serde_json::to_string(&replay(&cfg, &reqs, "eq")).unwrap();
            let oracle = serde_json::to_string(&replay_oracle(&cfg, &reqs, "eq")).unwrap();
            prop_assert_eq!(&ours, &oracle, "{} diverged from oracle", scheme);
        }
    }
}

/// A write burst dense enough that GC rounds are in flight when host writes
/// arrive: overwrites within a small working set at tight spacing.
fn bursty_writes(n: u64, spacing_ns: u64) -> Vec<IoRequest> {
    (0..n)
        .map(|i| IoRequest::new(i * spacing_ns, OpKind::Write, (i % 10) * 65536, 8192))
        .collect()
}

/// Preemptible GC strictly improves the write-latency tail: under
/// run-to-completion a host write arriving mid-round waits for the whole
/// remainder, under preemption at most one pulse.
#[test]
fn preemptible_gc_strictly_improves_p999_over_run_to_completion() {
    // Spaced so the device keeps up between GC rounds: the tail is then the
    // GC-interference wait, not unbounded queue growth. A short erase keeps
    // rounds genuinely multi-pulse (many relocation reads/programs + erase),
    // so "one pulse" and "whole round" are far apart.
    let reqs = bursty_writes(600, 1_000_000);
    let mut preempt_cfg = ReplayConfig::small_for_tests(SchemeKind::Baseline);
    preempt_cfg.device.timing.erase_ms = 2.0;
    preempt_cfg.timing = TimingConfig {
        gc_mode: GcMode::Preemptible,
        suspend_granularity_ns: 0,
    };
    let mut rtc_cfg = preempt_cfg.clone();
    rtc_cfg.timing.gc_mode = GcMode::RunToCompletion;

    let preempt = replay(&preempt_cfg, &reqs, "bursty");
    let rtc = replay(&rtc_cfg, &reqs, "bursty");

    // Same work reaches the device either way; only the interleaving moves.
    assert_eq!(preempt.ftl, rtc.ftl);
    assert_eq!(preempt.busy.background_ns, rtc.busy.background_ns);

    let p_tail = preempt.write_latency.percentile_ns(99.9);
    let r_tail = rtc.write_latency.percentile_ns(99.9);
    assert!(
        p_tail < r_tail,
        "preemptible p999 {p_tail} must be strictly below run-to-completion {r_tail}"
    );
    // The worst-case wait shrinks too: one pulse versus a whole round.
    assert!(preempt.write_latency.max_ns() < rtc.write_latency.max_ns());
}

/// `suspend_granularity_ns = 0` (the default) is bit-identical to the legacy
/// model; a positive granularity only ever delays reads.
#[test]
fn zero_suspend_granularity_preserves_legacy_timings() {
    let mut reqs = bursty_writes(200, 12_000);
    let base_t = reqs.last().unwrap().timestamp_ns;
    for i in 0..120u64 {
        reqs.push(IoRequest::new(
            base_t + i * 3_000,
            OpKind::Read,
            (i % 10) * 65536,
            4096,
        ));
    }

    let default_cfg = ReplayConfig::small_for_tests(SchemeKind::Ipu);
    let mut zero_cfg = default_cfg.clone();
    zero_cfg.timing.suspend_granularity_ns = 0;
    let mut pos_cfg = default_cfg.clone();
    pos_cfg.timing.suspend_granularity_ns = 20_000;

    let default_rep = serde_json::to_string(&replay(&default_cfg, &reqs, "s")).unwrap();
    let zero_rep = serde_json::to_string(&replay(&zero_cfg, &reqs, "s")).unwrap();
    assert_eq!(default_rep, zero_rep, "explicit 0 must equal the default");

    let legacy = replay(&default_cfg, &reqs, "s");
    let suspended = replay(&pos_cfg, &reqs, "s");
    // Suspension never accelerates reads and never touches the write channel.
    assert!(suspended.read_latency.sum_ns() >= legacy.read_latency.sum_ns());
    assert_eq!(
        suspended.write_latency.sum_ns(),
        legacy.write_latency.sum_ns()
    );
    assert_eq!(suspended.ftl, legacy.ftl);
}

/// Round tagging invariants across schemes: host ops always carry round 0,
/// background ops a valid 1-based round whose origin is recorded, and round
/// ids are non-decreasing within a batch.
#[test]
fn op_batches_carry_wellformed_round_tags() {
    use ipu_ftl::{FtlConfig, OpBatch};

    for scheme in SchemeKind::all_extended() {
        let cfg = ReplayConfig::small_for_tests(scheme);
        let mut dev = ipu_flash::FlashDevice::new(cfg.device.clone());
        let mut ftl = scheme.build(&mut dev, FtlConfig::default());
        let mut batch = OpBatch::new();
        let mut saw_background = false;
        for req in bursty_writes(300, 10_000) {
            batch.clear();
            ftl.on_write_into(&req, req.timestamp_ns, &mut dev, &mut batch);
            let mut last_round = 0u32;
            for op in &batch.ops {
                if op.kind.is_host() {
                    assert_eq!(op.round, 0, "{scheme}: host op tagged round {}", op.round);
                } else if op.round > 0 {
                    saw_background = true;
                    assert!(
                        batch.round_origin(op.round).is_some(),
                        "{scheme}: background op in unrecorded round {}",
                        op.round
                    );
                    assert!(
                        op.round >= last_round,
                        "{scheme}: round ids must be non-decreasing"
                    );
                    last_round = op.round;
                }
            }
            assert!(batch.rounds_used() as usize == batch.round_origins.len());
        }
        assert!(saw_background, "{scheme}: workload never triggered GC");
    }
}

//! Fixture: R7 (missing-doc) violations, linted as the scheme trait file.

pub trait FixtureScheme {
    /// Documented method.
    fn documented(&self) -> u32;

    fn undocumented(&self) -> u32;

    fn undocumented_with_default_body(&self) -> u32 {
        0
    }
}

pub enum FixtureKind {
    /// Documented variant.
    Documented,
    Undocumented,
}

#![forbid(unsafe_code)]
//! `ipu-lint` — project-specific static analysis for the workspace.
//!
//! The crates in this workspace carry invariants that `rustc`/`clippy` cannot
//! see: the replay cache promises bit-identical re-runs, the perf gate
//! compares exact counter fingerprints, and the power-loss oracle assumes
//! host-reachable FTL paths never panic. This crate enforces those invariants
//! with two layers of analysis over a hand-rolled, comment- and string-aware
//! token stream (see [`lexer`]):
//!
//! * **lexical rules** ([`rules`]) — per-file token-pattern checks;
//! * **semantic rules** — built on the token-tree layer ([`ttree`]): wildcard
//!   arms on growth enums ([`exhaustive_match`]), merge/serialization
//!   completeness of conservation ledgers ([`merge_complete`]),
//!   order-sensitive reductions over unordered containers ([`nondet_reduce`]),
//!   and — the one rule that spans files — transitive panic reachability from
//!   host-driven seeds over the workspace call graph ([`callgraph`]).
//!
//! The engine runs in two phases: phase A lexes, tree-indexes and rule-checks
//! every file independently (parallelized with `ipu_core::parallel_map`,
//! which preserves input order, so finding order is identical at any thread
//! count); phase B assembles the call graph from phase A's per-fn facts and
//! runs `panic-reachability`. Findings are globally sorted by
//! `(file, line, rule)`.
//!
//! Findings are suppressible only with an inline comment carrying a reason:
//!
//! ```text
//! // ipu-lint: allow(float-eq) — sentinel compared exactly, never computed
//! ```
//!
//! placed on the offending line or the line directly above it. An allow
//! without a reason, or naming an unknown rule, is itself a finding and
//! suppresses nothing.

pub mod callgraph;
pub mod exhaustive_match;
pub mod lexer;
pub mod merge_complete;
pub mod nondet_reduce;
pub mod rules;
pub mod ttree;

use lexer::{lex, Comment, Token};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use ttree::{Item, TokenTreeIndex};

/// One rule violation (or meta-violation) at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `panic-reachability` (see [`rules::RULE_IDS`]),
    /// or one of the meta rules `allow-missing-reason` / `allow-unknown-rule`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes, e.g. `crates/ftl/src/error.rs`.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    /// Directory name under `crates/`, e.g. `ftl`.
    pub crate_name: &'a str,
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Final path component, e.g. `main.rs`.
    pub file_name: &'a str,
    /// Whether this file is a crate root (`src/lib.rs` or `src/main.rs`).
    pub is_crate_root: bool,
    /// The file's token stream (comments and string contents already removed).
    pub tokens: &'a [Token],
    /// Comment side channel, in source order.
    pub comments: &'a [Comment],
    /// Parallel to `tokens`: `true` where the token sits inside a
    /// `#[cfg(test)]` item.
    pub is_test: &'a [bool],
    /// Matching-delimiter index over `tokens`.
    pub tree: &'a TokenTreeIndex,
    /// Extracted items (fns with owners, structs, enums, impls, …).
    pub items: &'a [Item],
}

/// One source file queued for analysis. Fixture tests construct these
/// directly; [`lint_workspace`] builds them by walking `crates/*/src`.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Directory name under `crates/`, e.g. `ftl`.
    pub crate_name: String,
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Whether this file is a crate root (`src/lib.rs` or `src/main.rs`).
    pub is_crate_root: bool,
    /// Full source text.
    pub src: String,
}

/// Result of linting one file or a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of findings silenced by a valid allow comment.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// A parsed `// ipu-lint: allow(<rule>) — <reason>` comment.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    line: u32,
    valid: bool,
}

/// Phase-A output for one file: raw findings (pre-suppression), meta
/// findings (never suppressible), parsed allows, and per-fn call-graph facts.
struct FileAnalysis {
    rel_path: String,
    findings: Vec<Finding>,
    meta: Vec<Finding>,
    allows: Vec<Allow>,
    facts: Vec<callgraph::FnFacts>,
}

/// Marker that introduces an allow comment.
const ALLOW_MARKER: &str = "ipu-lint:";

/// Phase A: lex, tree-index, run the per-file rules, parse allows, and
/// extract call-graph facts for one file.
fn analyze_file(file: &SourceFile) -> FileAnalysis {
    let lexed = lex(&file.src);
    let tree = TokenTreeIndex::build(&lexed.tokens);
    let items = ttree::collect_items(&lexed.tokens, &tree);
    let mask = test_mask(&lexed.tokens);
    let file_name = file.rel_path.rsplit('/').next().unwrap_or(&file.rel_path);
    let ctx = FileCtx {
        crate_name: &file.crate_name,
        rel_path: &file.rel_path,
        file_name,
        is_crate_root: file.is_crate_root,
        tokens: &lexed.tokens,
        comments: &lexed.comments,
        is_test: &mask,
        tree: &tree,
        items: &items,
    };

    let mut findings = Vec::new();
    rules::run_all(&ctx, &mut findings);

    let mut meta = Vec::new();
    let allows = parse_allows(&lexed.comments, &file.rel_path, &mut meta);

    let match_spans = exhaustive_match::match_bodies(&lexed.tokens, &tree);
    let mut facts = Vec::new();
    for def in ttree::collect_fns(&lexed.tokens, &tree) {
        if def.is_test {
            continue;
        }
        let (calls, panics) = callgraph::scan_body(&lexed.tokens, def.body, &match_spans);
        facts.push(callgraph::FnFacts {
            def,
            file: file.rel_path.clone(),
            crate_name: file.crate_name.clone(),
            calls,
            panics,
        });
    }

    FileAnalysis {
        rel_path: file.rel_path.clone(),
        findings,
        meta,
        allows,
        facts,
    }
}

/// Lints a set of source files: phase A per-file (parallel, order-preserving),
/// phase B workspace call graph, then allow-suppression and the global sort.
/// Output is byte-identical at any `threads` value.
pub fn lint_sources(files: Vec<SourceFile>, threads: usize) -> LintReport {
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    let analyses = ipu_core::parallel_map(files, threads.max(1), |f| analyze_file(&f));

    // Phase B: the cross-file rule. Node order follows file order, which
    // callers keep sorted, so BFS tie-breaks are deterministic.
    let facts: Vec<callgraph::FnFacts> = analyses
        .iter()
        .flat_map(|a| a.facts.iter().cloned())
        .collect();
    let graph = callgraph::CallGraph::build(facts);

    let mut raw: Vec<Finding> = analyses
        .iter()
        .flat_map(|a| a.findings.iter().cloned())
        .collect();
    raw.extend(graph.panic_reachability());

    for f in raw {
        let hit = analyses
            .iter()
            .find(|a| a.rel_path == f.file)
            .map(|a| &a.allows)
            .is_some_and(|allows| {
                allows.iter().any(|a| {
                    a.valid && a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line)
                })
            });
        if hit {
            report.suppressed += 1;
        } else {
            report.findings.push(f);
        }
    }
    for a in &analyses {
        report.findings.extend(a.meta.iter().cloned());
    }
    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    report
}

/// Lints a single file's source text. `rel_path` selects which scoped rules
/// apply (see the scope tables in [`rules`]); fixture tests use this entry
/// point directly to lint files that live outside any real crate. Note that
/// `panic-reachability` runs with only this file's fns as the call graph —
/// cross-file reachability needs [`lint_sources`].
pub fn lint_str(
    crate_name: &str,
    rel_path: &str,
    is_crate_root: bool,
    src: &str,
) -> (Vec<Finding>, usize) {
    let report = lint_sources(
        vec![SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            is_crate_root,
            src: src.to_string(),
        }],
        1,
    );
    (report.findings, report.suppressed)
}

/// Extracts allow comments, emitting `allow-missing-reason` /
/// `allow-unknown-rule` meta findings (never suppressible) for malformed ones.
fn parse_allows(comments: &[Comment], rel_path: &str, meta: &mut Vec<Finding>) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments *describe* the allow syntax; only plain comments
        // can invoke it.
        if c.doc {
            continue;
        }
        let Some(pos) = c.text.find(ALLOW_MARKER) else {
            continue;
        };
        let rest = c.text[pos + ALLOW_MARKER.len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            meta.push(Finding {
                rule: "allow-unknown-rule",
                file: rel_path.to_string(),
                line: c.line,
                message:
                    "malformed ipu-lint comment — expected `ipu-lint: allow(<rule>) — <reason>`"
                        .to_string(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            meta.push(Finding {
                rule: "allow-unknown-rule",
                file: rel_path.to_string(),
                line: c.line,
                message: "unterminated allow(...) in ipu-lint comment".to_string(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        let mut valid = true;
        if !rules::RULE_IDS.contains(&rule.as_str()) {
            meta.push(Finding {
                rule: "allow-unknown-rule",
                file: rel_path.to_string(),
                line: c.line,
                message: format!("allow names unknown rule `{rule}`"),
            });
            valid = false;
        }
        if reason.is_empty() {
            meta.push(Finding {
                rule: "allow-missing-reason",
                file: rel_path.to_string(),
                line: c.line,
                message: format!("allow({rule}) has no reason — the reason is mandatory"),
            });
            valid = false;
        }
        out.push(Allow {
            rule,
            line: c.line,
            valid,
        });
    }
    out
}

/// Computes the `#[cfg(test)]` mask: `mask[i]` is true when token `i` belongs
/// to an item annotated `#[cfg(test)]` (typically a `mod tests { ... }`).
pub fn test_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")")
            && toks[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // The annotated item runs to its brace-matched body (fn/mod/impl/...)
        // or to a `;` at depth 0 (e.g. `use` declarations).
        let mut j = i + 7;
        let mut depth = 0i32;
        let end = loop {
            if j >= toks.len() {
                break toks.len().saturating_sub(1);
            }
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break j,
                "{" if depth == 0 => {
                    let mut b = 0i32;
                    let mut k = j;
                    break loop {
                        if k >= toks.len() {
                            break toks.len() - 1;
                        }
                        if toks[k].is_punct("{") {
                            b += 1;
                        } else if toks[k].is_punct("}") {
                            b -= 1;
                            if b == 0 {
                                break k;
                            }
                        }
                        k += 1;
                    };
                }
                _ => {}
            }
            j += 1;
        };
        for m in &mut mask[i..=end] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Collects the workspace's `crates/*/src/**/*.rs` files under `root`, in
/// sorted order (crate dir, then path) so node ids and finding order are
/// stable.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut sources = Vec::new();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = format!(
                "crates/{}/src/{}",
                crate_name,
                path.strip_prefix(&src_dir)
                    .map(|p| p.to_string_lossy().replace('\\', "/"))
                    .unwrap_or_default()
            );
            let is_crate_root = rel == format!("crates/{crate_name}/src/lib.rs")
                || rel == format!("crates/{crate_name}/src/main.rs");
            sources.push(SourceFile {
                crate_name: crate_name.clone(),
                rel_path: rel,
                is_crate_root,
                src: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(sources)
}

/// Lints every `crates/*/src/**/*.rs` file under `root`.
pub fn lint_workspace(root: &Path, threads: usize) -> io::Result<LintReport> {
    Ok(lint_sources(collect_sources(root)?, threads))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Rendering. Lives in the library (not the CLI) so the byte-identity fixture
// tests can assert on exactly what each --format emits.
// ---------------------------------------------------------------------------

/// Human-readable rendering: one `file:line: [rule] message` line per finding
/// plus a summary line.
pub fn render_human(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "ipu-lint: {} file(s) scanned, {} finding(s), {} suppressed by allow comments\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    ));
    out
}

/// Hand-rolled JSON (the linter is externally dependency-free by design).
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"finding_count\": {}\n}}",
        report.files_scanned,
        report.suppressed,
        report.findings.len()
    ));
    out
}

/// GitHub Actions workflow-command rendering: one `::error` annotation per
/// finding (rendered inline on the PR diff), plus the human summary line as
/// plain text.
pub fn render_github(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "::error file={},line={},title=ipu-lint {}::{}\n",
            gh_escape_prop(&f.file),
            f.line,
            gh_escape_prop(f.rule),
            gh_escape_data(&f.message)
        ));
    }
    out.push_str(&format!(
        "ipu-lint: {} file(s) scanned, {} finding(s), {} suppressed by allow comments\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escaping for workflow-command *data* (the message after `::`).
fn gh_escape_data(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Escaping for workflow-command *properties* (file=..., title=...).
fn gh_escape_prop(s: &str) -> String {
    gh_escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn after() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let live = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .unwrap();
        let unw = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        let after = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("after"))
            .unwrap();
        assert!(!mask[live]);
        assert!(mask[unw]);
        assert!(!mask[after]);
    }

    #[test]
    fn allow_with_reason_suppresses_same_line_and_next_line() {
        let src = "fn f(x: f64) -> bool {\n    // ipu-lint: allow(float-eq) — sentinel compared exactly\n    x == 1.0\n}";
        let (findings, suppressed) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);

        let trailing =
            "fn f(x: f64) -> bool { x == 1.0 } // ipu-lint: allow(float-eq) — sentinel value";
        let (findings, suppressed) = lint_str("core", "crates/core/src/x.rs", false, trailing);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn allow_without_reason_is_a_finding_and_does_not_suppress() {
        let src = "fn f(x: f64) -> bool {\n    // ipu-lint: allow(float-eq)\n    x == 1.0\n}";
        let (findings, suppressed) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert_eq!(suppressed, 0);
        assert!(findings.iter().any(|f| f.rule == "allow-missing-reason"));
        assert!(findings.iter().any(|f| f.rule == "float-eq"));
    }

    #[test]
    fn doc_comments_do_not_act_as_allows() {
        let src = "/// Example: `// ipu-lint: allow(float-eq) — reason`\nfn f(x: f64) -> bool { x == 1.0 }";
        let (findings, suppressed) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert_eq!(suppressed, 0);
        assert!(findings.iter().any(|f| f.rule == "float-eq"));
        assert!(!findings.iter().any(|f| f.rule.starts_with("allow-")));
    }

    #[test]
    fn allow_unknown_rule_is_a_finding() {
        let src = "// ipu-lint: allow(no-such-rule) — whatever\nfn f() {}";
        let (findings, _) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert!(findings.iter().any(|f| f.rule == "allow-unknown-rule"));
    }

    #[test]
    fn retired_no_panic_rule_is_rejected_as_unknown() {
        // `no-panic` was replaced by `panic-reachability`; stale allows must
        // surface as findings, not rot silently.
        let src = "// ipu-lint: allow(no-panic) — stale\nfn f() {}";
        let (findings, _) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert!(findings.iter().any(|f| f.rule == "allow-unknown-rule"));
    }

    #[test]
    fn allow_far_from_violation_does_not_suppress() {
        let src =
            "// ipu-lint: allow(float-eq) — too far away\n\n\nfn f(x: f64) -> bool { x == 1.0 }";
        let (findings, suppressed) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert_eq!(suppressed, 0);
        assert!(findings.iter().any(|f| f.rule == "float-eq"));
    }

    #[test]
    fn findings_sorted_by_file_line_rule() {
        let src = "fn f(x: f64, y: f64) -> bool { x == 1.0 && y != 2.0 }\nfn g(z: f64) -> bool { z == 3.0 }";
        let (findings, _) = lint_str("core", "crates/core/src/x.rs", false, src);
        assert_eq!(findings.len(), 3);
        let lines: Vec<u32> = findings.iter().map(|f| f.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn panic_reachability_allow_suppresses_at_the_panic_site() {
        let src = "impl FtlScheme for Ipu {\n    fn on_write(&mut self) {\n        // ipu-lint: allow(panic-reachability) — slot checked two lines up\n        self.slots.pop().unwrap();\n    }\n}";
        let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/x.rs", false, src);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn github_rendering_escapes_workflow_metachars() {
        let report = LintReport {
            findings: vec![Finding {
                rule: "float-eq",
                file: "crates/core/src/x.rs".to_string(),
                line: 3,
                message: "100% bad: a,b\nnewline".to_string(),
            }],
            suppressed: 0,
            files_scanned: 1,
        };
        let out = render_github(&report);
        // Properties escape `:`/`,`; data (the message) only `%`/CR/LF.
        assert!(out.contains("::error file=crates/core/src/x.rs,line=3,title=ipu-lint float-eq::100%25 bad: a,b%0Anewline"),
            "{out}");
    }
}

//! Bounded event buffer and JSONL export.
//!
//! Point events ([`crate::event`]) land in a process-wide bounded buffer;
//! [`events_jsonl`] and [`snapshot_jsonl`] render events, span stats and
//! counters as one JSON object per line — the flight-recorder format the
//! `profile` CLI command can dump next to `BENCH_profile.json`.

use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::counters::CounterSnapshot;
use crate::span::{ObsSnapshot, Phase};

/// Events kept before new ones are dropped (counted, not silently).
pub const EVENT_CAPACITY: usize = 65_536;

/// One recorded point event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsEvent {
    /// Nanoseconds since [`crate::enable`] last (re)set the epoch.
    pub t_ns: u64,
    pub phase: Phase,
    pub label: String,
    pub value: u64,
}

struct EventBuf {
    epoch: Option<Instant>,
    events: Vec<ObsEvent>,
    dropped: u64,
}

static EVENTS: Mutex<EventBuf> = Mutex::new(EventBuf {
    epoch: None,
    events: Vec::new(),
    dropped: 0,
});

/// Locks the event buffer, recovering from poisoning: a panic on another
/// thread must not take the flight recorder down with it — the buffer holds
/// plain counters and events, valid regardless of where a panic interrupted.
fn lock_events() -> std::sync::MutexGuard<'static, EventBuf> {
    match EVENTS.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub(crate) fn set_epoch() {
    let mut buf = lock_events();
    if buf.epoch.is_none() {
        buf.epoch = Some(Instant::now());
    }
}

pub(crate) fn reset_events() {
    let mut buf = lock_events();
    buf.epoch = None;
    buf.events.clear();
    buf.dropped = 0;
}

pub(crate) fn record_event(phase: Phase, label: &str, value: u64) {
    let mut buf = lock_events();
    if buf.events.len() >= EVENT_CAPACITY {
        buf.dropped += 1;
        return;
    }
    let t_ns = buf
        .epoch
        .map(|e| e.elapsed().as_nanos() as u64)
        .unwrap_or(0);
    buf.events.push(ObsEvent {
        t_ns,
        phase,
        label: label.to_string(),
        value,
    });
}

/// Copies out the buffered events and the dropped-event count.
pub fn events() -> (Vec<ObsEvent>, u64) {
    let buf = lock_events();
    (buf.events.clone(), buf.dropped)
}

/// Renders the buffered events as JSONL: one `{"type":"event",...}` object
/// per line, with a trailing `{"type":"events_dropped",...}` line when the
/// buffer overflowed.
pub fn events_jsonl() -> String {
    let (events, dropped) = events();
    let mut out = String::new();
    for e in &events {
        out.push_str(&jsonl_line("event", &serde::Serialize::to_value(e)));
    }
    if dropped > 0 {
        out.push_str(&jsonl_line(
            "events_dropped",
            &serde::Value::Object(vec![(
                "count".to_string(),
                serde::Value::UInt(dropped as u128),
            )]),
        ));
    }
    out
}

/// Renders a span snapshot plus an optional counter snapshot as JSONL: one
/// `{"type":"span",...}` object per phase and one `{"type":"counter",...}`
/// object per counter.
pub fn snapshot_jsonl(snapshot: &ObsSnapshot, counters: Option<&CounterSnapshot>) -> String {
    let mut out = String::new();
    for p in &snapshot.phases {
        out.push_str(&jsonl_line("span", &serde::Serialize::to_value(p)));
    }
    if let Some(counters) = counters {
        for (name, value) in counters.iter() {
            out.push_str(&jsonl_line(
                "counter",
                &serde::Value::Object(vec![
                    ("name".to_string(), serde::Value::Str(name.to_string())),
                    ("value".to_string(), serde::Value::UInt(value as u128)),
                ]),
            ));
        }
    }
    out
}

/// One JSONL line: the record's fields with a leading `"type"` tag.
fn jsonl_line(kind: &str, value: &serde::Value) -> String {
    let mut fields = vec![("type".to_string(), serde::Value::Str(kind.to_string()))];
    if let serde::Value::Object(pairs) = value {
        fields.extend(pairs.clone());
    }
    let mut line =
        serde_json::to_string(&serde::Value::Object(fields)).expect("obs records always serialize");
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{PhaseStat, TEST_LOCK};

    #[test]
    fn events_record_and_export_as_jsonl() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::enable();
        crate::event(Phase::Gc, "slc_round", 3);
        crate::event(Phase::Migration, "wear_level", 1);
        crate::disable();
        let (events, dropped) = events();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 0);
        assert_eq!(events[0].label, "slc_round");
        assert!(events[0].t_ns <= events[1].t_ns, "event times are ordered");
        let jsonl = events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"event\""));
        assert!(lines[0].contains("\"phase\":\"gc\""));
        assert!(lines[1].contains("\"label\":\"wear_level\""));
        crate::reset();
        assert!(events_jsonl().is_empty());
    }

    #[test]
    fn disabled_events_are_not_recorded() {
        let _guard = TEST_LOCK.lock().unwrap();
        crate::reset();
        crate::event(Phase::Gc, "ignored", 1);
        assert_eq!(events().0.len(), 0);
    }

    #[test]
    fn snapshot_jsonl_renders_spans_and_counters() {
        let snap = ObsSnapshot {
            phases: vec![PhaseStat {
                phase: Phase::FtlWrite,
                count: 7,
                self_ns: 1234,
            }],
        };
        let mut counters = CounterSnapshot::new();
        counters.set("host_write_requests", 42);
        let jsonl = snapshot_jsonl(&snap, Some(&counters));
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(lines[0].contains("\"phase\":\"ftl_write\""));
        assert!(lines[0].contains("\"self_ns\":1234"));
        assert!(lines[1].contains("\"type\":\"counter\""));
        assert!(lines[1].contains("\"value\":42"));
        // Every line parses back as a JSON object.
        for line in lines {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert!(matches!(v, serde::Value::Object(_)));
        }
    }
}

//! Fixture: cross-file proof, seed side — an `FtlScheme` method whose only
//! sin is calling a helper defined in another crate. Linted alone this file
//! is clean, and the old per-file lexical rule never looked past it.

pub struct Fixture;

impl FtlScheme for Fixture {
    fn on_host_write(&mut self, lpn: u64) -> u64 {
        resolve_mapping(lpn)
    }
}

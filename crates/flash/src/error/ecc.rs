//! BCH ECC decode latency model.
//!
//! The paper's Table 2 bounds ECC decode time between 0.0005 ms and 0.0968 ms,
//! citing Micheloni et al. (ISSCC'06, ref. \[26\]): a BCH code correcting 5 bits
//! per 512-byte sector. A 4 KB subpage therefore comprises 8 codewords able to
//! correct 40 raw bit errors in total.
//!
//! BCH decode cost is dominated by the Chien search, whose work scales with the
//! number of errors actually present; we interpolate linearly between the
//! paper's min and max times by the ratio of *expected* raw bit errors to the
//! correction capability of the data read. Reads whose expected error count
//! exceeds the capability saturate at `ECC max time` and are flagged
//! uncorrectable (the device would retry / enter read-recovery; the simulator
//! charges max-time and counts the event).

use serde::{Deserialize, Serialize};

use crate::time::{ms_to_ns, Nanos};

/// BCH ECC configuration and latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EccModel {
    /// Codeword payload size in bytes (ref. \[26\]: 512 B sectors).
    pub codeword_bytes: u32,
    /// Correctable bits per codeword (ref. \[26\]: 5-bit BCH).
    pub correctable_bits_per_codeword: u32,
    /// Decode latency with (near) zero errors, in ms (Table 2 `ECC min time`).
    pub min_time_ms: f64,
    /// Decode latency at/beyond full correction capability, ms (`ECC max time`).
    pub max_time_ms: f64,
}

impl Default for EccModel {
    fn default() -> Self {
        EccModel {
            codeword_bytes: 512,
            correctable_bits_per_codeword: 5,
            min_time_ms: 0.0005,
            max_time_ms: 0.0968,
        }
    }
}

/// Outcome of running the ECC model over one read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccOutcome {
    /// Decode latency to charge to the read.
    pub latency_ns: Nanos,
    /// Expected number of raw bit errors in the data read.
    pub expected_bit_errors: f64,
    /// Total correction capability of the codewords covering the read.
    pub correctable_bits: u32,
    /// Whether expected errors exceeded the correction capability.
    pub uncorrectable: bool,
}

impl EccModel {
    /// Correction capability (bits) for `bytes` of data.
    pub fn correctable_bits(&self, bytes: u32) -> u32 {
        let codewords = bytes.div_ceil(self.codeword_bytes);
        codewords * self.correctable_bits_per_codeword
    }

    /// Runs the model for a read of `bytes` bytes at raw bit error rate `rber`.
    pub fn decode(&self, bytes: u32, rber: f64) -> EccOutcome {
        assert!((0.0..1.0).contains(&rber), "rber {rber} out of range");
        let bits = bytes as f64 * 8.0;
        self.decode_with_errors(bytes, rber * bits)
    }

    /// Runs the model for a read of `bytes` bytes carrying `bit_errors` raw
    /// bit errors (expected value or a sampled realization).
    pub fn decode_with_errors(&self, bytes: u32, bit_errors: f64) -> EccOutcome {
        assert!(bytes > 0, "cannot decode an empty read");
        assert!(bit_errors >= 0.0, "negative error count");
        let correctable = self.correctable_bits(bytes);
        let fill = (bit_errors / correctable as f64).min(1.0);
        let ms = self.min_time_ms + (self.max_time_ms - self.min_time_ms) * fill;
        EccOutcome {
            latency_ns: ms_to_ns(ms),
            expected_bit_errors: bit_errors,
            correctable_bits: correctable,
            uncorrectable: bit_errors > correctable as f64,
        }
    }

    /// Checks parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.codeword_bytes == 0 || self.correctable_bits_per_codeword == 0 {
            return Err("codeword geometry must be non-zero".into());
        }
        if self.min_time_ms < 0.0 || self.max_time_ms < self.min_time_ms {
            return Err(format!(
                "ECC times invalid: min {} max {}",
                self.min_time_ms, self.max_time_ms
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // mutate-then-validate idiom
mod tests {
    use super::*;
    use crate::time::ns_to_ms;

    #[test]
    fn subpage_capability_matches_reference_design() {
        let e = EccModel::default();
        // 4 KB subpage = 8 × 512 B codewords × 5 bits = 40 correctable bits.
        assert_eq!(e.correctable_bits(4096), 40);
        // A full 16 KB page = 160 bits.
        assert_eq!(e.correctable_bits(16 * 1024), 160);
        // Partial codewords round up.
        assert_eq!(e.correctable_bits(100), 5);
    }

    #[test]
    fn error_free_read_costs_min_time() {
        let e = EccModel::default();
        let out = e.decode(4096, 0.0);
        assert_eq!(ns_to_ms(out.latency_ns), e.min_time_ms);
        assert!(!out.uncorrectable);
        assert_eq!(out.expected_bit_errors, 0.0);
    }

    #[test]
    fn latency_interpolates_with_error_rate() {
        let e = EccModel::default();
        // rber such that expected errors are half of capability: 20 errors over
        // 32768 bits → rber = 20/32768.
        let out = e.decode(4096, 20.0 / 32768.0);
        let expected_ms = e.min_time_ms + (e.max_time_ms - e.min_time_ms) * 0.5;
        assert!((ns_to_ms(out.latency_ns) - expected_ms).abs() < 1e-6);
        assert!(!out.uncorrectable);
    }

    #[test]
    fn paper_calibration_rber_lands_mid_range() {
        // At the Figure 2 conventional point (2.8e-4), a subpage read should
        // cost a quarter-ish of the ECC range — well between min and max.
        let e = EccModel::default();
        let out = e.decode(4096, 2.8e-4);
        let ms = ns_to_ms(out.latency_ns);
        assert!(
            ms > e.min_time_ms && ms < e.max_time_ms,
            "{ms} not mid-range"
        );
        assert!((out.expected_bit_errors - 9.175).abs() < 0.01);
    }

    #[test]
    fn saturates_and_flags_uncorrectable() {
        let e = EccModel::default();
        let out = e.decode(4096, 0.01); // 327 expected errors >> 40 capability
        assert_eq!(ns_to_ms(out.latency_ns), e.max_time_ms);
        assert!(out.uncorrectable);
    }

    #[test]
    fn monotone_in_rber() {
        let e = EccModel::default();
        let mut last = 0;
        for i in 0..50 {
            let out = e.decode(16 * 1024, i as f64 * 1e-4);
            assert!(out.latency_ns >= last);
            last = out.latency_ns;
        }
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut e = EccModel::default();
        e.max_time_ms = 0.0001; // below min
        assert!(e.validate().is_err());
        let mut e = EccModel::default();
        e.codeword_bytes = 0;
        assert!(e.validate().is_err());
        assert!(EccModel::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "rber")]
    fn rejects_out_of_range_rber() {
        EccModel::default().decode(4096, 1.5);
    }
}

//! Calibrated synthetic workload generation.
//!
//! Substitutes for the paper's non-redistributable traces (see DESIGN.md §5).
//! Each [`SyntheticTraceSpec`] pins the *published* statistics of one trace —
//! request count, write ratio, average write size, hot-write ratio (Table 3)
//! and the update-size bucket distribution (Table 1) — and the generator
//! produces a deterministic request stream matching them.
//!
//! ## Address model
//!
//! The logical space is divided into 64 KB *slots* (large enough that any
//! generated request stays inside its slot). Slots come in three classes:
//!
//! * **hot** — receive repeated writes (design mean [`HOT_MEAN_WRITES`] writes
//!   each) plus most read traffic; these are the addresses the paper's
//!   three-level SLC cache is meant to retain;
//! * **cold** — receive [`COLD_MEAN_WRITES`] writes each on average, rarely
//!   crossing the ≥4-accesses hotness threshold;
//! * **read-only** — a separate region that absorbs the remaining reads,
//!   modelling data resident on the device before the trace starts.
//!
//! Given a target hot-address fraction `f` (Table 3's "Hot write"), the
//! probability `p` that a write goes to the hot class follows from the design
//! means: `p = k/(1+k)` with `k = (h̄·f) / (c̄·(1−f))`.
//!
//! ## Size model
//!
//! Write sizes are drawn from {4 KB, 8 KB, 16 KB, 64 KB} with probabilities
//! chosen so the Table 1 buckets match exactly and the mix of the two large
//! sizes reproduces Table 3's average write size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::request::{IoRequest, OpKind};

/// Slot size in bytes; no generated request crosses a slot boundary.
pub const SLOT_BYTES: u64 = 64 * 1024;
/// Design mean number of writes a hot slot receives.
pub const HOT_MEAN_WRITES: f64 = 10.0;
/// Design mean number of writes a cold slot receives.
pub const COLD_MEAN_WRITES: f64 = 1.15;

/// Calibration targets and knobs for one synthetic trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticTraceSpec {
    /// Trace name (e.g. "ts0").
    pub name: String,
    /// Total requests to generate (Table 3 "# of Req.").
    pub requests: u64,
    /// Fraction of requests that are writes (Table 3 "Write R").
    pub write_ratio: f64,
    /// Target fraction of write-touched addresses accessed ≥4 times
    /// (Table 3 "Hot write").
    pub hot_write_fraction: f64,
    /// Write size bucket probabilities (Table 1): P(4 KB), P(8 KB), P(>8 KB).
    pub size_buckets: [f64; 3],
    /// Within the >8 KB bucket, probability of 16 KB (vs 64 KB); derived from
    /// Table 3's average write size.
    pub big_16k_fraction: f64,
    /// Fraction of reads directed at the hot written region (the rest go to
    /// the read-only region).
    pub read_written_fraction: f64,
    /// Skew of accesses *within* the hot class: slot rank is drawn as
    /// `⌊H·u^hot_skew⌋` for uniform `u`. 1.0 = uniform; the default 2.0 gives
    /// the heavy tail real enterprise traces show (density ∝ 1/(2√rank): the
    /// top 1% of hot addresses absorb ~10% of hot traffic, with hundreds of
    /// updates each), while keeping every hot slot above the ≥4-accesses
    /// threshold and the per-slot mean at [`HOT_MEAN_WRITES`].
    pub hot_skew: f64,
    /// Mean exponential inter-arrival time, ns.
    pub mean_interarrival_ns: u64,
    /// RNG seed; same seed ⇒ identical trace.
    pub seed: u64,
}

impl SyntheticTraceSpec {
    /// Returns a copy scaled to `requests` total requests (slot populations
    /// scale with the write count, preserving every calibrated ratio).
    pub fn with_requests(&self, requests: u64) -> Self {
        SyntheticTraceSpec {
            requests,
            ..self.clone()
        }
    }

    /// Expected number of write requests.
    pub fn expected_writes(&self) -> u64 {
        (self.requests as f64 * self.write_ratio).round() as u64
    }

    /// Probability that a write goes to the hot class (see module docs).
    pub fn hot_write_probability(&self) -> f64 {
        self.design().0
    }

    /// Sizes of the hot / cold / read-only slot populations.
    pub fn slot_populations(&self) -> SlotPopulations {
        self.design().1
    }

    /// Solves the hot-write probability and slot populations so the *measured*
    /// hot-address ratio matches `hot_write_fraction`.
    ///
    /// With cold slots receiving Poisson(λ_c) writes, a fraction
    /// `w = 1 − e^(−λ_c)` of them is ever written (and thus enters the hot-ratio
    /// denominator) and a fraction `a = P(Poisson(λ_c) ≥ 4)` crosses the
    /// hotness threshold by accident. Hot slots (mean `h̄` writes plus read
    /// traffic) are essentially always written and hot. Solving
    /// `f = (H + a·C) / (H + w·C)` for the cold-to-hot slot ratio `x = C/H`
    /// gives `x = (1 − f) / (f·w − a)`, and the per-write hot probability
    /// follows from the write mass each class absorbs:
    /// `p = h̄ / (h̄ + λ_c·x)`.
    fn design(&self) -> (f64, SlotPopulations) {
        let h_bar = HOT_MEAN_WRITES;
        let lambda_c = COLD_MEAN_WRITES;
        let w = 1.0 - (-lambda_c).exp();
        let a = 1.0
            - (-lambda_c).exp()
                * (1.0 + lambda_c + lambda_c * lambda_c / 2.0 + lambda_c.powi(3) / 6.0);
        let f = self.hot_write_fraction.clamp(a / w + 1e-3, 1.0 - 1e-6);
        let x = (1.0 - f) / (f * w - a);
        let p = h_bar / (h_bar + lambda_c * x);

        let writes = self.expected_writes() as f64;
        let hot = ((p * writes) / h_bar).ceil().max(1.0) as u64;
        let cold = (hot as f64 * x).ceil().max(1.0) as u64;
        let reads = self.requests as f64 - writes;
        let ro_reads = reads * (1.0 - self.read_written_fraction);
        // Read-only slots average two accesses each.
        let read_only = (ro_reads / 2.0).ceil().max(1.0) as u64;
        (
            p,
            SlotPopulations {
                hot,
                cold,
                read_only,
            },
        )
    }

    /// Validates the calibration parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.requests == 0 {
            return Err("requests must be positive".into());
        }
        for (label, v) in [
            ("write_ratio", self.write_ratio),
            ("hot_write_fraction", self.hot_write_fraction),
            ("big_16k_fraction", self.big_16k_fraction),
            ("read_written_fraction", self.read_written_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{label} {v} out of [0,1]"));
            }
        }
        let sum: f64 = self.size_buckets.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("size buckets sum to {sum}, expected 1"));
        }
        if self.size_buckets.iter().any(|p| *p < 0.0) {
            return Err("size bucket probabilities must be non-negative".into());
        }
        Ok(())
    }
}

/// Slot counts per class for a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotPopulations {
    pub hot: u64,
    pub cold: u64,
    pub read_only: u64,
}

impl SlotPopulations {
    /// Total slots, hence logical footprint = `total() * SLOT_BYTES`.
    pub fn total(&self) -> u64 {
        self.hot + self.cold + self.read_only
    }
}

/// Deterministic request-stream generator for a [`SyntheticTraceSpec`].
///
/// ```
/// use ipu_trace::{paper_trace, PaperTrace, TraceGenerator, TraceStats};
///
/// // 1% of ts0, fully deterministic.
/// let spec = paper_trace(PaperTrace::Ts0).with_requests(18_000);
/// let requests = TraceGenerator::new(spec).generate();
/// let stats = TraceStats::compute(&requests);
/// assert_eq!(stats.requests, 18_000);
/// assert!((stats.write_ratio - 0.824).abs() < 0.02); // Table 3's ts0 row
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    spec: SyntheticTraceSpec,
    pops: SlotPopulations,
    rng: StdRng,
    clock_ns: u64,
    emitted: u64,
}

impl TraceGenerator {
    pub fn new(spec: SyntheticTraceSpec) -> Self {
        spec.validate().expect("invalid synthetic trace spec");
        let pops = spec.slot_populations();
        let rng = StdRng::seed_from_u64(spec.seed);
        TraceGenerator {
            spec,
            pops,
            rng,
            clock_ns: 0,
            emitted: 0,
        }
    }

    /// The spec driving this generator.
    pub fn spec(&self) -> &SyntheticTraceSpec {
        &self.spec
    }

    /// Slot populations in effect.
    pub fn populations(&self) -> SlotPopulations {
        self.pops
    }

    /// Logical footprint in bytes (upper bound on byte offsets + slot size).
    pub fn footprint_bytes(&self) -> u64 {
        self.pops.total() * SLOT_BYTES
    }

    /// Generates the full request stream.
    pub fn generate(mut self) -> Vec<IoRequest> {
        let _span = ipu_obs::span(ipu_obs::Phase::TraceDecode);
        let n = self.spec.requests as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.next_request());
        }
        out
    }

    fn next_request(&mut self) -> IoRequest {
        // Exponential inter-arrival.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() * self.spec.mean_interarrival_ns as f64).round() as u64;
        self.clock_ns += gap;
        self.emitted += 1;

        let is_write = self.rng.gen_bool(self.spec.write_ratio);
        let size = self.draw_size();
        let slot = if is_write {
            if self.rng.gen_bool(self.spec.hot_write_probability()) {
                self.draw_hot_slot()
            } else {
                self.pops.hot + self.rng.gen_range(0..self.pops.cold)
            }
        } else if self.rng.gen_bool(self.spec.read_written_fraction) {
            // Reads of live data concentrate on the hot set (with the same
            // skew as the update stream): that is the data the SLC cache
            // retains, and keeping cold written slots read-free preserves the
            // calibrated hot-write ratio.
            self.draw_hot_slot()
        } else {
            self.pops.hot + self.pops.cold + self.rng.gen_range(0..self.pops.read_only)
        };

        let op = if is_write {
            OpKind::Write
        } else {
            OpKind::Read
        };
        IoRequest::new(self.clock_ns, op, slot * SLOT_BYTES, size)
    }

    /// Draws a hot slot with the configured power-law skew (see `hot_skew`).
    fn draw_hot_slot(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let rank = u.powf(self.spec.hot_skew);
        ((rank * self.pops.hot as f64) as u64).min(self.pops.hot - 1)
    }

    fn draw_size(&mut self) -> u32 {
        let [p4, p8, _] = self.spec.size_buckets;
        let x: f64 = self.rng.gen();
        if x < p4 {
            4 * 1024
        } else if x < p4 + p8 {
            8 * 1024
        } else if self.rng.gen_bool(self.spec.big_16k_fraction) {
            16 * 1024
        } else {
            64 * 1024
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    fn toy_spec() -> SyntheticTraceSpec {
        SyntheticTraceSpec {
            name: "toy".into(),
            requests: 50_000,
            write_ratio: 0.8,
            hot_write_fraction: 0.5,
            size_buckets: [0.7, 0.18, 0.12],
            big_16k_fraction: 0.69,
            read_written_fraction: 0.6,
            hot_skew: 2.0,
            mean_interarrival_ns: 500_000,
            seed: 42,
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let a = TraceGenerator::new(toy_spec()).generate();
        let b = TraceGenerator::new(toy_spec()).generate();
        assert_eq!(a, b);
        let mut other = toy_spec();
        other.seed = 43;
        let c = TraceGenerator::new(other).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_are_monotone_nondecreasing() {
        let reqs = TraceGenerator::new(toy_spec()).generate();
        assert!(reqs
            .windows(2)
            .all(|w| w[0].timestamp_ns <= w[1].timestamp_ns));
    }

    #[test]
    fn requests_stay_inside_their_slot() {
        let gen = TraceGenerator::new(toy_spec());
        let footprint = gen.footprint_bytes();
        for r in gen.generate() {
            assert_eq!(r.offset % SLOT_BYTES, 0, "requests start at slot base");
            assert!(r.size as u64 <= SLOT_BYTES);
            assert!(r.offset + r.size as u64 <= footprint);
        }
    }

    #[test]
    fn write_ratio_calibrates() {
        let stats = TraceStats::compute(&TraceGenerator::new(toy_spec()).generate());
        assert!(
            (stats.write_ratio - 0.8).abs() < 0.01,
            "write ratio {} off target",
            stats.write_ratio
        );
    }

    #[test]
    fn hot_fraction_calibrates_within_tolerance() {
        let stats = TraceStats::compute(&TraceGenerator::new(toy_spec()).generate());
        assert!(
            (stats.hot_write_ratio - 0.5).abs() < 0.06,
            "hot write ratio {} far from 0.5",
            stats.hot_write_ratio
        );
    }

    #[test]
    fn size_buckets_calibrate() {
        let reqs = TraceGenerator::new(toy_spec()).generate();
        let stats = TraceStats::compute(&reqs);
        // All writes share the distribution, so updated writes inherit it.
        assert!((stats.update_sizes.up_to_4k - 0.7).abs() < 0.03);
        assert!((stats.update_sizes.up_to_8k - 0.18).abs() < 0.03);
        assert!((stats.update_sizes.over_8k - 0.12).abs() < 0.03);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let spec = toy_spec().with_requests(10_000);
        let stats = TraceStats::compute(&TraceGenerator::new(spec).generate());
        assert_eq!(stats.requests, 10_000);
        assert!((stats.write_ratio - 0.8).abs() < 0.02);
        assert!((stats.hot_write_ratio - 0.5).abs() < 0.08);
    }

    #[test]
    fn populations_match_design_means() {
        let spec = toy_spec();
        let pops = spec.slot_populations();
        let writes = spec.expected_writes() as f64;
        let p = spec.hot_write_probability();
        let writes_per_hot = p * writes / pops.hot as f64;
        let writes_per_cold = (1.0 - p) * writes / pops.cold as f64;
        assert!((writes_per_hot - HOT_MEAN_WRITES).abs() < 0.5);
        assert!((writes_per_cold - COLD_MEAN_WRITES).abs() < 0.1);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = toy_spec();
        s.size_buckets = [0.5, 0.5, 0.5];
        assert!(s.validate().is_err());
        let mut s = toy_spec();
        s.write_ratio = 1.5;
        assert!(s.validate().is_err());
        let mut s = toy_spec();
        s.requests = 0;
        assert!(s.validate().is_err());
        assert!(toy_spec().validate().is_ok());
    }
}

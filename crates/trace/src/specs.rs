//! Calibrated specifications of the paper's six evaluation traces.
//!
//! Each spec pins the published statistics from the paper's Table 3 (request
//! count, write ratio, average write size, hot-write ratio) and Table 1
//! (update-size bucket distribution). The `big_16k_fraction` knob is solved
//! from the average-write-size identity
//!
//! ```text
//! avg = 4·P(4K) + 8·P(8K) + (16·q + 64·(1−q))·P(>8K)      [KB]
//! ```
//!
//! so that the generated stream reproduces Table 3's "Write SZ" column.

use serde::{Deserialize, Serialize};

use crate::synth::SyntheticTraceSpec;

/// Identifiers of the paper's six traces, in Table 3 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperTrace {
    /// MSR Cambridge `ts0` (terminal server).
    Ts0,
    /// MSR Cambridge `wdev0` (test web server).
    Wdev0,
    /// VDI `additional-01-2016021615-LUN0` (`lun1`).
    Lun1,
    /// MSR Cambridge `usr0` (user home directories).
    Usr0,
    /// Microsoft production server `ads`.
    Ads,
    /// VDI `additional-03-2016021719-LUN2` (`lun2`).
    Lun2,
}

impl PaperTrace {
    /// All six traces, in Table 3 order (descending write ratio).
    pub fn all() -> [PaperTrace; 6] {
        [
            PaperTrace::Ts0,
            PaperTrace::Wdev0,
            PaperTrace::Lun1,
            PaperTrace::Usr0,
            PaperTrace::Ads,
            PaperTrace::Lun2,
        ]
    }

    /// Trace name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PaperTrace::Ts0 => "ts0",
            PaperTrace::Wdev0 => "wdev0",
            PaperTrace::Lun1 => "lun1",
            PaperTrace::Usr0 => "usr0",
            PaperTrace::Ads => "ads",
            PaperTrace::Lun2 => "lun2",
        }
    }

    /// Published Table 3 row: (requests, write ratio, avg write KB, hot write).
    pub fn table3_row(self) -> (u64, f64, f64, f64) {
        match self {
            PaperTrace::Ts0 => (1_801_734, 0.824, 8.0, 0.505),
            PaperTrace::Wdev0 => (1_143_261, 0.799, 8.2, 0.582),
            PaperTrace::Lun1 => (1_073_405, 0.731, 7.6, 0.100),
            PaperTrace::Usr0 => (2_237_889, 0.596, 10.3, 0.365),
            PaperTrace::Ads => (1_758_887, 0.193, 9.7, 0.085),
            PaperTrace::Lun2 => (1_532_120, 0.095, 7.0, 0.183),
        }
    }

    /// Published Table 1 row: update-size buckets P(≤4K), P(4–8K), P(>8K).
    pub fn table1_row(self) -> [f64; 3] {
        match self {
            PaperTrace::Ts0 => [0.698, 0.179, 0.123],
            PaperTrace::Wdev0 => [0.732, 0.068, 0.201],
            // Table 1's lun1 row is 0.852/0.073/0.075 (sums to 1.000).
            PaperTrace::Lun1 => [0.852, 0.073, 0.075],
            PaperTrace::Usr0 => [0.663, 0.121, 0.216],
            PaperTrace::Ads => [0.745, 0.141, 0.114],
            PaperTrace::Lun2 => [0.926, 0.025, 0.049],
        }
    }
}

impl std::fmt::Display for PaperTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Solves the 16 KB-vs-64 KB mix for the >8 KB bucket from the target average
/// write size (see module docs). Clamped to [0, 1].
fn solve_big_16k_fraction(buckets: [f64; 3], avg_write_kb: f64) -> f64 {
    let [p4, p8, pbig] = buckets;
    if pbig <= 0.0 {
        return 1.0;
    }
    let needed_mean_kb = (avg_write_kb - 4.0 * p4 - 8.0 * p8) / pbig;
    ((64.0 - needed_mean_kb) / 48.0).clamp(0.0, 1.0)
}

/// Builds the calibrated synthetic spec for one paper trace.
pub fn paper_trace(trace: PaperTrace) -> SyntheticTraceSpec {
    let (requests, write_ratio, avg_write_kb, hot) = trace.table3_row();
    let buckets = trace.table1_row();
    // Normalize tiny rounding residue in the published buckets.
    let sum: f64 = buckets.iter().sum();
    let buckets = [buckets[0] / sum, buckets[1] / sum, buckets[2] / sum];
    SyntheticTraceSpec {
        name: trace.name().to_string(),
        requests,
        write_ratio,
        hot_write_fraction: hot,
        size_buckets: buckets,
        big_16k_fraction: solve_big_16k_fraction(buckets, avg_write_kb),
        // Most reads target live (hot) trace data, as enterprise traces do;
        // this also keeps pre-trace (MLC-resident) reads from diluting the
        // per-scheme read-error-rate differences of Figure 8.
        read_written_fraction: 0.85,
        hot_skew: 2.5,
        // Per-trace deterministic seed derived from the name.
        seed: trace
            .name()
            .bytes()
            .fold(0xA5u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64)),
        mean_interarrival_ns: 150_000,
    }
}

/// Specs for all six paper traces, Table 3 order.
pub fn all_paper_traces() -> Vec<SyntheticTraceSpec> {
    PaperTrace::all().into_iter().map(paper_trace).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for spec in all_paper_traces() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn request_counts_match_table3() {
        for t in PaperTrace::all() {
            assert_eq!(paper_trace(t).requests, t.table3_row().0, "{t}");
        }
    }

    #[test]
    fn big_mix_reproduces_average_write_size() {
        for t in PaperTrace::all() {
            let spec = paper_trace(t);
            let (_, _, avg_kb, _) = t.table3_row();
            let q = spec.big_16k_fraction;
            let [p4, p8, pbig] = spec.size_buckets;
            let model_avg = 4.0 * p4 + 8.0 * p8 + (16.0 * q + 64.0 * (1.0 - q)) * pbig;
            assert!(
                (model_avg - avg_kb).abs() < 0.25,
                "{t}: model avg {model_avg} vs table {avg_kb} (q={q})"
            );
        }
    }

    #[test]
    fn seeds_are_distinct_per_trace() {
        let seeds: Vec<u64> = all_paper_traces().iter().map(|s| s.seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(seeds.len(), dedup.len());
    }

    #[test]
    fn solver_handles_degenerate_buckets() {
        assert_eq!(solve_big_16k_fraction([1.0, 0.0, 0.0], 4.0), 1.0);
        // Demanding an impossible average clamps.
        assert_eq!(solve_big_16k_fraction([0.0, 0.0, 1.0], 128.0), 0.0);
        assert_eq!(solve_big_16k_fraction([0.0, 0.0, 1.0], 1.0), 1.0);
    }
}

//! Latency statistics: means, extrema and log-bucketed percentiles.

use ipu_flash::Nanos;
use serde::{Deserialize, Serialize};

/// Number of log₂ buckets in the latency histogram (covers 1 ns .. ~584 y).
const BUCKETS: usize = 64;

/// Streaming latency statistics with a log₂ histogram for percentiles.
///
/// ```
/// use ipu_sim::LatencyStats;
///
/// let mut stats = LatencyStats::new();
/// for ns in [250_000, 300_000, 9_000_000] {
///     stats.record(ns);
/// }
/// assert_eq!(stats.count(), 3);
/// assert!((stats.mean_ms() - 3.1833).abs() < 1e-3);
/// assert!(stats.percentile_ns(99.0) >= 4_000_000); // the slow outlier
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum_ns: u128,
    min_ns: Nanos,
    max_ns: Nanos,
    /// `buckets[b]` counts samples with `floor(log2(ns)) == b` (0 → bucket 0).
    buckets: Vec<u64>,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats { count: 0, sum_ns: 0, min_ns: Nanos::MAX, max_ns: 0, buckets: vec![0; BUCKETS] }
    }
}

impl LatencyStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: Nanos) {
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let b = if ns == 0 { 0 } else { 63 - ns.leading_zeros() as usize };
        self.buckets[b.min(BUCKETS - 1)] += 1;
    }

    /// Merges another stats object into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Mean latency in milliseconds (the paper's Figure 5 unit).
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns() / 1e6
    }

    pub fn min_ns(&self) -> Option<Nanos> {
        (self.count > 0).then_some(self.min_ns)
    }

    pub fn max_ns(&self) -> Nanos {
        self.max_ns
    }

    /// Approximate percentile (0–100) from the log histogram: the geometric
    /// midpoint of the bucket containing the requested rank.
    pub fn percentile_ns(&self, p: f64) -> Nanos {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = 1u128 << b;
                let hi = 1u128 << (b + 1);
                return (((lo + hi) / 2) as u64).min(self.max_ns).max(if b == 0 { 1 } else { 0 });
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_ns(), 0.0);
        assert!(s.min_ns().is_none());
        assert_eq!(s.percentile_ns(50.0), 0);
    }

    #[test]
    fn mean_min_max_exact() {
        let mut s = LatencyStats::new();
        for ns in [100u64, 200, 300] {
            s.record(ns);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean_ns(), 200.0);
        assert_eq!(s.min_ns(), Some(100));
        assert_eq!(s.max_ns(), 300);
        assert!((s.mean_ms() - 0.0002).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_bucket_accurate() {
        let mut s = LatencyStats::new();
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            s.record(1_000);
        }
        for _ in 0..10 {
            s.record(1_000_000);
        }
        let p50 = s.percentile_ns(50.0);
        let p99 = s.percentile_ns(99.0);
        assert!((512..=2048).contains(&p50), "p50 {p50}");
        assert!(p99 >= 500_000, "p99 {p99}");
        assert!(p99 <= s.max_ns());
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(10);
        b.record(1_000_000);
        b.record(2_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min_ns(), Some(10));
        assert_eq!(a.max_ns(), 2_000_000);
        // Merging an empty histogram changes nothing.
        let snapshot = a.clone();
        a.merge(&LatencyStats::new());
        assert_eq!(a.count(), snapshot.count());
        assert_eq!(a.min_ns(), snapshot.min_ns());
    }

    #[test]
    fn zero_latency_sample_is_tolerated() {
        let mut s = LatencyStats::new();
        s.record(0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.min_ns(), Some(0));
    }
}

//! Queue-depth sweep: the closed-loop host interface across QD × scheme.
//!
//! The paper's evaluation is open-loop — every request fires at its trace
//! timestamp. This extension replays the same calibrated trace through the
//! `ipu-host` multi-queue interface at several queue depths and compares the
//! cache-update schemes under host backpressure: per-tenant
//! submission-to-completion latency, queue occupancy, admission stall and
//! fairness.

use ipu_ftl::SchemeKind;
use ipu_host::{ArbitrationPolicy, HostConfig, TenantSpec};
use ipu_sim::{replay_closed_loop, ClosedLoopReport};
use ipu_trace::{PaperTrace, SplitStrategy};
use serde::{Deserialize, Serialize};

use crate::config::ExperimentConfig;
use crate::parallel::parallel_map;
use crate::trace_set::TraceSet;

/// The default sweep points: QD 1 (fully serialized) through 64.
pub const PAPER_QD_POINTS: [usize; 4] = [1, 4, 16, 64];

/// Host-side parameters of a sweep (everything but the queue depth, which is
/// the swept variable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QdSweepHostSpec {
    pub tenants: Vec<TenantSpec>,
    pub arbitration: ArbitrationPolicy,
    pub dispatch_overhead_ns: u64,
    /// How the trace becomes per-tenant streams (`rr` | `lba` | `clone`).
    pub split: String,
}

impl Default for QdSweepHostSpec {
    fn default() -> Self {
        QdSweepHostSpec {
            tenants: vec![TenantSpec::new("t0")],
            arbitration: ArbitrationPolicy::RoundRobin,
            dispatch_overhead_ns: 0,
            split: SplitStrategy::RoundRobin.label().to_string(),
        }
    }
}

impl QdSweepHostSpec {
    pub fn split_strategy(&self) -> SplitStrategy {
        SplitStrategy::parse(&self.split).expect("validated split strategy")
    }

    fn host_config(&self, queue_depth: usize) -> HostConfig {
        HostConfig::new(queue_depth, self.arbitration, self.tenants.clone())
            .with_dispatch_overhead(self.dispatch_overhead_ns)
    }
}

/// Results of one sweep: `reports[q][s]` is QD `qd_points[q]` under scheme
/// `schemes[s]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QdSweepResult {
    pub trace: String,
    pub qd_points: Vec<u64>,
    pub schemes: Vec<SchemeKind>,
    pub host: QdSweepHostSpec,
    pub reports: Vec<Vec<ClosedLoopReport>>,
}

impl QdSweepResult {
    pub fn report(&self, qd_index: usize, scheme_index: usize) -> &ClosedLoopReport {
        &self.reports[qd_index][scheme_index]
    }
}

/// Runs the QD × scheme sweep on one calibrated trace, splitting it into
/// per-tenant streams with the configured strategy. Cells run in parallel
/// (each owns its device).
pub fn run_qd_sweep(
    cfg: &ExperimentConfig,
    trace: PaperTrace,
    host: &QdSweepHostSpec,
    qd_points: &[usize],
) -> QdSweepResult {
    let mut single = cfg.clone();
    single.traces = vec![trace];
    run_qd_sweep_with(cfg, trace, host, qd_points, &TraceSet::generate(&single))
}

/// [`run_qd_sweep`] over a pre-generated shared stream: the CLI hands the
/// same [`TraceSet`] to the open-loop matrix and this sweep so the trace is
/// synthesized once per invocation.
pub fn run_qd_sweep_with(
    cfg: &ExperimentConfig,
    trace: PaperTrace,
    host: &QdSweepHostSpec,
    qd_points: &[usize],
    traces: &TraceSet,
) -> QdSweepResult {
    assert!(
        !qd_points.is_empty(),
        "sweep needs at least one queue depth"
    );
    let requests = traces.get(trace);
    let streams = host.split_strategy().split(&requests, host.tenants.len());

    let jobs: Vec<(usize, SchemeKind)> = qd_points
        .iter()
        .flat_map(|&qd| cfg.schemes.iter().map(move |&s| (qd, s)))
        .collect();
    let flat = parallel_map(jobs, cfg.effective_threads(), |(qd, scheme)| {
        let replay_cfg = cfg.replay_config(scheme);
        replay_closed_loop(&replay_cfg, &host.host_config(qd), &streams, trace.name())
    });

    QdSweepResult {
        trace: trace.name().to_string(),
        qd_points: qd_points.iter().map(|&q| q as u64).collect(),
        schemes: cfg.schemes.clone(),
        host: host.clone(),
        reports: flat.chunks(cfg.schemes.len()).map(|c| c.to_vec()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::scaled(0.002);
        cfg.traces = vec![PaperTrace::Ts0];
        cfg.schemes = SchemeKind::all().to_vec();
        cfg.threads = 1;
        cfg
    }

    #[test]
    fn sweep_covers_qd_by_scheme_grid() {
        let cfg = tiny_cfg();
        let host = QdSweepHostSpec::default();
        let result = run_qd_sweep(&cfg, PaperTrace::Ts0, &host, &[1, 8]);
        assert_eq!(result.qd_points, vec![1, 8]);
        assert_eq!(result.reports.len(), 2);
        assert_eq!(result.reports[0].len(), 3);
        let requests = result.report(0, 0).sim.requests;
        assert!(requests > 0);
        for row in &result.reports {
            for cell in row {
                assert_eq!(
                    cell.sim.requests, requests,
                    "every cell replays the same trace"
                );
                assert_eq!(cell.host.total_completed(), requests);
            }
        }
    }

    #[test]
    fn deeper_queues_never_increase_stall() {
        let cfg = tiny_cfg();
        let host = QdSweepHostSpec::default();
        let result = run_qd_sweep(&cfg, PaperTrace::Ts0, &host, &[1, 64]);
        for s in 0..result.schemes.len() {
            let shallow = &result.report(0, s).host.tenants[0];
            let deep = &result.report(1, s).host.tenants[0];
            assert!(
                deep.admission_stall_ns <= shallow.admission_stall_ns,
                "{}: QD64 stall {} exceeds QD1 stall {}",
                result.schemes[s],
                deep.admission_stall_ns,
                shallow.admission_stall_ns
            );
        }
    }

    #[test]
    fn multi_tenant_sweep_respects_tenant_count() {
        let mut cfg = tiny_cfg();
        cfg.schemes = vec![SchemeKind::Ipu];
        let host = QdSweepHostSpec {
            tenants: TenantSpec::parse_list("a,b,c").unwrap(),
            arbitration: ArbitrationPolicy::RoundRobin,
            dispatch_overhead_ns: 0,
            split: "rr".into(),
        };
        let result = run_qd_sweep(&cfg, PaperTrace::Ts0, &host, &[4]);
        let cell = result.report(0, 0);
        assert_eq!(cell.host.tenants.len(), 3);
        let total: u64 = cell.host.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(total, cell.sim.requests);
        assert!(cell.host.fairness > 0.0);
    }
}

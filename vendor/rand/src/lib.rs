//! Offline stand-in for the `rand` crate.
//!
//! Implements the exact API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_bool, gen_range}` — on
//! top of xoshiro256++ (Blackman & Vigna, public domain), seeded through
//! SplitMix64 like the real `rand` crate seeds small-state generators.
//!
//! The stream differs from upstream `StdRng` (ChaCha12), so exact sequences
//! are not reproducible against the real crate; everything in this repo that
//! depends on the generator checks *statistics*, which hold for any
//! high-quality uniform source.

#![allow(clippy::all)]

use std::ops::Range;

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (`f64` ∈ [0, 1); integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of [0, 1]"
        );
        f64::sample(self) < p
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from their standard distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges uniform sampling can draw from.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform integer below `n` (Lemire's multiply-shift with
/// rejection).
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start.max(self.end - f64::EPSILON * self.end.abs())
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, high-quality; seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let y = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} far from 0.5");
        let heads = (0..n).filter(|_| rng.gen_bool(0.3)).count() as f64 / n as f64;
        assert!((heads - 0.3).abs() < 0.01, "gen_bool(0.3) measured {heads}");
    }
}

//! The project rule set. Each rule walks the token stream of one file (plus
//! the comment side channel) and reports findings; the engine in `lib.rs`
//! handles file discovery, test-region masking and allow-comment suppression.
//!
//! | id                  | invariant |
//! |---------------------|-----------|
//! | `no-wall-clock`     | R2: no `SystemTime`/`Instant`/`std::time` in `ipu-sim`/`ipu-ftl`/`ipu-flash`/`ipu-trace` non-test code |
//! | `unordered-iter`    | R3: no `HashMap`/`HashSet` in files on the deterministic-output surface (reports, JSONL export, replay-cache state) |
//! | `serde-default`     | R4: every field of `Deserialize` structs in the config-hygiene files carries `#[serde(default)]` |
//! | `forbid-unsafe`     | R5: every crate root declares `#![forbid(unsafe_code)]` |
//! | `float-eq`          | R6: no `==`/`!=` against float literals outside tests |
//! | `missing-doc`       | R7: scheme-trait methods and error/scheme enum variants carry doc comments |
//! | `no-debug-print`    | R8: no `dbg!`/`println!` in library code (bin entry points exempt) |
//! | `panic-reachability`| R9: no panicking token transitively reachable from a host-driven seed (see [`crate::callgraph`]) — replaces the old per-file `no-panic` |
//! | `exhaustive-match`  | R10: no bare `_ =>` arms on growth enums (see [`crate::exhaustive_match`]) |
//! | `merge-complete`    | R11: conservation-ledger structs merge and serialize every field (see [`crate::merge_complete`]) |
//! | `nondet-reduce`     | R12: no order-sensitive reductions over unordered containers (see [`crate::nondet_reduce`]) |
//!
//! R9–R12 live in their own modules; this module keeps the lexical rules and
//! the `run_all` per-file dispatcher. `panic-reachability` is the one rule
//! that cannot run per-file — its findings come from the workspace call graph
//! in the engine's second phase.

use crate::lexer::{TokKind, Token};
use crate::{FileCtx, Finding};

/// All rule identifiers, as accepted by `// ipu-lint: allow(<rule>)`.
pub const RULE_IDS: &[&str] = &[
    "no-wall-clock",
    "unordered-iter",
    "serde-default",
    "forbid-unsafe",
    "float-eq",
    "missing-doc",
    "no-debug-print",
    "panic-reachability",
    "exhaustive-match",
    "merge-complete",
    "nondet-reduce",
];

/// Crates whose non-test code must not read wall-clock time (R2).
const DETERMINISTIC_CRATES: &[&str] = &["sim", "ftl", "flash", "trace", "fleet"];

/// Files on the deterministic-output surface (R3): anything here feeds report
/// rendering, JSONL export, or state replayed under the on-disk cache, where
/// unordered iteration silently breaks bit-identical replay.
pub const ORDERED_OUTPUT_FILES: &[&str] = &[
    "crates/trace/src/stats.rs",
    "crates/trace/src/analysis.rs",
    "crates/ftl/src/cache_meta.rs",
    "crates/ftl/src/schemes/common.rs",
    "crates/core/src/report.rs",
    "crates/core/src/results.rs",
    "crates/core/src/scorecard.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/profile.rs",
    "crates/core/src/charts.rs",
    "crates/core/src/svg.rs",
    "crates/obs/src/export.rs",
    "crates/fleet/src/report.rs",
    "crates/fleet/src/fault.rs",
    "crates/fleet/src/health.rs",
    "crates/fleet/src/tolerance.rs",
];

/// Config-hygiene scopes (R4): `(file, Some(struct))` checks one struct,
/// `(file, None)` checks every `Deserialize`-deriving struct in the file.
const SERDE_DEFAULT_SCOPES: &[(&str, Option<&str>)] = &[
    ("crates/core/src/config.rs", None),
    ("crates/flash/src/config.rs", Some("DeviceConfig")),
];

/// Documentation scopes (R7): `pub trait` methods and/or `pub enum` variants
/// in these files must carry doc comments.
const DOC_SCOPES: &[(&str, DocScope)] = &[
    ("crates/ftl/src/schemes/mod.rs", DocScope::TraitsAndEnums),
    ("crates/ftl/src/error.rs", DocScope::Enums),
    ("crates/flash/src/device.rs", DocScope::Enums),
];

#[derive(Clone, Copy, PartialEq)]
enum DocScope {
    Enums,
    TraitsAndEnums,
}

/// Crates exempt from the debug-print rule (R8): user-facing binaries whose
/// job is to print.
const PRINT_EXEMPT_CRATES: &[&str] = &["cli", "lint"];

/// Runs every file-scoped rule over `ctx`, appending findings.
/// `panic-reachability` is absent on purpose: it needs the whole-workspace
/// call graph and runs in the engine's second phase.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    no_wall_clock(ctx, out);
    unordered_iter(ctx, out);
    serde_default(ctx, out);
    forbid_unsafe(ctx, out);
    float_eq(ctx, out);
    missing_doc(ctx, out);
    no_debug_print(ctx, out);
    crate::exhaustive_match::run(ctx, out);
    crate::merge_complete::run(ctx, out);
    crate::nondet_reduce::run(ctx, out);
}

fn finding(ctx: &FileCtx<'_>, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: ctx.rel_path.to_string(),
        line,
        message,
    }
}

/// Keywords that can directly precede `[` without forming an index expression
/// (e.g. `in [a, b]`, `return [x]`).
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// R2 — determinism: no wall-clock reads in simulation crates.
fn no_wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.is_test[i] {
            continue;
        }
        if toks[i].is_ident("SystemTime") || toks[i].is_ident("Instant") {
            out.push(finding(
                ctx,
                "no-wall-clock",
                toks[i].line,
                format!(
                    "{} is wall-clock time — simulation state must only depend on simulated time",
                    toks[i].text
                ),
            ));
        }
        if i + 2 < toks.len()
            && toks[i].is_ident("std")
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("time")
        {
            out.push(finding(
                ctx,
                "no-wall-clock",
                toks[i].line,
                "std::time is wall-clock time — use simulated Nanos".to_string(),
            ));
        }
    }
}

/// R3 — ordering determinism on the report/export/replay surface.
fn unordered_iter(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ORDERED_OUTPUT_FILES.contains(&ctx.rel_path) {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if ctx.is_test[i] {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(finding(
                ctx,
                "unordered-iter",
                t.line,
                format!(
                    "{} iteration order is nondeterministic and this file feeds \
                     deterministic output — use BTreeMap/BTreeSet or sort explicitly",
                    t.text
                ),
            ));
        }
    }
}

/// R4 — config hygiene: `#[serde(default)]` on every field so a config schema
/// change deserializes (and then reads as a cache miss) instead of failing.
fn serde_default(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let Some(&(_, struct_filter)) = SERDE_DEFAULT_SCOPES
        .iter()
        .find(|(f, _)| *f == ctx.rel_path)
    else {
        return;
    };
    let toks = ctx.tokens;
    let mut i = 0;
    while i < toks.len() {
        // A `#[derive(...)]` attribute containing Deserialize…
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_end = match matching_bracket(toks, i + 1) {
            Some(e) => e,
            None => break,
        };
        let derives_deserialize = toks[i + 2].is_ident("derive")
            && toks[i + 2..attr_end]
                .iter()
                .any(|t| t.is_ident("Deserialize"));
        i = attr_end + 1;
        if !derives_deserialize {
            continue;
        }
        // …followed (after more attributes) by `pub struct Name { fields }`.
        while i < toks.len() && toks[i].is_punct("#") {
            match matching_bracket(toks, i + 1) {
                Some(e) => i = e + 1,
                None => return,
            }
        }
        while i < toks.len() && (toks[i].is_ident("pub") || toks[i].is_punct("(")) {
            // skip `pub` / `pub(crate)` tokens
            if toks[i].is_punct("(") {
                match matching_paren(toks, i) {
                    Some(e) => i = e + 1,
                    None => return,
                }
            } else {
                i += 1;
            }
        }
        if i >= toks.len() || !toks[i].is_ident("struct") {
            continue; // enum or tuple struct: out of scope for this rule
        }
        let name = match toks.get(i + 1) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => continue,
        };
        // Find the `{` opening the field block (skip generics).
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
            j += 1;
        }
        if j >= toks.len() || toks[j].is_punct(";") {
            continue; // unit/tuple struct
        }
        let body_end = match matching_brace(toks, j) {
            Some(e) => e,
            None => break,
        };
        i = body_end + 1;
        if let Some(filter) = struct_filter {
            if name != filter {
                continue;
            }
        }
        check_struct_fields(ctx, &name, toks, j + 1, body_end, out);
    }
}

/// Walks the fields between `start` and `end` (exclusive), flagging any whose
/// attribute list lacks `#[serde(default)]` (or `#[serde(..., default, ...)]`).
fn check_struct_fields(
    ctx: &FileCtx<'_>,
    struct_name: &str,
    toks: &[Token],
    start: usize,
    end: usize,
    out: &mut Vec<Finding>,
) {
    let mut i = start;
    while i < end {
        // Collect this field's attributes.
        let mut has_default = false;
        while i < end && toks[i].is_punct("#") {
            let attr_end = match matching_bracket(toks, i + 1) {
                Some(e) => e.min(end),
                None => end,
            };
            if toks[i + 2].is_ident("serde")
                && toks[i + 2..attr_end].iter().any(|t| t.is_ident("default"))
            {
                has_default = true;
            }
            i = attr_end + 1;
        }
        if i >= end {
            break;
        }
        // `pub name :` — the field itself.
        while i < end && (toks[i].is_ident("pub") || toks[i].is_punct("(")) {
            if toks[i].is_punct("(") {
                match matching_paren(toks, i) {
                    Some(e) => i = e.min(end) + 1,
                    None => return,
                }
            } else {
                i += 1;
            }
        }
        if i >= end {
            break;
        }
        let field = &toks[i];
        if field.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        if !has_default {
            out.push(finding(
                ctx,
                "serde-default",
                field.line,
                format!(
                    "field `{struct_name}.{}` lacks #[serde(default)] — a schema change must \
                     deserialize as a cache miss, not an error",
                    field.text
                ),
            ));
        }
        // Skip the type, to the `,` at this nesting depth (or the end).
        let mut depth = 0i32;
        while i < end {
            match toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// R5 — every crate root opts out of `unsafe` for good.
fn forbid_unsafe(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.is_crate_root {
        return;
    }
    let toks = ctx.tokens;
    let found = (0..toks.len()).any(|i| {
        toks[i].is_punct("#")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct("["))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct("("))
            && toks[i + 5..]
                .iter()
                .take_while(|t| !t.is_punct(")"))
                .any(|t| t.is_ident("unsafe_code"))
    });
    if !found {
        out.push(finding(
            ctx,
            "forbid-unsafe",
            1,
            "crate root lacks #![forbid(unsafe_code)]".to_string(),
        ));
    }
}

/// R6 — no float `==`/`!=` outside tests.
fn float_eq(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.is_test[i] {
            continue;
        }
        if !(toks[i].is_punct("==") || toks[i].is_punct("!=")) {
            continue;
        }
        let neighbor_float = (i > 0 && toks[i - 1].kind == TokKind::Float)
            || toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Float);
        if neighbor_float {
            out.push(finding(
                ctx,
                "float-eq",
                toks[i].line,
                format!(
                    "`{}` against a float literal — exact float comparison is fragile; \
                     compare ranges, bits, or add an allow with the exactness argument",
                    toks[i].text
                ),
            ));
        }
    }
}

/// R7 — documentation on the scheme trait and error enums.
fn missing_doc(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let Some(&(_, scope)) = DOC_SCOPES.iter().find(|(f, _)| *f == ctx.rel_path) else {
        return;
    };
    let toks = ctx.tokens;
    // Lines on which a doc comment ends, and lines holding only attributes —
    // a doc comment "covers" an item if it ends just above the item or its
    // attribute lines.
    let doc_end_lines: Vec<u32> = ctx
        .comments
        .iter()
        .filter(|c| c.doc)
        .map(|c| c.end_line)
        .collect();

    let mut i = 0;
    while i < toks.len() {
        if ctx.is_test[i] {
            i += 1;
            continue;
        }
        let is_pub = toks[i].is_ident("pub");
        let kw = if is_pub {
            toks.get(i + 1)
        } else {
            Some(&toks[i])
        };
        let Some(kw) = kw else { break };
        if is_pub && kw.is_ident("trait") && scope == DocScope::TraitsAndEnums {
            if let Some(open) = toks[i..].iter().position(|t| t.is_punct("{")) {
                let open = i + open;
                if let Some(end) = matching_brace(toks, open) {
                    check_trait_items(ctx, toks, open, end, &doc_end_lines, out);
                    i = end + 1;
                    continue;
                }
            }
        }
        if is_pub && kw.is_ident("enum") {
            let name = toks.get(i + 2).map(|t| t.text.clone()).unwrap_or_default();
            if let Some(open) = toks[i..].iter().position(|t| t.is_punct("{")) {
                let open = i + open;
                if let Some(end) = matching_brace(toks, open) {
                    check_enum_variants(ctx, &name, toks, open, end, &doc_end_lines, out);
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Whether an item whose first token (attribute or signature) sits on
/// `first_line` has a doc comment directly above it.
fn has_doc_above(first_line: u32, doc_end_lines: &[u32]) -> bool {
    doc_end_lines.contains(&(first_line.saturating_sub(1)))
}

fn check_trait_items(
    ctx: &FileCtx<'_>,
    toks: &[Token],
    open: usize,
    end: usize,
    doc_end_lines: &[u32],
    out: &mut Vec<Finding>,
) {
    let mut i = open + 1;
    while i < end {
        let item_start = i;
        // Scan this item: to its terminating `;` or past its `{...}` body.
        let mut fn_name: Option<String> = None;
        let mut j = i;
        let mut depth = 0i32;
        while j < end {
            let t = &toks[j];
            match t.text.as_str() {
                "(" | "[" | "{" => {
                    if t.is_punct("{") && depth == 0 {
                        // Default method body: skip it whole.
                        if let Some(close) = matching_brace(toks, j) {
                            j = close;
                        }
                        break;
                    }
                    depth += 1;
                }
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {
                    if t.is_ident("fn") && fn_name.is_none() {
                        fn_name = toks.get(j + 1).map(|n| n.text.clone());
                    }
                }
            }
            j += 1;
        }
        if let Some(name) = fn_name {
            if !has_doc_above(toks[item_start].line, doc_end_lines) {
                out.push(finding(
                    ctx,
                    "missing-doc",
                    toks[item_start].line,
                    format!("trait method `{name}` has no doc comment"),
                ));
            }
        }
        i = j + 1;
    }
}

fn check_enum_variants(
    ctx: &FileCtx<'_>,
    enum_name: &str,
    toks: &[Token],
    open: usize,
    end: usize,
    doc_end_lines: &[u32],
    out: &mut Vec<Finding>,
) {
    let mut i = open + 1;
    while i < end {
        let variant_start = i;
        // First ident after attributes is the variant name.
        let mut j = i;
        while j < end && toks[j].is_punct("#") {
            match matching_bracket(toks, j + 1) {
                Some(e) => j = e + 1,
                None => return,
            }
        }
        if j >= end || toks[j].kind != TokKind::Ident {
            break;
        }
        let name = toks[j].text.clone();
        if !has_doc_above(toks[variant_start].line, doc_end_lines) {
            out.push(finding(
                ctx,
                "missing-doc",
                toks[variant_start].line,
                format!("enum variant `{enum_name}::{name}` has no doc comment"),
            ));
        }
        // Skip to the `,` at this depth (variant payloads may nest).
        let mut depth = 0i32;
        while j < end {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
}

/// R8 — library code never prints to stdout or leaves `dbg!` behind.
fn no_debug_print(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if PRINT_EXEMPT_CRATES.contains(&ctx.crate_name) || ctx.file_name == "main.rs" {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if ctx.is_test[i] {
            continue;
        }
        if toks[i].kind == TokKind::Ident
            && (toks[i].text == "println" || toks[i].text == "dbg")
            && toks[i + 1].is_punct("!")
            && !(i > 0 && toks[i - 1].is_punct("."))
        {
            out.push(finding(
                ctx,
                "no-debug-print",
                toks[i].line,
                format!(
                    "{}! in library code — return strings or use the obs layer",
                    toks[i].text
                ),
            ));
        }
    }
}

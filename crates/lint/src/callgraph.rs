//! Workspace-wide approximate call graph and the `panic-reachability` rule.
//!
//! The graph's nodes are every `fn` body in the scanned source set (test
//! code excluded); edges go from a function to the functions its body
//! *names*. Three call shapes are recognized:
//!
//! * **qualified** — `Type::name(..)`: resolved against `(owner, name)`
//!   pairs; falls back to free functions named `name` inside a module whose
//!   crate matches the path segment (`ipu_flash::read(..)`).
//! * **direct** — `name(..)`: resolved to free functions named `name`,
//!   preferring the caller's own crate.
//! * **method** — `.name(..)`: resolved to *every* workspace fn named
//!   `name` that has an owner (the "method-name fallback"). Receiver types
//!   are not inferred, so this over-approximates: a `.record(..)` call edges
//!   to every workspace `record` method.
//!
//! Soundness posture: reachability is an **over**-approximation (extra
//! edges, never missing name matches), so `panic-reachability` errs toward
//! flagging. The known under-approximations — calls through `Box<dyn Fn>`,
//! function pointers, and macro-generated bodies — do not occur on the
//! host-reachable surfaces this rule guards; DESIGN.md §13 records them.
//!
//! Seeds (the "host-reachable" set) are the workspace's externally driven
//! entry points:
//!
//! * every method of an `impl FtlScheme for _` block, plus `FtlScheme`
//!   trait default bodies — the per-request dispatch surface;
//! * `FlashDevice::{program, read, read_scaled, try_erase}` — the flash
//!   array entry points (crate `flash`);
//! * every method of `EventCore` (crate `sim`) — the event-heap dispatch
//!   machinery that interleaves GC/scrub pulses with host ops.
//!
//! A *panicking token* inside any reachable fn is a finding: `.unwrap(` /
//! `.expect(`, the panic macro family, and slice indexing **inside `match`
//! arms** — the indexing shape that has actually bitten this codebase, and
//! the same calibration the old lexical `no-panic` rule used. Indexing
//! outside match arms is deliberately not a panic token: the FTL hot paths
//! are full of bounds-established `frame[level]`-style access, and flagging
//! all of it would bury the rule under allow comments (DESIGN.md §13 records
//! this noise-floor decision).

use crate::lexer::{TokKind, Token};
use crate::ttree::FnDef;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A call site extracted from a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallRef {
    /// `name(..)` with no path or receiver.
    Direct { name: String },
    /// `Owner::name(..)` — `owner` is the last path segment before `::`.
    Qualified { owner: String, name: String },
    /// `.name(..)` method call.
    Method { name: String },
}

/// One panicking token inside a fn body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: u32,
    /// Human description, e.g. "`.unwrap()`" or "`panic!`".
    pub what: String,
}

/// Per-fn facts contributed by one file's analysis pass.
#[derive(Debug, Clone)]
pub struct FnFacts {
    pub def: FnDef,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Crate directory name (`ftl`, `sim`, …).
    pub crate_name: String,
    pub calls: Vec<CallRef>,
    pub panics: Vec<PanicSite>,
}

/// Method names of [`FlashDevice`] that host requests enter through.
const FLASH_SEED_FNS: &[&str] = &["program", "read", "read_scaled", "try_erase"];

/// Extracts calls and panic sites from one fn body. `match_spans` are the
/// file's `match` body token spans: indexing is a panic token only inside
/// them.
pub fn scan_body(
    toks: &[Token],
    body: (usize, usize),
    match_spans: &[(usize, usize)],
) -> (Vec<CallRef>, Vec<PanicSite>) {
    let mut calls = Vec::new();
    let mut panics = Vec::new();
    let (open, close) = body;
    for i in open + 1..close {
        let t = &toks[i];
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            let name = t.text.clone();
            let prev = i.checked_sub(1).map(|p| &toks[p]);
            // `fn name(` is a nested definition, not a call; `match`/`if`
            // style keywords never precede `(` as calls either.
            if prev.is_some_and(|p| p.is_ident("fn")) {
                continue;
            }
            if name == "unwrap" || name == "expect" {
                if prev.is_some_and(|p| p.is_punct(".")) {
                    panics.push(PanicSite {
                        line: t.line,
                        what: format!("`.{name}()`"),
                    });
                }
                continue;
            }
            match prev {
                Some(p) if p.is_punct(".") => calls.push(CallRef::Method { name }),
                Some(p) if p.is_punct("::") => {
                    let owner = i
                        .checked_sub(2)
                        .map(|q| &toks[q])
                        .filter(|q| q.kind == TokKind::Ident)
                        .map(|q| q.text.clone());
                    match owner {
                        Some(owner) => calls.push(CallRef::Qualified { owner, name }),
                        None => calls.push(CallRef::Direct { name }),
                    }
                }
                _ => calls.push(CallRef::Direct { name }),
            }
            continue;
        }
        // Panic-family macros.
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && !(i > 0 && toks[i - 1].is_punct("."))
        {
            panics.push(PanicSite {
                line: t.line,
                what: format!("`{}!`", t.text),
            });
            continue;
        }
        // Indexing: `expr[` where expr ends in an ident/`)`/`]`/`?`.
        if t.is_punct("[") && i > open + 1 {
            let prev = &toks[i - 1];
            let indexes = (prev.kind == TokKind::Ident && !crate::rules::is_keyword(&prev.text))
                || prev.is_punct(")")
                || prev.is_punct("]")
                || prev.is_punct("?");
            if !indexes {
                continue;
            }
            if match_spans.iter().any(|&(s, e)| i > s && i < e) {
                panics.push(PanicSite {
                    line: t.line,
                    what: "indexing in a match arm".to_string(),
                });
            }
        }
    }
    (calls, panics)
}

/// The assembled workspace call graph.
pub struct CallGraph {
    nodes: Vec<FnFacts>,
    /// name → node ids (all fns).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (owner, name) → node ids.
    by_owner: BTreeMap<(String, String), Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph. `nodes` must already exclude test fns; order is
    /// preserved (callers should pass files in sorted order so node ids —
    /// and therefore BFS tie-breaks — are deterministic).
    pub fn build(nodes: Vec<FnFacts>) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(n.def.name.clone()).or_default().push(id);
            if let Some(owner) = &n.def.owner {
                by_owner
                    .entry((owner.clone(), n.def.name.clone()))
                    .or_default()
                    .push(id);
            }
        }
        CallGraph {
            nodes,
            by_name,
            by_owner,
        }
    }

    /// Resolves one call site to candidate callee node ids.
    fn resolve(&self, caller_crate: &str, call: &CallRef) -> Vec<usize> {
        match call {
            CallRef::Qualified { owner, name } => {
                if let Some(ids) = self.by_owner.get(&(owner.clone(), name.clone())) {
                    return ids.clone();
                }
                // `module::func(..)` — the "owner" was a module path segment.
                // Fall back to free fns with that name; a crate-looking
                // segment (`ipu_flash`) narrows to that crate.
                let krate = owner.strip_prefix("ipu_").unwrap_or(owner);
                let free: Vec<usize> = self
                    .by_name
                    .get(name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| self.nodes[id].def.owner.is_none())
                            .collect()
                    })
                    .unwrap_or_default();
                let in_crate: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&id| self.nodes[id].crate_name == krate)
                    .collect();
                if !in_crate.is_empty() {
                    in_crate
                } else {
                    free
                }
            }
            CallRef::Direct { name } => {
                let free: Vec<usize> = self
                    .by_name
                    .get(name)
                    .map(|ids| {
                        ids.iter()
                            .copied()
                            .filter(|&id| self.nodes[id].def.owner.is_none())
                            .collect()
                    })
                    .unwrap_or_default();
                let same: Vec<usize> = free
                    .iter()
                    .copied()
                    .filter(|&id| self.nodes[id].crate_name == caller_crate)
                    .collect();
                if !same.is_empty() {
                    same
                } else {
                    free
                }
            }
            // Method-name fallback: any owned fn with this name, anywhere.
            CallRef::Method { name } => self
                .by_name
                .get(name)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| self.nodes[id].def.owner.is_some())
                        .collect()
                })
                .unwrap_or_default(),
        }
    }

    /// Whether a node is a host-reachability seed.
    fn is_seed(n: &FnFacts) -> bool {
        if n.def.trait_name.as_deref() == Some("FtlScheme") {
            return true;
        }
        if n.crate_name == "flash"
            && n.def.owner.as_deref() == Some("FlashDevice")
            && FLASH_SEED_FNS.contains(&n.def.name.as_str())
        {
            return true;
        }
        n.crate_name == "sim" && n.def.owner.as_deref() == Some("EventCore")
    }

    /// Runs the reachability analysis, returning `panic-reachability`
    /// findings sorted by `(file, line)`.
    pub fn panic_reachability(&self) -> Vec<Finding> {
        // BFS from seeds, recording a parent pointer for the path message.
        let n = self.nodes.len();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut reached = vec![false; n];
        let mut queue = VecDeque::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if Self::is_seed(node) {
                reached[id] = true;
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            let caller_crate = self.nodes[id].crate_name.clone();
            let mut targets = BTreeSet::new();
            for call in &self.nodes[id].calls {
                for t in self.resolve(&caller_crate, call) {
                    targets.insert(t);
                }
            }
            for t in targets {
                if !reached[t] {
                    reached[t] = true;
                    parent[t] = Some(id);
                    queue.push_back(t);
                }
            }
        }

        let mut out = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if !reached[id] || node.panics.is_empty() {
                continue;
            }
            let path = self.path_label(id, &parent);
            for p in &node.panics {
                out.push(Finding {
                    rule: "panic-reachability",
                    file: node.file.clone(),
                    line: p.line,
                    message: format!(
                        "{} in `{}` is host-reachable ({path}) — propagate an error or \
                         rewrite infallibly",
                        p.what,
                        node.label(),
                    ),
                });
            }
        }
        out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
        out
    }

    /// "seed `A::f` → `g` → `h`" labelling for one reached node.
    fn path_label(&self, id: usize, parent: &[Option<usize>]) -> String {
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(p) = parent[cur] {
            chain.push(p);
            cur = p;
            if chain.len() > 6 {
                break; // keep messages bounded; the head is the seed side
            }
        }
        chain.reverse();
        let labels: Vec<String> = chain.iter().map(|&i| self.nodes[i].label()).collect();
        if labels.len() == 1 {
            format!("seed `{}`", labels[0])
        } else {
            format!("via seed `{}` → `{}`", labels[0], labels[1..].join("` → `"))
        }
    }

    /// Node count (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl FnFacts {
    /// `Owner::name` or bare `name` label for messages.
    fn label(&self) -> String {
        match &self.def.owner {
            Some(o) => format!("{o}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::ttree::{collect_fns, TokenTreeIndex};

    fn facts(crate_name: &str, file: &str, src: &str) -> Vec<FnFacts> {
        let out = lex(src);
        let tree = TokenTreeIndex::build(&out.tokens);
        let match_spans = crate::exhaustive_match::match_bodies(&out.tokens, &tree);
        collect_fns(&out.tokens, &tree)
            .into_iter()
            .filter(|f| !f.is_test)
            .map(|def| {
                let (calls, panics) = scan_body(&out.tokens, def.body, &match_spans);
                FnFacts {
                    def,
                    file: file.to_string(),
                    crate_name: crate_name.to_string(),
                    calls,
                    panics,
                }
            })
            .collect()
    }

    #[test]
    fn cross_file_unwrap_reachable_from_scheme_seed() {
        let mut nodes = facts(
            "ftl",
            "crates/ftl/src/a.rs",
            "impl FtlScheme for Ipu { fn on_write(&mut self) { helper(1); } }",
        );
        nodes.extend(facts(
            "sim",
            "crates/sim/src/b.rs",
            "pub fn helper(x: u32) -> u32 { maybe(x).unwrap() }\npub fn maybe(x: u32) -> Option<u32> { Some(x) }",
        ));
        let g = CallGraph::build(nodes);
        let findings = g.panic_reachability();
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert_eq!(findings[0].file, "crates/sim/src/b.rs");
        assert!(findings[0].message.contains("Ipu::on_write"));
    }

    #[test]
    fn unreached_fn_may_panic() {
        let nodes = facts(
            "core",
            "crates/core/src/x.rs",
            "pub fn render() { v.last().unwrap(); }",
        );
        let g = CallGraph::build(nodes);
        assert!(g.panic_reachability().is_empty());
    }

    #[test]
    fn method_name_fallback_bridges_receivers() {
        let mut nodes = facts(
            "sim",
            "crates/sim/src/ec.rs",
            "impl EventCore { fn dispatch(&mut self) { self.sched.push_op(1); } }",
        );
        nodes.extend(facts(
            "sim",
            "crates/sim/src/res.rs",
            "impl ChipSchedule { fn push_op(&mut self, x: u32) { panic!(\"full\"); } }",
        ));
        let g = CallGraph::build(nodes);
        let findings = g.panic_reachability();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("ChipSchedule::push_op"));
        assert!(findings[0].message.contains("EventCore::dispatch"));
    }

    #[test]
    fn flash_entry_points_are_seeds_and_match_arm_indexing_counts() {
        let nodes = facts(
            "flash",
            "crates/flash/src/device.rs",
            "impl FlashDevice { pub fn program(&mut self, i: usize) { match i { 0 => self.cells[i] = 1, _ => {} } } }",
        );
        let g = CallGraph::build(nodes);
        let findings = g.panic_reachability();
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("indexing in a match arm"));
    }

    #[test]
    fn indexing_outside_match_arms_is_not_a_panic_token() {
        let nodes = facts(
            "flash",
            "crates/flash/src/device.rs",
            "impl FlashDevice { pub fn program(&mut self, i: usize) { let x = self.cells[i]; } }",
        );
        let g = CallGraph::build(nodes);
        assert!(g.panic_reachability().is_empty());
    }

    #[test]
    fn test_fns_never_seed_or_sink() {
        let nodes = facts(
            "ftl",
            "crates/ftl/src/a.rs",
            "#[cfg(test)] mod t { impl FtlScheme for F { fn w(&mut self) { x.unwrap(); } } }",
        );
        let g = CallGraph::build(nodes);
        assert!(g.is_empty());
        assert!(g.panic_reachability().is_empty());
    }

    #[test]
    fn qualified_calls_resolve_by_owner() {
        let mut nodes = facts(
            "ftl",
            "crates/ftl/src/a.rs",
            "impl FtlScheme for Ipu { fn on_read(&mut self) { Helper::go(); Other::go(); } }",
        );
        nodes.extend(facts(
            "ftl",
            "crates/ftl/src/b.rs",
            "impl Helper { fn go() { panic!(\"a\"); } }\nimpl Unrelated { fn nope() { panic!(\"b\"); } }",
        ));
        let g = CallGraph::build(nodes);
        let findings = g.panic_reachability();
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("Helper::go"));
    }
}

//! `cargo bench -p ipu-bench --bench fig8_read_error_rate`
//!
//! Regenerates the paper's Figure 8 (average read error rate) from the cached evaluation matrix
//! (see crate docs for the IPU_BENCH_* environment knobs).

fn main() {
    let cfg = ipu_bench::bench_config();
    let matrix = ipu_bench::main_matrix_cached(&cfg);
    println!("{}", ipu_core::report::render_fig8(&matrix));
}

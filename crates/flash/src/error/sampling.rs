//! Deterministic error sampling.
//!
//! The default read path charges ECC latency by the *expected* raw bit error
//! count — smooth, reproducible, and what the paper's averaged figures need.
//! For studies of tail behaviour (uncorrectable-read probability, retry
//! storms), a stochastic mode is more faithful: each read draws an actual
//! error count from a Poisson distribution with the expected count as its
//! mean (the standard approximation of Binomial(bits, rber) at small rber).
//!
//! Sampling stays deterministic: the draw is keyed by a seed plus the read's
//! physical address and the device's read counter, through a SplitMix64
//! stream — the same simulation run always sees the same errors, and no
//! global RNG state leaks between components.

use serde::{Deserialize, Serialize};

/// How the device turns an expected error count into a charged error count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ErrorMode {
    /// Charge the expectation (deterministic, smooth; the paper's metric).
    #[default]
    Expected,
    /// Draw a Poisson-distributed error count per read, keyed by this seed.
    Sampled { seed: u64 },
}

/// SplitMix64: tiny, high-quality, counter-based PRNG (public domain).
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A uniform f64 in [0, 1) from a hashed key.
#[inline]
pub(crate) fn uniform(key: u64) -> f64 {
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Draws `Poisson(mean)` deterministically from `(seed, stream)`.
///
/// Uses Knuth's inversion for small means (the regime here: expected bit
/// errors per read are a few tens at most) with a hard cap to keep the loop
/// bounded even for pathological parameters.
pub fn sample_poisson(mean: f64, seed: u64, stream: u64) -> u32 {
    assert!(mean >= 0.0, "negative mean");
    // ipu-lint: allow(float-eq) — exact-zero fast path: a zero mean (error injection disabled) must yield exactly zero errors
    if mean == 0.0 {
        return 0;
    }
    // For large means, fall back to a normal approximation (rounded, ≥ 0).
    if mean > 256.0 {
        // Box-Muller from two hashed uniforms.
        let u1 = uniform(seed ^ splitmix64(stream)).max(1e-12);
        let u2 = uniform(seed.wrapping_add(0xA5A5) ^ splitmix64(stream ^ 0x5A5A));
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (mean + z * mean.sqrt()).round().max(0.0) as u32;
    }
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    // Each step consumes one hashed uniform from the (seed, stream, k) key.
    loop {
        p *= uniform(seed ^ splitmix64(stream.wrapping_add(k as u64)));
        if p <= l || k > 4096 {
            return k;
        }
        k += 1;
    }
}

impl ErrorMode {
    /// Turns an expected error count into the charged error count for one
    /// read, identified by a stable per-read `stream` key.
    pub fn realize(self, expected: f64, stream: u64) -> f64 {
        match self {
            ErrorMode::Expected => expected,
            ErrorMode::Sampled { seed } => sample_poisson(expected, seed, stream) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_mode_is_identity() {
        assert_eq!(ErrorMode::Expected.realize(9.2, 77), 9.2);
        assert_eq!(ErrorMode::default(), ErrorMode::Expected);
    }

    #[test]
    fn sampling_is_deterministic_per_key() {
        let m = ErrorMode::Sampled { seed: 42 };
        assert_eq!(m.realize(9.2, 1), m.realize(9.2, 1));
        // Different streams (reads) generally differ.
        let distinct: std::collections::HashSet<u64> =
            (0..64).map(|s| m.realize(9.2, s) as u64).collect();
        assert!(distinct.len() > 3, "sampled values suspiciously constant");
        // Different seeds give different sequences.
        let m2 = ErrorMode::Sampled { seed: 43 };
        let a: Vec<u64> = (0..32).map(|s| m.realize(9.2, s) as u64).collect();
        let b: Vec<u64> = (0..32).map(|s| m2.realize(9.2, s) as u64).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn poisson_mean_converges() {
        for mean in [0.5f64, 3.0, 9.2, 40.0] {
            let n = 20_000u64;
            let sum: u64 = (0..n).map(|s| sample_poisson(mean, 7, s) as u64).sum();
            let emp = sum as f64 / n as f64;
            assert!(
                (emp - mean).abs() < mean * 0.06 + 0.05,
                "mean {mean}: empirical {emp}"
            );
        }
    }

    #[test]
    fn poisson_variance_is_poisson_like() {
        let mean = 9.2f64;
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n).map(|s| sample_poisson(mean, 11, s) as f64).collect();
        let emp_mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - emp_mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        // Poisson: variance == mean (tolerate 15%).
        assert!(
            (var - mean).abs() < mean * 0.15,
            "variance {var} vs mean {mean}"
        );
    }

    #[test]
    fn zero_mean_yields_zero() {
        assert_eq!(sample_poisson(0.0, 1, 2), 0);
    }

    #[test]
    fn large_mean_uses_normal_tail() {
        let mean = 1000.0;
        let n = 5_000u64;
        let sum: u64 = (0..n).map(|s| sample_poisson(mean, 3, s) as u64).sum();
        let emp = sum as f64 / n as f64;
        assert!(
            (emp - mean).abs() < mean * 0.05,
            "large-mean path broken: {emp}"
        );
    }
}

//! Device configuration: geometry, timing (paper Table 2) and error models.

use serde::{Deserialize, Serialize};

use crate::error::ber::BerModel;
use crate::error::disturb::DisturbConfig;
use crate::error::ecc::EccModel;
use crate::error::sampling::ErrorMode;
use crate::fault::{FaultProfile, RetryLadder};
use crate::geometry::FlashGeometry;
use crate::mode::CellMode;
use crate::time::{ms_to_ns, Nanos};

/// Raw flash operation latencies, per the paper's Table 2 (values in ms there).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// SLC-mode page read time, ms (Table 2: 0.025).
    pub slc_read_ms: f64,
    /// MLC-mode page read time, ms (Table 2: 0.05).
    pub mlc_read_ms: f64,
    /// SLC-mode page program time, ms (Table 2: 0.3).
    pub slc_write_ms: f64,
    /// MLC-mode page program time, ms (Table 2: 0.9).
    pub mlc_write_ms: f64,
    /// Block erase time, ms (Table 2: 10).
    pub erase_ms: f64,
    /// Channel transfer time per KB moved, ms. Table 2 does not list a bus
    /// speed; the default models a 400 MB/s ONFI channel (≈0.0025 ms/KB).
    pub transfer_ms_per_kb: f64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            slc_read_ms: 0.025,
            mlc_read_ms: 0.05,
            slc_write_ms: 0.3,
            mlc_write_ms: 0.9,
            erase_ms: 10.0,
            transfer_ms_per_kb: 0.0025,
        }
    }
}

impl TimingConfig {
    /// Cell (array) read latency for `mode`, in nanoseconds.
    #[inline]
    pub fn read_ns(&self, mode: CellMode) -> Nanos {
        match mode {
            CellMode::Slc => ms_to_ns(self.slc_read_ms),
            CellMode::Mlc => ms_to_ns(self.mlc_read_ms),
        }
    }

    /// Cell (array) program latency for `mode`, in nanoseconds.
    ///
    /// A partial program still drives the full word line, so program time does
    /// not scale down with the number of subpages written.
    #[inline]
    pub fn program_ns(&self, mode: CellMode) -> Nanos {
        match mode {
            CellMode::Slc => ms_to_ns(self.slc_write_ms),
            CellMode::Mlc => ms_to_ns(self.mlc_write_ms),
        }
    }

    /// Block erase latency in nanoseconds.
    #[inline]
    pub fn erase_ns(&self) -> Nanos {
        ms_to_ns(self.erase_ms)
    }

    /// Channel transfer latency for `bytes` of data, in nanoseconds.
    #[inline]
    pub fn transfer_ns(&self, bytes: u32) -> Nanos {
        ms_to_ns(self.transfer_ms_per_kb * bytes as f64 / 1024.0)
    }

    /// Checks all latencies are non-negative and ordered sensibly.
    pub fn validate(&self) -> Result<(), String> {
        let vals = [
            self.slc_read_ms,
            self.mlc_read_ms,
            self.slc_write_ms,
            self.mlc_write_ms,
            self.erase_ms,
            self.transfer_ms_per_kb,
        ];
        if vals.iter().any(|v| *v < 0.0) {
            return Err("latencies must be non-negative".into());
        }
        if self.slc_read_ms > self.mlc_read_ms || self.slc_write_ms > self.mlc_write_ms {
            return Err("SLC-mode operations must not be slower than MLC-mode".into());
        }
        Ok(())
    }
}

/// Full device configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Physical layout (channels × chips × dies × planes × blocks × pages).
    #[serde(default)]
    pub geometry: FlashGeometry,
    /// Operation latencies (Table 2).
    #[serde(default)]
    pub timing: TimingConfig,
    /// Raw bit error rate model.
    #[serde(default)]
    pub ber: BerModel,
    /// Read/program disturb accumulation model.
    #[serde(default)]
    pub disturb: DisturbConfig,
    /// ECC correction strength.
    #[serde(default)]
    pub ecc: EccModel,
    /// Initial P/E cycle count pre-applied to every block, modelling device age
    /// (paper §4.5 sweeps this over {1000, 2000, 4000, 8000}; default 4000).
    ///
    /// Serde default is the type default (0 = fresh device), not the
    /// paper-scale 4000: a config file that omits it asks for no pre-ageing.
    #[serde(default)]
    pub initial_pe_cycles: u32,
    /// Mode blocks are formatted to at device creation.
    #[serde(default)]
    pub initial_mode: CellMode,
    /// Manufacturer NOP limit: maximum program operations per SLC-mode page
    /// (paper / datasheets: 4). Ablation benches sweep {1, 2, 4}.
    ///
    /// Serde default 0 fails [`DeviceConfig::validate`] loudly rather than
    /// silently picking a NOP limit.
    #[serde(default)]
    pub max_partial_programs: u8,
    /// How reads realize raw bit errors: the expectation (default, the
    /// paper's averaged metrics) or a deterministic Poisson draw per read
    /// (tail studies: uncorrectable-read probability, retry behaviour).
    #[serde(default)]
    pub error_mode: ErrorMode,
    /// Injected media faults (inert by default; see [`FaultProfile`]).
    #[serde(default)]
    pub fault: FaultProfile,
    /// Read-retry ladder the FTL walks on uncorrectable reads (empty by
    /// default: no retries, the pre-fault-model behaviour).
    #[serde(default)]
    pub retry: RetryLadder,
}

impl Default for DeviceConfig {
    /// The paper-scale device ([`DeviceConfig::paper_scale`]).
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl DeviceConfig {
    /// Paper-scale device as in Table 2 (P/E pre-aged to 4000 cycles).
    pub fn paper_scale() -> Self {
        DeviceConfig {
            geometry: FlashGeometry::paper_scale(),
            timing: TimingConfig::default(),
            ber: BerModel::default(),
            disturb: DisturbConfig::default(),
            ecc: EccModel::default(),
            initial_pe_cycles: 4000,
            initial_mode: CellMode::Mlc,
            max_partial_programs: crate::state::MAX_PARTIAL_PROGRAMS_SLC,
            error_mode: ErrorMode::Expected,
            fault: FaultProfile::default(),
            retry: RetryLadder::default(),
        }
    }

    /// Tiny device for unit tests.
    pub fn small_for_tests() -> Self {
        DeviceConfig {
            geometry: FlashGeometry::small_for_tests(),
            ..Self::paper_scale()
        }
    }

    /// Validates every component.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        self.timing.validate()?;
        self.ber.validate()?;
        self.disturb.validate()?;
        self.ecc.validate()?;
        if self.max_partial_programs == 0 {
            return Err("max_partial_programs must be at least 1".into());
        }
        self.fault.validate()?;
        self.retry.validate()?;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // mutate-then-validate idiom
mod tests {
    use super::*;
    use crate::time::MILLISECOND;

    #[test]
    fn default_timing_matches_table2() {
        let t = TimingConfig::default();
        assert_eq!(t.read_ns(CellMode::Slc), 25_000);
        assert_eq!(t.read_ns(CellMode::Mlc), 50_000);
        assert_eq!(t.program_ns(CellMode::Slc), 300_000);
        assert_eq!(t.program_ns(CellMode::Mlc), 900_000);
        assert_eq!(t.erase_ns(), 10 * MILLISECOND);
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let t = TimingConfig::default();
        let one_sub = t.transfer_ns(4096);
        let full_page = t.transfer_ns(16 * 1024);
        assert_eq!(full_page, one_sub * 4);
        assert_eq!(t.transfer_ns(0), 0);
    }

    #[test]
    fn paper_scale_config_validates() {
        DeviceConfig::paper_scale().validate().unwrap();
        DeviceConfig::small_for_tests().validate().unwrap();
    }

    #[test]
    fn validation_rejects_inverted_latencies() {
        let mut t = TimingConfig::default();
        t.slc_read_ms = 1.0; // slower than MLC read
        assert!(t.validate().is_err());
        let mut t = TimingConfig::default();
        t.erase_ms = -1.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = DeviceConfig::paper_scale();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: DeviceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}

#!/usr/bin/env python3
"""Fleet-smoke gate: assert the merged fleet reports are self-consistent.

Usage: check_fleet.py <fleet.json> [--faulted]

The input is the ExperimentRecord written by `ipu-sim fleet --save
fleet.json`, in either mode (capacity search or fixed tenant count). For
every merged FleetReport the gate checks the aggregation invariants the
fleet layer promises:

* per-device completed ops, net of replica write traffic, sum exactly to
  the fleet total (`sum(ops - mirror_ops) == total_ops`);
* lost requests are conserved, never dropped: offered ≡ completed + lost,
  and when the tolerance pass ran, logical_ops ≡ acked + lost with
  acked ≡ clean + recovered;
* the pooled fleet p99 is no better than the median busy-device p99 —
  merging can only pool tails together, never hide them (skipped when the
  tolerance pass overlaid the latency view: hedged reads can legitimately
  beat the physical device tail);
* hot-shard shares are fractions of the total device load and the skew is
  max/mean of the per-device loads.

Capacity-search results are additionally checked for internal consistency:
every probe's verdict matches its latency against the SLO, `max_tenants`
is the largest passing probe, and the at-capacity report ran at exactly
that tenant count.

With `--faulted` the gate also requires the run to demonstrate fault
tolerance end to end: at least one report carries the fleet-reliability
ledger with `recovered > 0` and `lost == 0` (mirror pairs must recover
every request a dead device dropped), and a capacity-mode run must quote
degraded capacity next to the healthy headline.
"""

import json
import sys


def check_report(r: dict) -> None:
    name = (r["trace"], r["scheme"], r["policy"])
    ops = [d["ops"] for d in r["per_device"]]
    mirror = [d.get("mirror_ops", 0) for d in r["per_device"]]
    assert len(ops) == r["devices"], name
    primary = sum(o - m for o, m in zip(ops, mirror))
    assert primary == r["total_ops"], (name, primary, r["total_ops"])

    # Lost-request conservation at the host ledger: offered ≡ completed +
    # lost, and failures never exceed what was offered.
    rel = r["reliability"]
    lost = rel.get("lost", 0)
    assert lost >= 0 and rel["failed"] <= rel["total"] + lost, (name, rel)

    fr = r.get("fleet_reliability")
    if fr is None:
        busy_p99 = sorted(d["p99_ns"] for d in r["per_device"] if d["ops"] > 0)
        if busy_p99:
            # Lower median: pooling tails can only raise the aggregate past
            # the typical device, never below it. (The tolerance pass
            # replaces the pooled view with the router's, where hedging can
            # beat the physical tail — hence gated on `fr is None`.)
            median = busy_p99[(len(busy_p99) - 1) // 2]
            assert r["p99_ns"] >= median, (name, r["p99_ns"], median)
    else:
        # Tolerance-pass ledger conservation: every logical request is
        # acked or lost, every ack is clean or recovered, and the ledger
        # covers exactly the completed logical ops.
        assert fr["logical_ops"] == fr["acked"] + fr["lost"], (name, fr)
        assert fr["acked"] == fr["clean"] + fr["recovered"], (name, fr)
        assert fr["logical_ops"] == r["total_ops"], (name, fr)
        assert fr["hedges_won"] <= fr["hedges_fired"], (name, fr)
        assert fr["lost"] <= lost, (name, fr, rel)
        assert len(r.get("health", [])) == r["devices"], name

    total = sum(ops)
    for h in r["load"]["hot_shards"]:
        assert h["ops"] == ops[h["device"]], name
        assert abs(h["share"] - h["ops"] / total) < 1e-9, name
    if total > 0:
        mean = total / len(ops)
        assert abs(r["load"]["skew"] - max(ops) / mean) < 1e-9, name


def check_capacity(c: dict) -> None:
    name = (c["trace"], c["scheme"])
    assert c["probes"], name
    passing = [p["tenants"] for p in c["probes"] if p["met_slo"]]
    for p in c["probes"]:
        assert p["met_slo"] == (p["p99_ns"] < c["slo_p99_ns"]), (name, p)
        assert 1 <= p["tenants"] <= c["tenant_cap"], (name, p)
    assert c["max_tenants"] == (max(passing) if passing else 0), name
    if c["max_tenants"] > 0:
        at = c["at_capacity"]
        assert at is not None, name
        assert at["tenants"] == c["max_tenants"], name
        check_report(at)
    else:
        assert c["at_capacity"] is None, name


def main() -> int:
    argv = sys.argv[1:]
    faulted = "--faulted" in argv
    argv = [a for a in argv if a != "--faulted"]
    if len(argv) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[0]) as f:
        record = json.load(f)

    run = record["result"]
    caps = run["capacity"]
    degraded = run.get("degraded", [])
    fixed = run["reports"]
    assert caps or fixed, "fleet run produced no reports"
    for c in caps + degraded:
        check_capacity(c)
    for r in fixed:
        check_report(r)
    if caps:
        # A search where no scheme serves a single tenant means the SLO (or
        # the search itself) degenerated — the smoke would be vacuous.
        assert any(c["max_tenants"] > 0 for c in caps), (
            "every capacity search came back zero"
        )

    if faulted:
        ledgers = [
            r["fleet_reliability"]
            for c in degraded
            if c["at_capacity"] is not None
            for r in [c["at_capacity"]]
            if r.get("fleet_reliability") is not None
        ] + [
            r["fleet_reliability"]
            for r in fixed
            if r.get("fleet_reliability") is not None
        ]
        assert ledgers, "--faulted run carries no fleet-reliability ledger"
        if caps:
            assert degraded, "--faulted capacity run quotes no degraded capacity"
        assert all(fr["lost"] == 0 for fr in ledgers), (
            "acked requests lost under mirroring",
            ledgers,
        )
        assert any(fr["recovered"] > 0 for fr in ledgers), (
            "no request ever failed over — the fault plan was vacuous",
            ledgers,
        )

    total_probes = sum(len(c["probes"]) for c in caps + degraded)
    mode = " (faulted gate)" if faulted else ""
    print(
        f"fleet OK{mode}: {len(caps)} healthy + {len(degraded)} degraded "
        f"capacity searches ({total_probes} probes), "
        f"{len(fixed)} fixed-size reports, {run['devices']} devices, "
        f"{run['policy']} routing — ops conserved, losses accounted"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

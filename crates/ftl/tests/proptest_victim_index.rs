//! Property tests pinning the indexed GC victim pickers to the retired
//! linear-scan oracles, plus an allocation-discipline test for the
//! steady-state write path.
//!
//! The victim index ([`ipu_ftl`]'s bucketed priority index) and the
//! incremental ISR evaluator must select *bit-identical* victims to the
//! original full-scan implementations under every reachable device state —
//! the schemes' counter fingerprints depend on it. Both oracles are retained
//! in the core solely so these tests can compare against them.

use ipu_flash::{DeviceConfig, FlashDevice};
use ipu_ftl::{FtlConfig, FtlScheme, SchemeKind};
use ipu_trace::{IoRequest, OpKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Op {
    write: bool,
    slot: u64,
    size_subpages: u8,
}

fn workload() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..12, 1u8..=4).prop_map(|(write, slot, size_subpages)| Op {
            write,
            slot,
            size_subpages,
        }),
        1..160,
    )
}

fn drive(ftl: &mut Box<dyn FtlScheme>, dev: &mut FlashDevice, t: usize, op: &Op) {
    let req = IoRequest::new(
        t as u64 * 1000,
        if op.write {
            OpKind::Write
        } else {
            OpKind::Read
        },
        op.slot * 65536,
        op.size_subpages as u32 * 4096,
    );
    if op.write {
        ftl.on_write(&req, req.timestamp_ns, dev);
    } else {
        ftl.on_read(&req, req.timestamp_ns, dev);
    }
}

/// After every op the indexed pickers must agree with the linear oracles —
/// including on `None` (no candidate) and on FIFO tie-breaks.
fn check_picker_equivalence(kind: SchemeKind, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
    let cfg = FtlConfig {
        slc_ratio: 0.2,
        ..FtlConfig::default()
    };
    let mut ftl = kind.build(&mut dev, cfg);

    for (t, op) in ops.iter().enumerate() {
        drive(&mut ftl, &mut dev, t, op);
        let now = (t as u64 + 1) * 1000;

        let greedy_oracle = ftl.core().oracle_slc_victim_greedy(&dev);
        let greedy_indexed = ftl.core().select_slc_victim_greedy();
        prop_assert_eq!(
            greedy_indexed,
            greedy_oracle,
            "{:?}: greedy index diverged from oracle after op {}",
            kind,
            t
        );

        let isr_oracle = ftl.core().oracle_slc_victim_isr(&dev, now);
        let isr_indexed = ftl.core_mut().select_slc_victim_isr(&dev, now);
        prop_assert_eq!(
            isr_indexed,
            isr_oracle,
            "{:?}: ISR picker diverged from oracle after op {}",
            kind,
            t
        );

        ftl.core()
            .check_invariants(&dev)
            .map_err(|e| TestCaseError::fail(format!("{kind:?}: {e}")))?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn baseline_pickers_match_oracles(ops in workload()) {
        check_picker_equivalence(SchemeKind::Baseline, &ops)?;
    }

    #[test]
    fn mga_pickers_match_oracles(ops in workload()) {
        check_picker_equivalence(SchemeKind::Mga, &ops)?;
    }

    #[test]
    fn ipu_pickers_match_oracles(ops in workload()) {
        check_picker_equivalence(SchemeKind::Ipu, &ops)?;
    }

    #[test]
    fn ipu_plus_pickers_match_oracles(ops in workload()) {
        check_picker_equivalence(SchemeKind::IpuPlus, &ops)?;
    }
}

/// Steady-state writes must not grow any scratch arena: after a warm-up
/// phase has sized the reusable buffers (`read_runs`, `isr_scratch`,
/// `gc_groups`), continued traffic — including GC rounds — reuses them.
/// Every take/put-back site bumps `stats.scratch_grows` when a buffer's
/// capacity changed while out on loan, so a flat counter proves the hot
/// path allocated nothing through the arenas.
#[test]
fn steady_state_writes_do_not_grow_scratch() {
    for kind in SchemeKind::all_extended() {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let cfg = FtlConfig {
            slc_ratio: 0.2,
            ..FtlConfig::default()
        };
        let mut ftl = kind.build(&mut dev, cfg);

        // Warm-up: overwrite and re-read a small working set until GC has
        // cycled the whole SLC region several times, sizing every scratch
        // buffer (the read-run splitter included).
        let mut t = 0u64;
        for round in 0..400u64 {
            let req = IoRequest::new(t * 1000, OpKind::Write, (round % 12) * 65536, 4 * 4096);
            ftl.on_write(&req, req.timestamp_ns, &mut dev);
            t += 1;
            let req = IoRequest::new(t * 1000, OpKind::Read, (round % 12) * 65536, 4 * 4096);
            ftl.on_read(&req, req.timestamp_ns, &mut dev);
            t += 1;
        }
        let grows_after_warmup = ftl.core().stats.scratch_grows;

        // Steady state: same working set, same op shapes. No arena may grow.
        for round in 0..400u64 {
            let req = IoRequest::new(t * 1000, OpKind::Write, (round % 12) * 65536, 4 * 4096);
            ftl.on_write(&req, req.timestamp_ns, &mut dev);
            t += 1;
            let req = IoRequest::new(t * 1000, OpKind::Read, (round % 12) * 65536, 4 * 4096);
            ftl.on_read(&req, req.timestamp_ns, &mut dev);
            t += 1;
        }
        assert_eq!(
            ftl.core().stats.scratch_grows,
            grows_after_warmup,
            "{kind:?}: steady-state traffic grew a scratch arena \
             (write path allocated)"
        );
    }
}

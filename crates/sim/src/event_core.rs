//! Discrete-event replay core: an explicit event heap interleaving host
//! operations with background GC, scrub and wear-leveling *steps*.
//!
//! The inline engine ([`ChipSchedule`](crate::resources::ChipSchedule)) models
//! background work as a lazily-drained per-chip queue: correct, but the drain
//! happens as a side effect of host scheduling, so GC interference is never an
//! explicit event that other machinery (preemption policies, suspension
//! models, instrumentation) can hook. [`EventCore`] makes the same timeline
//! event-driven: a `BinaryHeap<Reverse<Event>>` carries op-complete, GC-step
//! and scrub-step events (op-issue events are merged in from the replay
//! driver's already-sorted request stream), and every background round is a
//! resumable sequence of NAND-pulse steps.
//!
//! # Determinism and tie-breaking
//!
//! Events are ordered by `(time, class, seq)`:
//!
//! * `time` — simulated nanoseconds;
//! * `class` — same-instant causal order: op-complete (0) < op-issue (1) <
//!   GC-step (2) < scrub-step (3). Completions settle before new work issues,
//!   and a host op issued at time *t* beats a background pulse that could
//!   start at *t* — host work wins ties, exactly like the inline engine's
//!   strict-`<` drain;
//! * `seq` — a monotonically increasing tie-breaker, so the order is total
//!   and replays are bit-deterministic.
//!
//! With the default [`TimingConfig`] the core is **bit-identical** to the
//! inline oracle engine ([`replay_oracle`](crate::engine::replay_oracle)):
//! background pulses execute at exactly the start times the lazy drain would
//! compute, host operations preempt rounds at pulse boundaries, and reads
//! never wait for the write channel. The property test
//! `crates/sim/tests/event_core_equivalence.rs` pins this for all schemes.
//!
//! # Adding a new event
//!
//! 1. Add a variant to the private `EventKind` and give it a class constant
//!    (insert it into the same-instant order deliberately — anything that
//!    *consumes* device time should sort after op-issue so host work keeps
//!    winning ties).
//! 2. Push it with [`EventCore::push_event`]'s pattern (time, class, payload);
//!    `seq` is assigned automatically.
//! 3. Handle it in `handle()`. Handlers may push follow-up events; they must
//!    never push an event strictly in the past.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use ipu_flash::Nanos;
use ipu_ftl::{FlashOpKind, OpBatch, RoundOrigin};
use ipu_host::metrics::LatencyStats;
use ipu_trace::OpKind;
use serde::{Deserialize, Serialize};

/// How the write channel shares time between host operations and an
/// in-progress background (GC / scrub / wear-leveling) round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum GcMode {
    /// Background rounds yield to host work at every NAND pulse boundary: a
    /// host write arriving mid-round waits at most for the pulse in flight.
    /// This matches the inline oracle engine and is the default.
    #[default]
    Preemptible,
    /// Once a round's first pulse starts on a chip, every remaining pulse of
    /// that round on the chip runs back-to-back: a host write arriving
    /// mid-round waits for the whole remainder. The tail-latency cliff this
    /// produces is what preemptible GC exists to avoid.
    RunToCompletion,
}

/// Timing-model knobs of the event core. The defaults reproduce the inline
/// oracle engine bit-for-bit, so adding this struct to a config is inert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Background-round preemption policy.
    #[serde(default)]
    pub gc_mode: GcMode,
    /// Program/erase suspension boundary granularity for host reads, in
    /// nanoseconds. `0` (default) keeps the legacy model: reads never wait
    /// for the write channel. When positive, a read arriving while a
    /// background pulse is in flight on its chip waits until the pulse
    /// reaches its next suspension boundary (`start + k·granularity`, capped
    /// at the pulse end) before its read-channel service begins.
    #[serde(default)]
    pub suspend_granularity_ns: Nanos,
}

/// Same-instant event order: completions settle first.
const CLASS_COMPLETE: u8 = 0;
/// Op-issue slot. Issue events come from the driver's merged request stream,
/// not the heap; the class reserves their place in the same-instant order.
const CLASS_ISSUE: u8 = 1;
/// Background GC (and wear-leveling) pulse wakeups.
const CLASS_GC_STEP: u8 = 2;
/// Background scrub pulse wakeups.
const CLASS_SCRUB_STEP: u8 = 3;

/// Stray background ops (emitted outside any tagged round) get unique
/// synthetic round ids in a disjoint id space so they never fuse.
const STRAY_ROUND_BIT: u64 = 1 << 63;

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    /// A host request's last host-visible operation finished.
    Complete { latency: Nanos, op: OpKind },
    /// A chip may have background steps whose start time has arrived.
    BgWake { chip: u32 },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: Nanos,
    class: u8,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.class, self.seq).cmp(&(other.time, other.class, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One NAND pulse of a background round.
#[derive(Debug, Clone)]
struct BgStep {
    /// Earliest start (the dispatch time of the request that emitted it).
    enq: Nanos,
    /// Pulse duration.
    dur: Nanos,
    /// Globally unique round id (steps of one round share it).
    round: u64,
    /// Whether the round is a scrub pass (scrub-step event class).
    scrub: bool,
}

#[derive(Debug, Clone, Default)]
struct ChipState {
    /// Time the write/erase channel becomes free.
    busy_until: Nanos,
    /// Time the read channel becomes free.
    read_until: Nanos,
    /// Pending background pulses, FIFO.
    bg: VecDeque<BgStep>,
    /// Time of the single outstanding `BgWake` event, if any.
    wake_at: Option<Nanos>,
    /// Most recently executed background span on the write channel
    /// `(start, end)` — one pulse, or a whole fused round under
    /// [`GcMode::RunToCompletion`]. Drives read suspension charging.
    last_bg_pulse: Option<(Nanos, Nanos)>,
}

/// The discrete-event engine state: per-chip channel horizons, resumable
/// background rounds, the event heap and the latency aggregates recorded by
/// op-complete events.
#[derive(Debug, Clone)]
pub struct EventCore {
    cfg: TimingConfig,
    chips: Vec<ChipState>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Global round-id base; each dispatched batch maps its local round ids
    /// (1..) into `round_base + id`.
    round_base: u64,
    /// Unique ids for stray (untagged) background ops.
    stray_rounds: u64,
    host_busy: Nanos,
    read_busy: Nanos,
    background_done: Nanos,
    /// Total ns reads spent waiting for suspension boundaries.
    suspension_wait: Nanos,
    read_latency: LatencyStats,
    write_latency: LatencyStats,
    overall_latency: LatencyStats,
}

impl EventCore {
    /// A core for `chips` chips, all idle at time zero.
    pub fn new(chips: u32, cfg: TimingConfig) -> Self {
        assert!(chips > 0, "a device needs at least one chip");
        EventCore {
            cfg,
            chips: vec![ChipState::default(); chips as usize],
            heap: BinaryHeap::new(),
            seq: 0,
            round_base: 0,
            stray_rounds: 0,
            host_busy: 0,
            read_busy: 0,
            background_done: 0,
            suspension_wait: 0,
            read_latency: LatencyStats::new(),
            write_latency: LatencyStats::new(),
            overall_latency: LatencyStats::new(),
        }
    }

    fn push_event(&mut self, time: Nanos, class: u8, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            class,
            seq,
            kind,
        }));
    }

    /// Processes every event that precedes an op-issue at time `t` in the
    /// `(time, class)` order. Drivers call this immediately before
    /// dispatching a request issued at `t`; a non-monotone `t` is a no-op.
    pub fn advance_to(&mut self, t: Nanos) {
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.time > t || (ev.time == t && ev.class >= CLASS_ISSUE) {
                break;
            }
            let Some(Reverse(ev)) = self.heap.pop() else {
                break;
            };
            self.handle(ev);
        }
    }

    /// Drains the heap completely: all pending completions are recorded and
    /// every queued background step runs, as an idle drive would. Call once
    /// before building a report.
    pub fn finish(&mut self) {
        while let Some(Reverse(ev)) = self.heap.pop() {
            self.handle(ev);
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Complete { latency, op } => {
                self.overall_latency.record(latency);
                match op {
                    OpKind::Read => self.read_latency.record(latency),
                    OpKind::Write => self.write_latency.record(latency),
                }
            }
            EventKind::BgWake { chip } => self.bg_wake(chip, ev.time),
        }
    }

    /// Runs background steps on `chip` whose start time has arrived (`now`),
    /// then re-arms the wakeup for the next pending step, if any.
    fn bg_wake(&mut self, chip: u32, now: Nanos) {
        let c = chip as usize;
        self.chips[c].wake_at = None;
        loop {
            let Some(front) = self.chips[c].bg.front() else {
                return;
            };
            let start = self.chips[c].busy_until.max(front.enq);
            let scrub = front.scrub;
            if start > now {
                // Stale wakeup: host work pushed the start out. Re-arm.
                self.schedule_wake(chip, start, scrub);
                return;
            }
            let round = front.round;
            let first = self.exec_bg_step(c, start);
            let mut span = (first, self.chips[c].busy_until);
            if self.cfg.gc_mode == GcMode::RunToCompletion {
                // The rest of this round runs back-to-back, uninterruptible.
                while self.chips[c].bg.front().is_some_and(|s| s.round == round) {
                    let at = self.chips[c].busy_until;
                    self.exec_bg_step(c, at);
                    span.1 = self.chips[c].busy_until;
                }
                self.chips[c].last_bg_pulse = Some(span);
            }
        }
    }

    /// Executes the front background step of chip `c` at `start`; returns
    /// the pulse start.
    fn exec_bg_step(&mut self, c: usize, start: Nanos) -> Nanos {
        // bg_wake only calls this with a non-empty queue.
        let Some(step) = self.chips[c].bg.pop_front() else {
            return start;
        };
        let end = start + step.dur;
        self.chips[c].busy_until = end;
        self.chips[c].last_bg_pulse = Some((start, end));
        self.background_done += step.dur;
        start
    }

    /// Arms (or keeps) the single outstanding wakeup for `chip` at `at`.
    fn schedule_wake(&mut self, chip: u32, at: Nanos, scrub: bool) {
        if self.chips[chip as usize].wake_at.is_some() {
            return;
        }
        self.chips[chip as usize].wake_at = Some(at);
        let class = if scrub {
            CLASS_SCRUB_STEP
        } else {
            CLASS_GC_STEP
        };
        self.push_event(at, class, EventKind::BgWake { chip });
    }

    /// Schedules a host write/erase pulse; returns its end time.
    fn exec_host(&mut self, chip: u32, t: Nanos, dur: Nanos) -> Nanos {
        let c = &mut self.chips[chip as usize];
        let start = c.busy_until.max(t);
        c.busy_until = start + dur;
        self.host_busy += dur;
        start + dur
    }

    /// Schedules a host read with read priority; returns its end time. With a
    /// positive suspension granularity the read is charged the residual time
    /// to the in-flight background pulse's next suspension boundary.
    fn exec_read(&mut self, chip: u32, t: Nanos, dur: Nanos) -> Nanos {
        let c = &mut self.chips[chip as usize];
        let mut earliest = t;
        let g = self.cfg.suspend_granularity_ns;
        if g > 0 {
            if let Some((s, e)) = c.last_bg_pulse {
                if s <= t && t < e {
                    let rem = (t - s) % g;
                    if rem != 0 {
                        let boundary = (t + (g - rem)).min(e);
                        self.suspension_wait += boundary - t;
                        earliest = boundary;
                    }
                }
            }
        }
        let start = c.read_until.max(earliest);
        c.read_until = start + dur;
        self.read_busy += dur;
        start + dur
    }

    /// Enqueues one background pulse and arms the chip's wakeup.
    fn enqueue_bg(&mut self, chip: u32, enq: Nanos, dur: Nanos, round: u64, scrub: bool) {
        let c = chip as usize;
        self.chips[c].bg.push_back(BgStep {
            enq,
            dur,
            round,
            scrub,
        });
        let start = self.chips[c].busy_until.max(enq);
        self.schedule_wake(chip, start, scrub);
    }

    /// Dispatches one host request issued at `now`: executes its host
    /// operations (reads with read priority, writes/erases FIFO behind the
    /// write channel), enqueues its background rounds as resumable step
    /// sequences, and pushes the request's op-complete event. Returns the
    /// completion time. Callers must `advance_to(now)` first.
    pub fn dispatch(&mut self, now: Nanos, batch: &OpBatch, op: OpKind) -> Nanos {
        let mut completion = now;
        for rec in &batch.ops {
            match rec.kind {
                FlashOpKind::HostRead | FlashOpKind::UnmappedRead => {
                    completion = completion.max(self.exec_read(rec.chip, now, rec.latency_ns));
                }
                FlashOpKind::HostProgram => {
                    completion = completion.max(self.exec_host(rec.chip, now, rec.latency_ns));
                }
                FlashOpKind::GcRead | FlashOpKind::GcProgram | FlashOpKind::Erase => {
                    let (round, scrub) = if rec.round == 0 {
                        self.stray_rounds += 1;
                        (STRAY_ROUND_BIT | self.stray_rounds, false)
                    } else {
                        let scrub = batch.round_origin(rec.round) == Some(RoundOrigin::Scrub);
                        (self.round_base + rec.round as u64, scrub)
                    };
                    self.enqueue_bg(rec.chip, now, rec.latency_ns, round, scrub);
                }
            }
        }
        self.round_base += batch.rounds_used() as u64;
        self.push_event(
            completion,
            CLASS_COMPLETE,
            EventKind::Complete {
                latency: completion - now,
                op,
            },
        );
        completion
    }

    /// Latest horizon across all chips and both channels, enqueue-aware for
    /// still-queued background work (see `ChipSchedule::horizon`).
    pub fn horizon(&self) -> Nanos {
        self.chips
            .iter()
            .map(|c| {
                let mut h = c.busy_until;
                for s in &c.bg {
                    h = h.max(s.enq) + s.dur;
                }
                h.max(c.read_until)
            })
            .max()
            .unwrap_or(0)
    }

    /// Time `chip`'s write/erase channel becomes free.
    pub fn busy_until(&self, chip: u32) -> Nanos {
        self.chips[chip as usize].busy_until
    }

    /// Time `chip`'s read channel becomes free.
    pub fn read_until(&self, chip: u32) -> Nanos {
        self.chips[chip as usize].read_until
    }

    /// Total host write/erase nanoseconds executed.
    pub fn host_busy(&self) -> Nanos {
        self.host_busy
    }

    /// Total host read nanoseconds executed.
    pub fn read_busy(&self) -> Nanos {
        self.read_busy
    }

    /// Total background nanoseconds already executed.
    pub fn background_done(&self) -> Nanos {
        self.background_done
    }

    /// Background nanoseconds still queued across all chips — at a power-loss
    /// cut this is the in-flight GC work the loss interrupts.
    pub fn background_backlog(&self) -> Nanos {
        self.chips
            .iter()
            .map(|c| c.bg.iter().map(|s| s.dur).sum::<Nanos>())
            .sum()
    }

    /// Total nanoseconds reads spent waiting for suspension boundaries.
    pub fn read_suspension_wait_ns(&self) -> Nanos {
        self.suspension_wait
    }

    /// Host-visible read-request latencies recorded by op-complete events.
    pub fn read_latency(&self) -> &LatencyStats {
        &self.read_latency
    }

    /// Host-visible write-request latencies recorded by op-complete events.
    pub fn write_latency(&self) -> &LatencyStats {
        &self.write_latency
    }

    /// All recorded request latencies.
    pub fn overall_latency(&self) -> &LatencyStats {
        &self.overall_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc_round(chip: u32, pulses: &[Nanos]) -> OpBatch {
        let mut b = OpBatch::new();
        b.begin_background_round(RoundOrigin::Gc);
        for &d in pulses {
            b.push(chip, FlashOpKind::GcRead, d);
        }
        b
    }

    fn host_write(chip: u32, dur: Nanos) -> OpBatch {
        let mut b = OpBatch::new();
        b.push(chip, FlashOpKind::HostProgram, dur);
        b
    }

    fn cfg(mode: GcMode) -> TimingConfig {
        TimingConfig {
            gc_mode: mode,
            suspend_granularity_ns: 0,
        }
    }

    /// Resumability: interrupt a 5-pulse round after every step index. Under
    /// preemptible GC the host op waits at most the pulse in flight, and the
    /// final core state (total background executed, write-channel horizon) is
    /// identical no matter where the interrupt landed.
    #[test]
    fn gc_round_resumes_identically_after_every_step() {
        let pulses = [100u64, 200, 300, 400, 500];
        let total: Nanos = pulses.iter().sum();
        for k in 0..pulses.len() {
            let mut core = EventCore::new(1, cfg(GcMode::Preemptible));
            core.advance_to(0);
            core.dispatch(0, &gc_round(0, &pulses), OpKind::Write);
            // Arrive one ns into pulse k: pulses 0..k done, pulse k in flight.
            let before_k: Nanos = pulses[..k].iter().sum();
            let arrive = before_k + 1;
            core.advance_to(arrive);
            assert_eq!(core.background_done(), before_k + pulses[k]);
            let completion = core.dispatch(arrive, &host_write(0, 10), OpKind::Write);
            // The host op started right at the end of the in-flight pulse.
            assert_eq!(
                completion,
                before_k + pulses[k] + 10,
                "interrupt after step {k}: host must wait exactly one pulse"
            );
            core.finish();
            // The remaining steps resumed after the host op; nothing lost.
            assert_eq!(core.background_done(), total);
            assert_eq!(core.busy_until(0), total + 10);
            assert_eq!(core.horizon(), total + 10);
        }
    }

    /// Run-to-completion: the same interrupt waits for the whole remainder of
    /// the round, not one pulse.
    #[test]
    fn run_to_completion_blocks_host_for_round_remainder() {
        let pulses = [100u64, 200, 300, 400, 500];
        let total: Nanos = pulses.iter().sum();
        let mut core = EventCore::new(1, cfg(GcMode::RunToCompletion));
        core.advance_to(0);
        core.dispatch(0, &gc_round(0, &pulses), OpKind::Write);
        core.advance_to(1); // the round started at t=0 and fused
        assert_eq!(core.background_done(), total);
        let completion = core.dispatch(1, &host_write(0, 10), OpKind::Write);
        assert_eq!(completion, total + 10);
        core.finish();
        assert_eq!(core.busy_until(0), total + 10);
    }

    /// Host work that arrives before a round's first pulse starts still wins
    /// in both modes: run-to-completion only bites once a round has started.
    #[test]
    fn unstarted_round_yields_to_host_in_both_modes() {
        for mode in [GcMode::Preemptible, GcMode::RunToCompletion] {
            let mut core = EventCore::new(1, cfg(mode));
            core.advance_to(0);
            core.dispatch(0, &host_write(0, 1_000), OpKind::Write);
            core.dispatch(0, &gc_round(0, &[10_000]), OpKind::Write);
            // t=500: the round could not have started (chip busy to 1000).
            core.advance_to(500);
            let completion = core.dispatch(500, &host_write(0, 10), OpKind::Write);
            assert_eq!(completion, 1_010, "{mode:?}: host queued behind GC");
            core.finish();
            assert_eq!(core.background_done(), 10_000);
        }
    }

    /// Same-instant tie: a host op issued at exactly the time a background
    /// pulse could start wins the write channel (class order puts op-issue
    /// before GC-step).
    #[test]
    fn host_wins_same_instant_tie_against_background() {
        let mut core = EventCore::new(1, cfg(GcMode::Preemptible));
        core.advance_to(0);
        core.dispatch(0, &gc_round(0, &[5_000]), OpKind::Write);
        // The pulse's wakeup is armed for t=0, but the next issue is also
        // at t=0: advance_to(0) must not run the pulse first.
        core.advance_to(0);
        assert_eq!(core.background_done(), 0);
        let completion = core.dispatch(0, &host_write(0, 10), OpKind::Write);
        assert_eq!(completion, 10);
        core.finish();
        assert_eq!(core.busy_until(0), 5_010);
    }

    /// Reads are charged the residual to the next suspension boundary of an
    /// in-flight background pulse; granularity 0 keeps the legacy model.
    #[test]
    fn reads_wait_for_suspension_boundaries() {
        let run = |g: Nanos, read_at: Nanos| {
            let mut core = EventCore::new(
                1,
                TimingConfig {
                    gc_mode: GcMode::Preemptible,
                    suspend_granularity_ns: g,
                },
            );
            core.advance_to(0);
            core.dispatch(0, &gc_round(0, &[1_000_000]), OpKind::Write);
            core.advance_to(read_at);
            let mut b = OpBatch::new();
            b.push(0, FlashOpKind::HostRead, 40_000);
            let done = core.dispatch(read_at, &b, OpKind::Read);
            (done - read_at, core.read_suspension_wait_ns())
        };
        // Legacy: no wait at all.
        assert_eq!(run(0, 130_000), (40_000, 0));
        // g=50µs, read 130µs into the pulse: boundary at 150µs → 20µs wait.
        assert_eq!(run(50_000, 130_000), (60_000, 20_000));
        // Exactly on a boundary: no wait.
        assert_eq!(run(50_000, 150_000), (40_000, 0));
        // Near the pulse end the wait is capped at the pulse end.
        assert_eq!(run(50_000, 990_000), (50_000, 10_000));
        // After the pulse finished: no wait.
        assert_eq!(run(50_000, 1_200_000), (40_000, 0));
    }

    /// Background work is conserved across interleavings, and the horizon is
    /// enqueue-aware before `finish()`.
    #[test]
    fn backlog_and_horizon_account_pending_steps() {
        let mut core = EventCore::new(2, cfg(GcMode::Preemptible));
        core.advance_to(0);
        core.dispatch(0, &host_write(0, 1_000), OpKind::Write);
        let mut b = gc_round(0, &[10_000]);
        b.begin_background_round(RoundOrigin::Gc);
        b.push(1, FlashOpKind::GcRead, 30);
        core.dispatch(0, &b, OpKind::Write);
        assert_eq!(core.background_backlog(), 10_030);
        assert_eq!(core.horizon(), 11_000);
        core.finish();
        assert_eq!(core.background_backlog(), 0);
        assert_eq!(core.background_done(), 10_030);
        assert_eq!(core.busy_until(0), 11_000);
        assert_eq!(core.busy_until(1), 30);
    }

    /// Op-complete events record latencies identically regardless of when
    /// the heap drains them.
    #[test]
    fn completions_record_request_latencies() {
        let mut core = EventCore::new(1, cfg(GcMode::Preemptible));
        core.advance_to(0);
        core.dispatch(0, &host_write(0, 100), OpKind::Write);
        let mut b = OpBatch::new();
        b.push(0, FlashOpKind::HostRead, 40);
        core.advance_to(10);
        core.dispatch(10, &b, OpKind::Read);
        core.finish();
        assert_eq!(core.overall_latency().count(), 2);
        assert_eq!(core.write_latency().max_ns(), 100);
        assert_eq!(core.read_latency().max_ns(), 40);
        assert_eq!(core.host_busy(), 100);
        assert_eq!(core.read_busy(), 40);
    }
}

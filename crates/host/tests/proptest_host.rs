//! Property-based tests of the arbitration QoS guarantees.
//!
//! Whatever the queue depth, workload size or dispatch overhead, two
//! properties must hold under saturation (every tenant has work at t=0 and
//! the serial dispatcher is the bottleneck):
//!
//! * round-robin over equal-weight tenants is fair — per-tenant throughputs
//!   stay within a small ratio bound of each other, and
//! * strict priority starves the low class — no bulk request dispatches
//!   before the urgent class has drained, so fairness collapses (while every
//!   request still completes: starvation delays, it never drops).

use ipu_host::{run_closed_loop, ArbitrationPolicy, HostConfig, TenantSpec};
use proptest::prelude::*;

/// Saturated arrivals: `m` requests per tenant, all wanting service at t=0.
fn saturated(tenants: usize, m: usize) -> Vec<Vec<u64>> {
    vec![vec![0; m]; tenants]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rr_equal_tenants_get_equal_throughput(
        n in 2usize..=4,
        m in 20usize..=60,
        qd in 1usize..=8,
        overhead in 50u64..=200,
        service in 1u64..=100,
    ) {
        let tenants = (0..n).map(|i| TenantSpec::new(format!("t{i}"))).collect();
        let cfg = HostConfig::new(qd, ArbitrationPolicy::RoundRobin, tenants)
            .with_dispatch_overhead(overhead);
        let (report, _) = run_closed_loop(&cfg, &saturated(n, m), |_, _, d| d + service);

        for t in &report.tenants {
            prop_assert_eq!(t.completed, m as u64, "tenant {} dropped requests", t.name);
        }
        // Equal weights + identical workloads: the only spread left is the
        // final partial round of the interleave, which vanishes as m grows.
        prop_assert!(
            report.fairness >= 0.85,
            "round-robin fairness {} below bound (n={n}, m={m}, qd={qd})",
            report.fairness
        );
    }

    #[test]
    fn strict_priority_starves_low_class_under_saturation(
        m in 20usize..=60,
        qd in 1usize..=4,
        overhead in 50u64..=200,
    ) {
        let tenants = vec![
            TenantSpec::new("urgent").with_priority(0),
            TenantSpec::new("bulk").with_priority(1),
        ];
        let cfg = HostConfig::new(qd, ArbitrationPolicy::StrictPriority, tenants)
            .with_dispatch_overhead(overhead);
        // Device service below the dispatch overhead: the urgent queue is
        // always refilled by the time the dispatcher frees, so it never
        // yields a turn to the bulk class.
        let (report, outcomes) =
            run_closed_loop(&cfg, &saturated(2, m), |_, _, d| d + overhead / 2);

        let urgent_last = outcomes.iter().filter(|o| o.tenant == 0).map(|o| o.dispatch_ns).max();
        let bulk_first = outcomes.iter().filter(|o| o.tenant == 1).map(|o| o.dispatch_ns).min();
        prop_assert!(
            bulk_first >= urgent_last,
            "bulk dispatched at {bulk_first:?} before urgent drained at {urgent_last:?}"
        );
        prop_assert!(
            report.fairness < 0.75,
            "fairness {} does not reflect starvation", report.fairness
        );
        // Starvation delays the low class; it must not drop it.
        prop_assert_eq!(report.total_completed(), 2 * m as u64);
    }
}

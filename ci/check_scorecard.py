#!/usr/bin/env python3
"""Scorecard gate: fail CI when a previously-passing paper claim regresses.

Usage: check_scorecard.py <scorecard.json> <ci/scorecard_baseline.json>

Both files are the ExperimentRecord written by
`ipu-sim scorecard --save ...`. Each claim's outcome ranks
Reproduced > Partial > Deviation; the gate fails if any claim's rank drops
below the committed baseline (improvements are fine and are reported so the
baseline can be ratcheted), or if a baseline claim disappears entirely.

Refreshing the baseline
-----------------------
After claims legitimately change (new claims, or an accepted accuracy
trade-off discussed in EXPERIMENTS.md), regenerate with the gate's fixed
workload and commit the result:

    cargo run --release -p ipu-cli -- scorecard \
        --traces ts0 --scale 0.02 --threads 1 --save ci/scorecard_baseline.json
"""

import json
import sys

RANK = {"Deviation": 0, "Partial": 1, "Reproduced": 2}


def load_claims(path):
    with open(path) as f:
        record = json.load(f)
    return {c["claim"]: c["outcome"] for c in record["result"]}


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = load_claims(sys.argv[1])
    baseline = load_claims(sys.argv[2])

    failures = []
    improvements = []
    for claim, base_outcome in sorted(baseline.items()):
        cand_outcome = candidate.get(claim)
        if cand_outcome is None:
            failures.append(f"claim dropped from scorecard: {claim!r}")
            continue
        base_rank, cand_rank = RANK[base_outcome], RANK[cand_outcome]
        if cand_rank < base_rank:
            failures.append(
                f"{claim!r}: {base_outcome} -> {cand_outcome}"
            )
        elif cand_rank > base_rank:
            improvements.append(
                f"{claim!r}: {base_outcome} -> {cand_outcome}"
            )

    new_claims = sorted(set(candidate) - set(baseline))
    for claim in new_claims:
        print(f"new claim (not gated): {claim!r} = {candidate[claim]}")
    for line in improvements:
        print(f"improved (consider ratcheting the baseline): {line}")

    if failures:
        print(f"FAIL: {len(failures)} claim(s) regressed vs baseline:",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print(
            "If this trade-off is intentional, document it in EXPERIMENTS.md "
            "and refresh ci/scorecard_baseline.json (see this script's "
            "docstring).",
            file=sys.stderr,
        )
        return 1

    counts = {o: sum(1 for v in candidate.values() if v == o) for o in RANK}
    print(
        f"scorecard gate OK: {len(baseline)} gated claims held "
        f"(candidate: {counts['Reproduced']} reproduced, "
        f"{counts['Partial']} partial, {counts['Deviation']} deviations)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

//! Per-block cache metadata: level labels, write timestamps and update flags.
//!
//! This is the logical bookkeeping the SLC-mode cache needs on top of the
//! physical state in `ipu-flash`: which level a block belongs to (IPU's
//! Work/Monitor/Hot labels), when each subpage was written (the `t_ij` of the
//! ISR GC policy's Equation 2), and whether a page has received an intra-page
//! update (which drives the paper's degraded data movement in GC).

use std::collections::BTreeMap;

use ipu_flash::{BlockAddr, Nanos};

use crate::types::BlockLevel;

/// Metadata for one in-use (allocated, non-free) block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    pub addr: BlockAddr,
    /// Cache level; `HighDensity` for MLC-region blocks.
    pub level: BlockLevel,
    /// Monotonic open order; GC victim selection breaks score ties toward
    /// the oldest block (FIFO) so eviction pressure rotates over the region
    /// instead of hammering one plane.
    opened_seq: u64,
    /// Write timestamp per subpage slot (page-major). 0 = never written.
    sub_written_ns: Vec<Nanos>,
    /// Whether each page received an intra-page update while in this block.
    page_updated: Vec<bool>,
    subpages_per_page: u32,
    /// Bit per subpage slot (page-major): set while the subpage holds valid
    /// data. Maintained by `note_program` / `note_invalidate` so ISR scoring
    /// never has to consult physical page state.
    valid_mask: Vec<u64>,
    /// Cached number of set bits in `valid_mask`.
    valid_count: u32,
    /// Sum of `sub_written_ns` over valid subpages (feeds the O(1) mean-age
    /// term of the ISR score).
    sum_written_valid: u128,
    /// Valid subpages sitting in never-updated pages (the ISR J-term's
    /// population, and the numerator of its upper bound).
    j_count: u32,
    /// Bit per subpage slot (page-major): set iff the subpage is valid AND
    /// its page was never updated — exactly the J-term population, so the ISR
    /// scorer walks set bits instead of scanning every slot. `j_count` is its
    /// popcount.
    cold_mask: Vec<u64>,
}

impl BlockMeta {
    fn new(
        addr: BlockAddr,
        level: BlockLevel,
        opened_seq: u64,
        pages: u32,
        subpages_per_page: u32,
    ) -> Self {
        let slots = (pages * subpages_per_page) as usize;
        BlockMeta {
            addr,
            level,
            opened_seq,
            sub_written_ns: vec![0; slots],
            page_updated: vec![false; pages as usize],
            subpages_per_page,
            valid_mask: vec![0; slots.div_ceil(64)],
            valid_count: 0,
            sum_written_valid: 0,
            j_count: 0,
            cold_mask: vec![0; slots.div_ceil(64)],
        }
    }

    #[inline]
    fn slot(&self, page: u32, subpage: u8) -> usize {
        (page * self.subpages_per_page + subpage as u32) as usize
    }

    #[inline]
    fn mask_bit(&self, slot: usize) -> bool {
        self.valid_mask[slot / 64] & (1u64 << (slot % 64)) != 0
    }

    /// Marks `page` updated, migrating its valid subpages out of the J-term
    /// population. No-op if already updated.
    fn mark_page_updated(&mut self, page: u32) {
        if !self.page_updated[page as usize] {
            self.page_updated[page as usize] = true;
            self.j_count -= self.page_valid_count(page);
            // A page's slots never straddle a mask word (64 is a multiple of
            // every supported subpages-per-page), so one word edit suffices.
            let start = (page * self.subpages_per_page) as usize;
            let span = (1u64 << self.subpages_per_page) - 1;
            self.cold_mask[start / 64] &= !(span << (start % 64));
        }
    }

    /// Monotonic open order of this block (smaller = opened earlier).
    pub fn opened_seq(&self) -> u64 {
        self.opened_seq
    }

    /// Records a program covering `[start, start+count)` of `page` at `now`.
    ///
    /// A second or later program op on a page is by definition an intra-page
    /// update under IPU (the page holds versions of one chunk's data), so the
    /// caller tells us whether this program was a follow-up.
    pub fn note_program(&mut self, page: u32, start: u8, count: u8, now: Nanos, follow_up: bool) {
        if follow_up {
            self.mark_page_updated(page);
        }
        let t = now.max(1);
        let in_j = !self.page_updated[page as usize];
        for s in start..start + count {
            let slot = self.slot(page, s);
            self.sub_written_ns[slot] = t;
            debug_assert!(!self.mask_bit(slot), "subpage programmed while valid");
            self.valid_mask[slot / 64] |= 1u64 << (slot % 64);
            self.valid_count += 1;
            self.sum_written_valid += t as u128;
            if in_j {
                self.j_count += 1;
                self.cold_mask[slot / 64] |= 1u64 << (slot % 64);
            }
        }
    }

    /// Records that the subpage's data was superseded (invalidated on the
    /// device). Keeps the cached validity aggregates exact; a no-op for
    /// subpages not currently marked valid.
    pub fn note_invalidate(&mut self, page: u32, subpage: u8) {
        let slot = self.slot(page, subpage);
        if self.mask_bit(slot) {
            self.valid_mask[slot / 64] &= !(1u64 << (slot % 64));
            self.valid_count -= 1;
            self.sum_written_valid -= self.sub_written_ns[slot] as u128;
            if !self.page_updated[page as usize] {
                self.j_count -= 1;
                self.cold_mask[slot / 64] &= !(1u64 << (slot % 64));
            }
        }
    }

    /// Timestamp the subpage was written (0 = never).
    pub fn written_at(&self, page: u32, subpage: u8) -> Nanos {
        self.sub_written_ns[(page * self.subpages_per_page + subpage as u32) as usize]
    }

    /// Whether `page` received an intra-page update while resident here.
    pub fn page_updated(&self, page: u32) -> bool {
        self.page_updated[page as usize]
    }

    /// Restores one subpage's bookkeeping from a durable (OOB) record during
    /// power-loss reconstruction. `written_ns` is the timestamp as persisted
    /// (already clamped non-zero at program time).
    pub fn restore_program(&mut self, page: u32, subpage: u8, written_ns: Nanos, follow_up: bool) {
        if follow_up {
            self.mark_page_updated(page);
        }
        let slot = self.slot(page, subpage);
        self.sub_written_ns[slot] = written_ns;
        if !self.mask_bit(slot) {
            self.valid_mask[slot / 64] |= 1u64 << (slot % 64);
            self.valid_count += 1;
            self.sum_written_valid += written_ns as u128;
            if !self.page_updated[page as usize] {
                self.j_count += 1;
                self.cold_mask[slot / 64] |= 1u64 << (slot % 64);
            }
        }
    }

    /// Number of pages tracked.
    pub fn page_count(&self) -> u32 {
        self.page_updated.len() as u32
    }

    /// Subpages per page tracked by this block.
    #[inline]
    pub fn subpages_per_page(&self) -> u32 {
        self.subpages_per_page
    }

    /// Whether the subpage is currently marked valid.
    #[inline]
    pub fn valid_at(&self, page: u32, subpage: u8) -> bool {
        self.mask_bit(self.slot(page, subpage))
    }

    /// Number of valid subpages across the block (cached).
    #[inline]
    pub fn valid_count(&self) -> u32 {
        self.valid_count
    }

    /// Sum of write timestamps over the valid subpages (cached).
    #[inline]
    pub fn sum_written_valid(&self) -> u128 {
        self.sum_written_valid
    }

    /// Valid subpages in never-updated pages (cached; bounds the ISR J-term).
    #[inline]
    pub fn j_count(&self) -> u32 {
        self.j_count
    }

    /// The J-term population as a page-major bitset (one bit per subpage
    /// slot); the ISR scorer iterates its set bits in ascending slot order,
    /// which is exactly the oracle's (page, subpage) visit order.
    #[inline]
    pub fn cold_mask_words(&self) -> &[u64] {
        &self.cold_mask
    }

    /// Write timestamps indexed by page-major slot (companion to
    /// [`Self::cold_mask_words`]).
    #[inline]
    pub fn written_slots(&self) -> &[Nanos] {
        &self.sub_written_ns
    }

    /// Valid subpages within one page (popcount over the page's mask bits).
    pub fn page_valid_count(&self, page: u32) -> u32 {
        let mut n = 0;
        for s in 0..self.subpages_per_page {
            if self.mask_bit(self.slot(page, s as u8)) {
                n += 1;
            }
        }
        n
    }

    /// Recomputes the cached aggregates from the mask and flags and compares;
    /// used by the FTL invariant checker (tests / debug sweeps only).
    pub fn aggregates_consistent(&self) -> bool {
        let mut valid = 0u32;
        let mut sum = 0u128;
        let mut j = 0u32;
        for page in 0..self.page_count() {
            for s in 0..self.subpages_per_page {
                let slot = self.slot(page, s as u8);
                let cold_bit = self.cold_mask[slot / 64] & (1u64 << (slot % 64)) != 0;
                if self.mask_bit(slot) {
                    valid += 1;
                    sum += self.sub_written_ns[slot] as u128;
                    if !self.page_updated[page as usize] {
                        j += 1;
                        if !cold_bit {
                            return false;
                        }
                    } else if cold_bit {
                        return false;
                    }
                } else if cold_bit {
                    return false;
                }
            }
        }
        valid == self.valid_count && sum == self.sum_written_valid && j == self.j_count
    }
}

/// Registry of in-use blocks and their metadata, keyed by dense block index.
#[derive(Debug, Clone, Default)]
pub struct CacheMeta {
    blocks: BTreeMap<u64, BlockMeta>,
    next_seq: u64,
}

impl CacheMeta {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a freshly-opened block at `level`.
    pub fn open_block(
        &mut self,
        block_idx: u64,
        addr: BlockAddr,
        level: BlockLevel,
        pages: u32,
        subpages_per_page: u32,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let prev = self.blocks.insert(
            block_idx,
            BlockMeta::new(addr, level, seq, pages, subpages_per_page),
        );
        debug_assert!(prev.is_none(), "block {addr} opened twice");
    }

    /// Removes a block's metadata (called at erase).
    pub fn close_block(&mut self, block_idx: u64) -> Option<BlockMeta> {
        self.blocks.remove(&block_idx)
    }

    /// Re-registers a block with its *original* open sequence number during
    /// power-loss reconstruction (ISR GC tie-breaking depends on open order,
    /// so rebuilt metadata must preserve it). Does not advance `next_seq`;
    /// callers finish with [`CacheMeta::set_next_seq`]. Returns the freshly
    /// inserted metadata so callers can replay per-subpage records without a
    /// second (fallible) lookup.
    pub fn restore_block(
        &mut self,
        block_idx: u64,
        addr: BlockAddr,
        level: BlockLevel,
        opened_seq: u64,
        pages: u32,
        subpages_per_page: u32,
    ) -> &mut BlockMeta {
        let meta = BlockMeta::new(addr, level, opened_seq, pages, subpages_per_page);
        match self.blocks.entry(block_idx) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                debug_assert!(false, "block {addr} restored twice");
                e.insert(meta);
                e.into_mut()
            }
            std::collections::btree_map::Entry::Vacant(v) => v.insert(meta),
        }
    }

    /// Sets the next open sequence number (power-loss reconstruction: one
    /// past the largest restored `opened_seq`).
    pub fn set_next_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    pub fn get(&self, block_idx: u64) -> Option<&BlockMeta> {
        self.blocks.get(&block_idx)
    }

    pub fn get_mut(&mut self, block_idx: u64) -> Option<&mut BlockMeta> {
        self.blocks.get_mut(&block_idx)
    }

    /// Level of a block, if tracked.
    pub fn level(&self, block_idx: u64) -> Option<BlockLevel> {
        self.blocks.get(&block_idx).map(|m| m.level)
    }

    /// Iterates `(block_idx, meta)` over all in-use blocks.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &BlockMeta)> {
        self.blocks.iter().map(|(&i, m)| (i, m))
    }

    /// Number of in-use blocks tracked.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// In-use blocks in the SLC cache (level above `HighDensity`).
    pub fn slc_blocks(&self) -> impl Iterator<Item = (u64, &BlockMeta)> {
        self.iter().filter(|(_, m)| m.level.is_slc())
    }

    /// In-use blocks in the MLC region.
    pub fn mlc_blocks(&self) -> impl Iterator<Item = (u64, &BlockMeta)> {
        self.iter().filter(|(_, m)| !m.level.is_slc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> BlockAddr {
        BlockAddr::new(0, 0, 0, 0, 7)
    }

    #[test]
    fn open_close_round_trip() {
        let mut c = CacheMeta::new();
        c.open_block(7, addr(), BlockLevel::Work, 4, 4);
        assert_eq!(c.level(7), Some(BlockLevel::Work));
        assert_eq!(c.len(), 1);
        let meta = c.close_block(7).unwrap();
        assert_eq!(meta.addr, addr());
        assert!(c.is_empty());
        assert!(c.close_block(7).is_none());
    }

    #[test]
    fn program_records_time_and_update_flag() {
        let mut c = CacheMeta::new();
        c.open_block(7, addr(), BlockLevel::Monitor, 4, 4);
        let m = c.get_mut(7).unwrap();
        m.note_program(2, 0, 2, 1000, false);
        assert_eq!(m.written_at(2, 0), 1000);
        assert_eq!(m.written_at(2, 1), 1000);
        assert_eq!(m.written_at(2, 2), 0);
        assert!(!m.page_updated(2));

        m.note_program(2, 2, 1, 2000, true);
        assert!(m.page_updated(2));
        assert_eq!(m.written_at(2, 2), 2000);
        // Earlier subpages keep their original write time.
        assert_eq!(m.written_at(2, 0), 1000);
    }

    #[test]
    fn time_zero_writes_are_still_marked_written() {
        let mut c = CacheMeta::new();
        c.open_block(7, addr(), BlockLevel::Work, 2, 4);
        let m = c.get_mut(7).unwrap();
        m.note_program(0, 0, 1, 0, false);
        assert!(
            m.written_at(0, 0) > 0,
            "written_at must distinguish written from never"
        );
    }

    #[test]
    fn restore_preserves_open_order_and_flags() {
        let mut c = CacheMeta::new();
        c.restore_block(7, addr(), BlockLevel::Monitor, 41, 4, 4);
        c.set_next_seq(42);
        let m = c.get_mut(7).unwrap();
        m.restore_program(1, 2, 5000, true);
        assert_eq!(m.opened_seq(), 41);
        assert_eq!(m.written_at(1, 2), 5000);
        assert!(m.page_updated(1));
        assert!(!m.page_updated(0));
        // The next freshly-opened block continues the sequence.
        c.open_block(8, BlockAddr::new(0, 0, 0, 0, 8), BlockLevel::Work, 4, 4);
        assert_eq!(c.get(8).unwrap().opened_seq(), 42);
    }

    #[test]
    fn validity_aggregates_track_programs_updates_and_invalidates() {
        let mut c = CacheMeta::new();
        c.open_block(7, addr(), BlockLevel::Work, 4, 4);
        let m = c.get_mut(7).unwrap();
        m.note_program(0, 0, 2, 1000, false);
        m.note_program(1, 0, 1, 3000, false);
        assert_eq!(m.valid_count(), 3);
        assert_eq!(m.sum_written_valid(), 2 * 1000 + 3000);
        assert_eq!(m.j_count(), 3);
        assert!(m.valid_at(0, 0) && m.valid_at(0, 1) && m.valid_at(1, 0));
        assert!(!m.valid_at(0, 2));

        // An intra-page update pulls the whole page out of the J population.
        m.note_invalidate(0, 0);
        m.note_program(0, 2, 1, 5000, true);
        assert_eq!(m.valid_count(), 3); // (0,1), (0,2), (1,0)
        assert_eq!(m.sum_written_valid(), 1000 + 5000 + 3000);
        assert_eq!(m.j_count(), 1); // only (1,0): page 0 is updated
        assert_eq!(m.page_valid_count(0), 2);

        m.note_invalidate(0, 1);
        m.note_invalidate(0, 1); // double-invalidate is a no-op
        assert_eq!(m.valid_count(), 2);
        assert_eq!(m.sum_written_valid(), 5000 + 3000);
        assert!(m.aggregates_consistent());
    }

    #[test]
    fn restore_rebuilds_aggregates_like_live_programs() {
        let mut c = CacheMeta::new();
        c.restore_block(7, addr(), BlockLevel::Monitor, 3, 2, 4);
        let m = c.get_mut(7).unwrap();
        m.restore_program(0, 0, 100, false);
        m.restore_program(0, 1, 900, true); // follow-up → page updated
        m.restore_program(1, 2, 400, false);
        assert_eq!(m.valid_count(), 3);
        assert_eq!(m.sum_written_valid(), 100 + 900 + 400);
        assert_eq!(m.j_count(), 1);
        m.note_invalidate(1, 2);
        assert_eq!(m.j_count(), 0);
        assert!(m.aggregates_consistent());
    }

    #[test]
    fn region_filters_split_by_level() {
        let mut c = CacheMeta::new();
        c.open_block(1, BlockAddr::new(0, 0, 0, 0, 1), BlockLevel::Work, 4, 4);
        c.open_block(
            2,
            BlockAddr::new(0, 0, 0, 0, 2),
            BlockLevel::HighDensity,
            8,
            4,
        );
        c.open_block(3, BlockAddr::new(0, 0, 0, 0, 3), BlockLevel::Hot, 4, 4);
        assert_eq!(c.slc_blocks().count(), 2);
        assert_eq!(c.mlc_blocks().count(), 1);
    }
}

//! Export the six calibrated synthetic traces as MSR-Cambridge-format CSV
//! files — replayable through the original SSDsim (or MQSim, etc.) for
//! cross-validation of this reproduction.
//!
//! ```text
//! cargo run --release --example export_traces -- <out_dir> [scale]
//! ```

use std::fs::File;
use std::io::BufWriter;

use ipu_core::trace::{paper_trace, write_msr, PaperTrace, TraceGenerator};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(out_dir) = args.next() else {
        eprintln!("usage: export_traces <out_dir> [scale]");
        std::process::exit(2);
    };
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.01);
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    for trace in PaperTrace::all() {
        let spec = paper_trace(trace);
        let scaled = spec.with_requests(((spec.requests as f64) * scale) as u64);
        let requests = TraceGenerator::new(scaled).generate();
        let path = format!("{out_dir}/{}.csv", trace.name());
        let file = BufWriter::new(File::create(&path).expect("create trace file"));
        write_msr(file, &requests, trace.name()).expect("write trace");
        eprintln!("wrote {path} ({} requests)", requests.len());
    }
}

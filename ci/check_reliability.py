#!/usr/bin/env python3
"""Fault-smoke gate: assert the reliability matrix shows clean recovery.

Usage: check_reliability.py <reliability.json>

The input is the ExperimentRecord written by
`ipu-sim reliability --save reliability.json`. Under the light fault profile
every scheme must complete every request (no data loss, no failed requests)
while actually exercising the read-retry ladder — a run where no retries
fire means the fault injection silently stopped working and the smoke test
is vacuous.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        record = json.load(f)

    reports = [r for row in record["result"]["reports"] for r in row]
    assert reports, "empty reliability matrix"
    for r in reports:
        ftl = r["ftl"]
        rel = r["reliability"]
        assert ftl["data_loss_events"] == 0, (r["scheme"], ftl)
        assert rel["failed"] == 0, (r["scheme"], rel)
    assert any(r["ftl"]["read_retries"] > 0 for r in reports), (
        "light profile never exercised the retry ladder"
    )

    retries = sum(r["ftl"]["read_retries"] for r in reports)
    print(
        f"reliability OK: {len(reports)} reports, {retries} read retries, "
        f"0 failed requests, 0 data-loss events"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

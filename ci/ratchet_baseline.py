#!/usr/bin/env python3
"""Ratchet the perf-gate baseline: re-measure the gate workload and commit
the result as the new `ci/bench_baseline.json` — refusing to lower any
already-committed floor unless told why.

Usage:
    python3 ci/ratchet_baseline.py [--profile BENCH_profile.json]
                                   [--allow-regression "<reason>"]
                                   [--baseline ci/bench_baseline.json]

Without `--profile`, the script builds and runs the gate workload itself:

    cargo run --release -p ipu-cli -- profile \
        --traces ts0 --scale 0.02 --threads 1 --out <tmp>

The ratchet only ever *raises* committed numbers:

* every per-(trace, scheme) `ops_per_sec` cell of the new baseline must be
  >= its committed value, and so must the aggregate `sim_ops_per_sec`;
* a lower number is refused unless `--allow-regression <reason>` is given —
  the reason is recorded in the baseline under `ratchet_note`, so the commit
  that lowered a floor carries its own justification;
* the counter fingerprint may change freely (that is the point of a
  refresh — the simulated workload itself changed), but when it changes the
  script says so, because a fingerprint change plus a throughput drop is the
  signature of accidentally measuring a different workload.

After each optimization lane lands, run this script and commit the result:
the gate then holds that lane's win for every later change.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

GATE_CMD = [
    "cargo", "run", "--release", "-p", "ipu-cli", "--", "profile",
    "--traces", "ts0", "--scale", "0.02", "--threads", "1",
]


def load(path):
    with open(path) as f:
        return json.load(f)


def cells_map(profile):
    return {(r["trace"], r["scheme"]): r["ops_per_sec"] for r in profile["runs"]}


def counters_map(profile):
    return {name: value for name, value in profile["counters"]["counters"]}


def measure(out_path):
    cmd = GATE_CMD + ["--out", out_path]
    print("running:", " ".join(cmd))
    subprocess.run(cmd, check=True)
    return load(out_path)


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("--profile", help="use this BENCH_profile.json instead of re-running")
    ap.add_argument("--baseline", default="ci/bench_baseline.json")
    ap.add_argument(
        "--allow-regression",
        metavar="REASON",
        help="permit lowering committed floors; REASON is recorded in the baseline",
    )
    args = ap.parse_args()

    if args.profile:
        fresh = load(args.profile)
    else:
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            tmp_path = tmp.name
        try:
            fresh = measure(tmp_path)
        finally:
            os.unlink(tmp_path)

    if not fresh.get("release", False):
        print("FAIL: refusing a debug-build profile as the baseline", file=sys.stderr)
        return 1

    regressions = []
    committed = None
    if os.path.exists(args.baseline):
        committed = load(args.baseline)
        old_cells = cells_map(committed)
        new_cells = cells_map(fresh)
        for cell, floor in sorted(old_cells.items()):
            got = new_cells.get(cell)
            if got is None:
                regressions.append(f"cell {cell} vanished (floor {floor:,.0f})")
            elif got < floor:
                regressions.append(
                    f"cell {cell}: {got:,.0f} < committed floor {floor:,.0f}"
                )
        if fresh["sim_ops_per_sec"] < committed["sim_ops_per_sec"]:
            regressions.append(
                f"aggregate: {fresh['sim_ops_per_sec']:,.0f} < committed "
                f"{committed['sim_ops_per_sec']:,.0f}"
            )
        if counters_map(fresh) != counters_map(committed):
            print(
                "note: counter fingerprint changed — the simulated workload "
                "itself differs from the committed baseline (expected after "
                "behavioural changes; suspicious otherwise)."
            )

    if regressions:
        for r in regressions:
            print(f"regression: {r}", file=sys.stderr)
        if not args.allow_regression:
            print(
                "\nFAIL: refusing to lower committed floors. Re-run with\n"
                "  --allow-regression \"<why this slowdown is acceptable>\"\n"
                "if the regression is intentional.",
                file=sys.stderr,
            )
            return 1
        fresh["ratchet_note"] = args.allow_regression
        print(f"lowering floors, recorded reason: {args.allow_regression}")
    elif committed is not None:
        delta = fresh["sim_ops_per_sec"] - committed["sim_ops_per_sec"]
        print(
            f"ratchet raised: aggregate {committed['sim_ops_per_sec']:,.0f} → "
            f"{fresh['sim_ops_per_sec']:,.0f} ops/s ({delta:+,.0f})"
        )

    with open(args.baseline, "w") as f:
        json.dump(fresh, f, indent=2)
        f.write("\n")
    print(f"wrote {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

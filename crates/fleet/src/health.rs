//! Router health model: per-device EWMA latency and consecutive-failure
//! counters driving a three-state machine, Healthy → Suspect → Dead.
//!
//! The tracker observes every logical request's outcome in dispatch-time
//! order. Failures (device unavailable, timeout) bump a consecutive-failure
//! counter: one failure makes the device *Suspect* (hedging gets more
//! aggressive), [`HealthPolicy::dead_after_failures`] in a row make it
//! *Dead* (requests fail over immediately instead of paying the timeout).
//! A Dead device earns a canary probe after
//! [`HealthPolicy::probe_cooldown_ns`]; a success on the canary revives it
//! through Suspect, and [`HealthPolicy::revive_successes`] consecutive
//! successes restore Healthy — which is how the fleet recovers from a
//! transient brownout without operator action.
//!
//! Every transition is stamped with the dispatch time that caused it, so
//! the report carries a per-device health *timeline* — the forensic record
//! of when the router noticed the fault and when it recovered.

use serde::{Deserialize, Serialize};

/// Tuning knobs of the health machine and the retry/hedge paths. The
/// defaults suit the simulator's ~0.1–1 ms device latencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// EWMA smoothing factor for per-device latency (0 < α ≤ 1).
    pub ewma_alpha: f64,
    /// A success slower than `factor × EWMA` marks the device Suspect.
    pub suspect_latency_factor: f64,
    /// Consecutive failures before Healthy → Suspect.
    pub suspect_after_failures: u32,
    /// Consecutive failures before → Dead (fast-fail from then on).
    pub dead_after_failures: u32,
    /// Consecutive successes to climb Suspect → Healthy.
    pub revive_successes: u32,
    /// How long a Dead device waits before earning a canary probe, ns.
    pub probe_cooldown_ns: u64,
    /// Per-request end-to-end budget; blowing it is a failure, ns.
    pub timeout_ns: u64,
    /// First retry backoff; doubles per attempt, ns.
    pub backoff_base_ns: u64,
    /// Backoff ceiling, ns.
    pub backoff_cap_ns: u64,
    /// Retry attempts before a request is declared lost.
    pub max_retries: u32,
    /// Fixed cost of failing over to a replica (detect + re-route), ns.
    pub failover_penalty_ns: u64,
    /// Reads slower than this percentile of the healthy latency
    /// distribution fire a hedged duplicate (e.g. 99.0).
    pub hedge_percentile: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            ewma_alpha: 0.2,
            suspect_latency_factor: 3.0,
            suspect_after_failures: 1,
            dead_after_failures: 3,
            revive_successes: 4,
            probe_cooldown_ns: 10_000_000, // 10 ms
            timeout_ns: 10_000_000,        // 10 ms
            backoff_base_ns: 50_000,       // 50 µs
            backoff_cap_ns: 1_000_000,     // 1 ms
            max_retries: 3,
            failover_penalty_ns: 20_000, // 20 µs
            hedge_percentile: 99.0,
        }
    }
}

impl HealthPolicy {
    /// Capped exponential backoff before retry `attempt` (0-based).
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let shifted = self
            .backoff_base_ns
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        shifted.min(self.backoff_cap_ns)
    }

    /// Validates factors and counters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(format!("ewma_alpha {} out of (0,1]", self.ewma_alpha));
        }
        if self.suspect_latency_factor < 1.0 {
            return Err("suspect_latency_factor must be ≥ 1".into());
        }
        if self.dead_after_failures < self.suspect_after_failures {
            return Err("dead_after_failures must be ≥ suspect_after_failures".into());
        }
        if self.suspect_after_failures == 0 || self.revive_successes == 0 {
            return Err("failure/revive thresholds must be ≥ 1".into());
        }
        if !(0.0..=100.0).contains(&self.hedge_percentile) {
            return Err(format!(
                "hedge_percentile {} out of [0,100]",
                self.hedge_percentile
            ));
        }
        Ok(())
    }
}

/// The three-state health machine's states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Serving normally.
    Healthy,
    /// Recent failure or latency excursion: hedge earlier, watch closely.
    Suspect,
    /// Consecutive failures exhausted patience: fast-fail to the replica.
    Dead,
}

impl HealthState {
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Dead => "dead",
        }
    }
}

/// One health transition, stamped with the dispatch time that caused it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthTransition {
    /// Dispatch time of the observation that triggered the transition, ns.
    pub at_ns: u64,
    /// State entered.
    pub to: HealthState,
}

/// Per-device health over one run: final state plus the full transition
/// timeline (starts implicitly Healthy at t = 0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceHealthTimeline {
    pub device: usize,
    /// State at end of run.
    pub final_state: HealthState,
    /// EWMA service latency at end of run, ns (0 if no success observed).
    pub ewma_latency_ns: u64,
    /// Successes/failures observed by the tracker.
    pub successes: u64,
    pub failures: u64,
    /// Every state change, time-ascending.
    pub transitions: Vec<HealthTransition>,
}

/// Live tracking state for one device.
#[derive(Debug, Clone)]
struct DeviceHealth {
    state: HealthState,
    ewma_ns: f64,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// When the device entered Dead (for the canary probe cooldown).
    dead_since_ns: u64,
    successes: u64,
    failures: u64,
    transitions: Vec<HealthTransition>,
}

impl DeviceHealth {
    fn new() -> Self {
        DeviceHealth {
            state: HealthState::Healthy,
            ewma_ns: 0.0,
            consecutive_failures: 0,
            consecutive_successes: 0,
            dead_since_ns: 0,
            successes: 0,
            failures: 0,
            transitions: Vec::new(),
        }
    }

    fn transition(&mut self, at_ns: u64, to: HealthState) {
        if self.state != to {
            self.state = to;
            if to == HealthState::Dead {
                self.dead_since_ns = at_ns;
            }
            self.transitions.push(HealthTransition { at_ns, to });
        }
    }
}

/// Tracks every device's health from the stream of request outcomes,
/// processed in dispatch-time order.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    policy: HealthPolicy,
    devices: Vec<DeviceHealth>,
}

impl HealthTracker {
    pub fn new(devices: usize, policy: HealthPolicy) -> Self {
        HealthTracker {
            policy,
            devices: (0..devices).map(|_| DeviceHealth::new()).collect(),
        }
    }

    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    pub fn state(&self, device: usize) -> HealthState {
        self.devices[device].state
    }

    /// EWMA service latency of `device`, ns (`None` before any success).
    pub fn ewma_ns(&self, device: usize) -> Option<u64> {
        let d = &self.devices[device];
        (d.successes > 0).then_some(d.ewma_ns as u64)
    }

    /// Whether the router should even try `device` for a request dispatched
    /// at `now_ns`: Dead devices fast-fail, except a canary probe once
    /// every [`HealthPolicy::probe_cooldown_ns`].
    pub fn should_attempt(&mut self, device: usize, now_ns: u64) -> bool {
        let cooldown = self.policy.probe_cooldown_ns;
        let d = &mut self.devices[device];
        match d.state {
            HealthState::Dead => {
                if now_ns.saturating_sub(d.dead_since_ns) >= cooldown {
                    // Canary probe: one request through; push the next
                    // cooldown window out from now.
                    d.dead_since_ns = now_ns;
                    true
                } else {
                    false
                }
            }
            _ => true,
        }
    }

    /// Observes a successful request on `device` dispatched at `at_ns` with
    /// service latency `latency_ns`.
    pub fn observe_success(&mut self, device: usize, at_ns: u64, latency_ns: u64) {
        let policy = self.policy.clone();
        let d = &mut self.devices[device];
        d.successes += 1;
        d.consecutive_failures = 0;
        d.consecutive_successes += 1;
        let slow = d.successes > 1
            && d.ewma_ns > 0.0
            && latency_ns as f64 > policy.suspect_latency_factor * d.ewma_ns;
        d.ewma_ns = if d.successes == 1 {
            latency_ns as f64
        } else {
            policy.ewma_alpha * latency_ns as f64 + (1.0 - policy.ewma_alpha) * d.ewma_ns
        };
        match d.state {
            HealthState::Dead => {
                // Canary came back: the device serves again, but stays on
                // probation until it proves itself.
                d.consecutive_successes = 1;
                d.transition(at_ns, HealthState::Suspect);
            }
            HealthState::Suspect => {
                if slow {
                    d.consecutive_successes = 0; // still degraded
                } else if d.consecutive_successes >= policy.revive_successes {
                    d.transition(at_ns, HealthState::Healthy);
                }
            }
            HealthState::Healthy => {
                if slow {
                    d.consecutive_successes = 0;
                    d.transition(at_ns, HealthState::Suspect);
                }
            }
        }
    }

    /// Observes a failed request (unavailable or timed out) on `device`
    /// dispatched at `at_ns`.
    pub fn observe_failure(&mut self, device: usize, at_ns: u64) {
        let policy = self.policy.clone();
        let d = &mut self.devices[device];
        d.failures += 1;
        d.consecutive_successes = 0;
        d.consecutive_failures += 1;
        if d.consecutive_failures >= policy.dead_after_failures {
            d.transition(at_ns, HealthState::Dead);
        } else if d.consecutive_failures >= policy.suspect_after_failures {
            d.transition(at_ns, HealthState::Suspect);
        }
    }

    /// Hedge threshold for `device` given the fleet-wide healthy p99: a
    /// Suspect device hedges at half the threshold (it has already shown a
    /// reason to distrust it).
    pub fn hedge_threshold_ns(&self, device: usize, healthy_pxx_ns: u64) -> u64 {
        match self.devices[device].state {
            HealthState::Suspect => (healthy_pxx_ns / 2).max(1),
            _ => healthy_pxx_ns.max(1),
        }
    }

    /// Freezes the tracker into per-device serializable timelines.
    pub fn timelines(&self) -> Vec<DeviceHealthTimeline> {
        self.devices
            .iter()
            .enumerate()
            .map(|(device, d)| DeviceHealthTimeline {
                device,
                final_state: d.state,
                ewma_latency_ns: d.ewma_ns as u64,
                successes: d.successes,
                failures: d.failures,
                transitions: d.transitions.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> HealthPolicy {
        HealthPolicy {
            dead_after_failures: 3,
            revive_successes: 2,
            probe_cooldown_ns: 1_000,
            ..HealthPolicy::default()
        }
    }

    #[test]
    fn default_policy_validates_and_backs_off_capped() {
        let p = HealthPolicy::default();
        p.validate().unwrap();
        assert_eq!(p.backoff_ns(0), 50_000);
        assert_eq!(p.backoff_ns(1), 100_000);
        assert_eq!(p.backoff_ns(2), 200_000);
        // Cap: 50 µs << n clamps at 1 ms.
        assert_eq!(p.backoff_ns(10), 1_000_000);
        assert_eq!(p.backoff_ns(63), 1_000_000);
        assert_eq!(p.backoff_ns(200), 1_000_000);
    }

    #[test]
    fn policy_validation_rejects_nonsense() {
        let p = HealthPolicy {
            ewma_alpha: 0.0,
            ..HealthPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = HealthPolicy {
            dead_after_failures: 0,
            ..HealthPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = HealthPolicy {
            hedge_percentile: 150.0,
            ..HealthPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn consecutive_failures_walk_healthy_suspect_dead() {
        let mut t = HealthTracker::new(2, quick_policy());
        assert_eq!(t.state(0), HealthState::Healthy);
        t.observe_failure(0, 100);
        assert_eq!(t.state(0), HealthState::Suspect);
        t.observe_failure(0, 200);
        assert_eq!(t.state(0), HealthState::Suspect);
        t.observe_failure(0, 300);
        assert_eq!(t.state(0), HealthState::Dead);
        // Device 1 is untouched.
        assert_eq!(t.state(1), HealthState::Healthy);
        // Timeline recorded both transitions with their trigger times.
        let tl = &t.timelines()[0];
        assert_eq!(
            tl.transitions,
            vec![
                HealthTransition {
                    at_ns: 100,
                    to: HealthState::Suspect
                },
                HealthTransition {
                    at_ns: 300,
                    to: HealthState::Dead
                },
            ]
        );
        assert_eq!(tl.failures, 3);
    }

    #[test]
    fn a_success_resets_the_failure_streak() {
        let mut t = HealthTracker::new(1, quick_policy());
        t.observe_failure(0, 100);
        t.observe_failure(0, 200);
        t.observe_success(0, 300, 1_000);
        t.observe_failure(0, 400);
        t.observe_failure(0, 500);
        // Streak broken at 2: never reached dead_after_failures = 3.
        assert_ne!(t.state(0), HealthState::Dead);
    }

    #[test]
    fn dead_device_fast_fails_until_the_canary_cooldown() {
        let mut t = HealthTracker::new(1, quick_policy());
        for i in 0..3 {
            t.observe_failure(0, i * 10);
        }
        assert_eq!(t.state(0), HealthState::Dead);
        // Inside the cooldown: no attempts.
        assert!(!t.should_attempt(0, 500));
        // Past the cooldown (dead since t=20, cooldown 1000): one canary.
        assert!(t.should_attempt(0, 1_500));
        // The canary consumed the window; the next probe waits again.
        assert!(!t.should_attempt(0, 1_600));
        assert!(t.should_attempt(0, 2_600));
    }

    #[test]
    fn canary_success_revives_through_suspect_to_healthy() {
        let mut t = HealthTracker::new(1, quick_policy());
        for i in 0..3 {
            t.observe_failure(0, i * 10);
        }
        assert_eq!(t.state(0), HealthState::Dead);
        t.observe_success(0, 2_000, 1_000);
        assert_eq!(t.state(0), HealthState::Suspect);
        t.observe_success(0, 2_100, 1_000);
        // revive_successes = 2: the second clean success restores Healthy.
        assert_eq!(t.state(0), HealthState::Healthy);
        let tl = &t.timelines()[0];
        assert_eq!(tl.final_state, HealthState::Healthy);
        assert_eq!(tl.transitions.last().unwrap().to, HealthState::Healthy);
    }

    #[test]
    fn latency_excursion_marks_suspect_without_failures() {
        let mut t = HealthTracker::new(1, quick_policy());
        for i in 0..10 {
            t.observe_success(0, i * 100, 1_000);
        }
        assert_eq!(t.state(0), HealthState::Healthy);
        // 10× the EWMA (factor is 3): Suspect despite being a success.
        t.observe_success(0, 1_100, 10_000);
        assert_eq!(t.state(0), HealthState::Suspect);
        // EWMA keeps tracking.
        assert!(t.ewma_ns(0).unwrap() > 1_000);
    }

    #[test]
    fn suspect_devices_hedge_at_half_threshold() {
        let mut t = HealthTracker::new(2, quick_policy());
        t.observe_failure(0, 100);
        assert_eq!(t.state(0), HealthState::Suspect);
        assert_eq!(t.hedge_threshold_ns(0, 10_000), 5_000);
        assert_eq!(t.hedge_threshold_ns(1, 10_000), 10_000);
        // Degenerate threshold still fires.
        assert_eq!(t.hedge_threshold_ns(1, 0), 1);
    }

    #[test]
    fn timelines_serialize_round_trip() {
        let mut t = HealthTracker::new(2, quick_policy());
        t.observe_failure(0, 5);
        t.observe_success(1, 10, 500);
        let tl = t.timelines();
        let json = serde_json::to_string(&tl).unwrap();
        let back: Vec<DeviceHealthTimeline> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tl);
    }
}

//! The three FTL schemes evaluated in the paper (§4.1).
//!
//! * [`baseline::BaselineFtl`] — dynamic page-level mapping, no partial
//!   programming: every write chunk consumes a whole fresh SLC page.
//! * [`mga::MgaFtl`] — Mapping Granularity Adaptive (Feng et al., DATE'17):
//!   subpage-granular packing of small writes from different requests into
//!   open pages via partial programming; greedy subpage GC.
//! * [`ipu::IpuFtl`] — the paper's Intra-page Update scheme: partial
//!   programming only ever rewrites a page's *own* data; three-level hot/cold
//!   block hierarchy with upgraded movement on update overflow, ISR-based GC
//!   victim selection and degraded movement at GC.

pub mod baseline;
pub mod common;
pub mod ipu;
pub mod ipu_plus;
pub mod mga;

use ipu_flash::{FlashDevice, Nanos};
use ipu_trace::IoRequest;
use serde::{Deserialize, Serialize};

use crate::config::FtlConfig;
use crate::memory::MappingMemory;
use crate::ops::OpBatch;
use crate::stats::FtlStats;
use common::FtlCore;

/// A pluggable FTL scheme.
pub trait FtlScheme {
    /// Scheme name as printed in the paper's figures.
    fn name(&self) -> &'static str;

    /// Handles a host write request at simulated time `now`, appending every
    /// flash operation issued — including GC work the write triggered — to
    /// `out`. `out` arrives cleared; callers on the replay hot path reuse one
    /// batch across requests (via [`OpBatch::clear`]) so no per-request `Vec`
    /// allocation happens once the batch has grown to the workload's
    /// high-water mark.
    fn on_write_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    );

    /// Handles a host read request; same output contract as
    /// [`FtlScheme::on_write_into`].
    fn on_read_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    );

    /// Convenience wrapper over [`FtlScheme::on_write_into`] allocating a
    /// fresh batch; fine for tests and one-off calls, avoid in replay loops.
    fn on_write(&mut self, req: &IoRequest, now: Nanos, dev: &mut FlashDevice) -> OpBatch {
        let mut batch = OpBatch::new();
        self.on_write_into(req, now, dev, &mut batch);
        batch
    }

    /// Convenience wrapper over [`FtlScheme::on_read_into`] allocating a
    /// fresh batch.
    fn on_read(&mut self, req: &IoRequest, now: Nanos, dev: &mut FlashDevice) -> OpBatch {
        let mut batch = OpBatch::new();
        self.on_read_into(req, now, dev, &mut batch);
        batch
    }

    /// Simulates a sudden power loss and recovery: every volatile structure
    /// (mapping table, owner table, cache metadata, open blocks, scheme-local
    /// packing state) is dropped and rebuilt from durable flash contents —
    /// the per-page OOB records and the bad-block table. Statistics survive
    /// (they model host-side observability, not drive RAM).
    fn power_cycle(&mut self, dev: &FlashDevice);

    /// FTL statistics accumulated so far.
    fn stats(&self) -> &FtlStats;

    /// The scheme's mapping-table memory footprint under the paper's §4.4.1
    /// accounting model (Figure 11).
    fn mapping_memory(&self, dev: &FlashDevice) -> MappingMemory;

    /// Access to the shared core (tests, metrics, invariant checks).
    fn core(&self) -> &FtlCore;

    /// Mutable access to the shared core (victim-selection probes in tests).
    fn core_mut(&mut self) -> &mut FtlCore;
}

/// Identifies one of the three schemes; used by configs and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Plain SLC-cache FTL: whole-page cache writes, no update grouping.
    Baseline,
    /// Modify-Group-Aggregation (the paper's state-of-the-art comparison):
    /// groups sub-page updates and aggregates them into full-page writes.
    Mga,
    /// The paper's Intra-page Update scheme: partial programming updates
    /// subpages in place inside the SLC-mode cache page.
    Ipu,
    /// Extension: IPU plus adaptive cold-data packing — the paper's §5
    /// future work. Not part of the paper's evaluated trio.
    IpuPlus,
}

impl SchemeKind {
    /// The paper's evaluated schemes, in its presentation order.
    pub fn all() -> [SchemeKind; 3] {
        [SchemeKind::Baseline, SchemeKind::Mga, SchemeKind::Ipu]
    }

    /// The paper's schemes plus this repo's extensions.
    pub fn all_extended() -> [SchemeKind; 4] {
        [
            SchemeKind::Baseline,
            SchemeKind::Mga,
            SchemeKind::Ipu,
            SchemeKind::IpuPlus,
        ]
    }

    /// Display label as used in the paper.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Baseline => "Baseline",
            SchemeKind::Mga => "MGA",
            SchemeKind::Ipu => "IPU",
            SchemeKind::IpuPlus => "IPU+",
        }
    }

    /// Instantiates the scheme over `dev` (formats the SLC region).
    pub fn build(self, dev: &mut FlashDevice, cfg: FtlConfig) -> Box<dyn FtlScheme> {
        match self {
            SchemeKind::Baseline => Box::new(baseline::BaselineFtl::new(dev, cfg)),
            SchemeKind::Mga => Box::new(mga::MgaFtl::new(dev, cfg)),
            SchemeKind::Ipu => Box::new(ipu::IpuFtl::new(dev, cfg)),
            SchemeKind::IpuPlus => Box::new(ipu_plus::IpuPlusFtl::new(dev, cfg)),
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

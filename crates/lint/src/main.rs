#![forbid(unsafe_code)]
//! `ipu-lint` CLI: lints the workspace and exits nonzero on any unsuppressed
//! finding. `--json` emits machine-readable output for CI; `--root <dir>`
//! points at a workspace other than the current directory.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ipu-lint: project-specific static analysis\n\n\
                     USAGE: ipu-lint [--json] [--root <dir>]\n\n\
                     Scans crates/*/src/**/*.rs under the workspace root and reports\n\
                     violations of the project rules (see DESIGN.md §13). Exit code is\n\
                     0 when clean, 1 on findings, 2 on usage or I/O errors.\n\n\
                     Suppress a finding inline, reason mandatory:\n\
                     \x20   // ipu-lint: allow(<rule>) — <reason>"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match ipu_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to scan workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&report));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "ipu-lint: {} file(s) scanned, {} finding(s), {} suppressed by allow comments",
            report.files_scanned,
            report.findings.len(),
            report.suppressed
        );
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON (the linter is dependency-free by design).
fn render_json(report: &ipu_lint::LintReport) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"finding_count\": {}\n}}",
        report.files_scanned,
        report.suppressed,
        report.findings.len()
    ));
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

//! Fixture-driven rule tests: every rule fires on its violating fixture,
//! stays silent on the conforming twin and outside its scope, and allow
//! comments suppress only when well-formed (known rule + reason).

use ipu_lint::{lint_sources, lint_str, Finding, SourceFile};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn rule_counts(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

fn assert_only_rule(findings: &[Finding], rule: &str) {
    for f in findings {
        assert_eq!(f.rule, rule, "unexpected finding: {f}");
    }
}

// ------------------------------------------------------ R9 panic-reachability

#[test]
fn panic_reachability_fires_on_host_reachable_tokens() {
    let src = fixture("panic_reach_bad.rs");
    let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/fixture.rs", false, &src);
    assert_only_rule(&findings, "panic-reachability");
    // unwrap, expect, panic!, unreachable!, indexing in a match arm — all in
    // `impl FtlScheme` methods (seeds) — and the unwrap inside #[cfg(test)]
    // must NOT be counted.
    assert_eq!(findings.len(), 5, "{findings:#?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn panic_reachability_silent_on_fallible_code() {
    let src = fixture("panic_reach_ok.rs");
    let (findings, _) = lint_str("ftl", "crates/ftl/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn panic_reachability_ignores_unreached_panics() {
    // The helper's unwrap is a panic token, but nothing host-reachable calls
    // it in this source set, so the rule stays silent.
    let src = fixture("panic_cross_helper.rs");
    let (findings, _) = lint_str("sim", "crates/sim/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

/// The proof pair the issue demands: each file alone passes (as it did under
/// the old per-file lexical `no-panic` rule, which was additionally scoped to
/// ftl/flash and would never have looked at a sim helper at all), but linted
/// together the helper's `.unwrap()` is reachable from the `FtlScheme` seed.
#[test]
fn panic_reachability_crosses_files_the_lexical_rule_could_not() {
    let seed = fixture("panic_cross_seed.rs");
    let helper = fixture("panic_cross_helper.rs");

    let (findings, _) = lint_str("ftl", "crates/ftl/src/fixture.rs", false, &seed);
    assert!(findings.is_empty(), "seed alone: {findings:#?}");
    let (findings, _) = lint_str("sim", "crates/sim/src/fixture.rs", false, &helper);
    assert!(findings.is_empty(), "helper alone: {findings:#?}");

    let report = lint_sources(
        vec![
            SourceFile {
                crate_name: "ftl".to_string(),
                rel_path: "crates/ftl/src/scheme_fixture.rs".to_string(),
                is_crate_root: false,
                src: seed,
            },
            SourceFile {
                crate_name: "sim".to_string(),
                rel_path: "crates/sim/src/helper_fixture.rs".to_string(),
                is_crate_root: false,
                src: helper,
            },
        ],
        1,
    );
    assert_eq!(report.findings.len(), 1, "{:#?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "panic-reachability");
    assert_eq!(f.file, "crates/sim/src/helper_fixture.rs");
    assert!(
        f.message.contains("Fixture::on_host_write"),
        "path label names the seed: {}",
        f.message
    );
}

// ------------------------------------------------------------ R2 no-wall-clock

#[test]
fn wall_clock_fires_on_violations() {
    let src = fixture("wall_clock_bad.rs");
    let (findings, _) = lint_str("sim", "crates/sim/src/fixture.rs", false, &src);
    assert_only_rule(&findings, "no-wall-clock");
    // `std::time` path + the `SystemTime` identifier.
    assert_eq!(findings.len(), 2, "{findings:#?}");
}

#[test]
fn wall_clock_silent_on_conforming_code() {
    let src = fixture("wall_clock_ok.rs");
    let (findings, _) = lint_str("sim", "crates/sim/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn wall_clock_scoped_to_deterministic_crates() {
    let src = fixture("wall_clock_bad.rs");
    let (findings, _) = lint_str("obs", "crates/obs/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ----------------------------------------------------------- R3 unordered-iter

#[test]
fn unordered_iter_fires_on_ordered_output_files() {
    let src = fixture("unordered_bad.rs");
    let (findings, _) = lint_str("core", "crates/core/src/report.rs", false, &src);
    // `HashMap` in the use and in the signature (lexical mention rule) plus
    // the for-loop over the unordered local (type-flow rule): the two rules
    // deliberately overlap on the deterministic-output surface.
    assert_eq!(rule_counts(&findings, "unordered-iter"), 2, "{findings:#?}");
    assert_eq!(rule_counts(&findings, "nondet-reduce"), 1, "{findings:#?}");
    assert_eq!(findings.len(), 3, "{findings:#?}");
}

#[test]
fn unordered_iter_silent_on_btree() {
    let src = fixture("unordered_ok.rs");
    let (findings, _) = lint_str("core", "crates/core/src/report.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn unordered_iter_scoped_to_listed_files() {
    let src = fixture("unordered_bad.rs");
    let (findings, _) = lint_str("core", "crates/core/src/unlisted.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ------------------------------------------------------------ R4 serde-default

#[test]
fn serde_default_fires_on_undefaulted_field() {
    let src = fixture("serde_bad.rs");
    let (findings, _) = lint_str("core", "crates/core/src/config.rs", false, &src);
    assert_only_rule(&findings, "serde-default");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].message.contains("FixtureConfig.beta"));
}

#[test]
fn serde_default_silent_when_all_fields_defaulted() {
    let src = fixture("serde_ok.rs");
    let (findings, _) = lint_str("core", "crates/core/src/config.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn serde_default_respects_struct_filter() {
    // The flash scope only checks DeviceConfig; FixtureConfig is ignored.
    let src = fixture("serde_bad.rs");
    let (findings, _) = lint_str("flash", "crates/flash/src/config.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ------------------------------------------------------------ R5 forbid-unsafe

#[test]
fn forbid_unsafe_fires_on_bare_crate_root() {
    let src = fixture("forbid_unsafe_bad.rs");
    let (findings, _) = lint_str("core", "crates/core/src/lib.rs", true, &src);
    assert_eq!(rule_counts(&findings, "forbid-unsafe"), 1, "{findings:#?}");
}

#[test]
fn forbid_unsafe_silent_when_attribute_present() {
    let src = fixture("forbid_unsafe_ok.rs");
    let (findings, _) = lint_str("core", "crates/core/src/lib.rs", true, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn forbid_unsafe_only_checks_crate_roots() {
    let src = fixture("forbid_unsafe_bad.rs");
    let (findings, _) = lint_str("core", "crates/core/src/module.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ----------------------------------------------------------------- R6 float-eq

#[test]
fn float_eq_fires_outside_tests() {
    let src = fixture("float_eq_bad.rs");
    let (findings, _) = lint_str("core", "crates/core/src/fixture.rs", false, &src);
    assert_only_rule(&findings, "float-eq");
    // `== 0.5` and `!= 1.0`; the comparison inside #[cfg(test)] is exempt.
    assert_eq!(findings.len(), 2, "{findings:#?}");
}

#[test]
fn float_eq_silent_on_ranges_and_int_eq() {
    let src = fixture("float_eq_ok.rs");
    let (findings, _) = lint_str("core", "crates/core/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

// -------------------------------------------------------------- R7 missing-doc

#[test]
fn missing_doc_fires_on_undocumented_items() {
    let src = fixture("missing_doc_bad.rs");
    let (findings, _) = lint_str("ftl", "crates/ftl/src/schemes/mod.rs", false, &src);
    assert_only_rule(&findings, "missing-doc");
    // Two undocumented trait methods + one undocumented enum variant.
    assert_eq!(findings.len(), 3, "{findings:#?}");
}

#[test]
fn missing_doc_silent_when_documented() {
    let src = fixture("missing_doc_ok.rs");
    let (findings, _) = lint_str("ftl", "crates/ftl/src/schemes/mod.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn missing_doc_enum_only_scope_skips_traits() {
    let src = fixture("missing_doc_bad.rs");
    let (findings, _) = lint_str("ftl", "crates/ftl/src/error.rs", false, &src);
    assert_only_rule(&findings, "missing-doc");
    // Only the enum variant; the trait is out of scope for error enums.
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].message.contains("FixtureKind::Undocumented"));
}

// ----------------------------------------------------------- R8 no-debug-print

#[test]
fn debug_print_fires_in_library_code() {
    let src = fixture("debug_print_bad.rs");
    let (findings, _) = lint_str("core", "crates/core/src/fixture.rs", false, &src);
    assert_only_rule(&findings, "no-debug-print");
    // println! + dbg!; the println! inside #[cfg(test)] is exempt.
    assert_eq!(findings.len(), 2, "{findings:#?}");
}

#[test]
fn debug_print_silent_on_conforming_code() {
    let src = fixture("debug_print_ok.rs");
    let (findings, _) = lint_str("core", "crates/core/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn debug_print_exempts_cli_and_binaries() {
    let src = fixture("debug_print_bad.rs");
    let (findings, _) = lint_str("cli", "crates/cli/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "cli crate: {findings:#?}");
    let (findings, _) = lint_str("core", "crates/core/src/main.rs", false, &src);
    assert!(findings.is_empty(), "main.rs: {findings:#?}");
}

// ------------------------------------------------------------- allow comments

#[test]
fn valid_allow_with_reason_suppresses() {
    let src = fixture("allow_ok.rs");
    let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn allow_without_reason_is_itself_a_finding() {
    let src = fixture("allow_missing_reason.rs");
    let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/fixture.rs", false, &src);
    assert_eq!(suppressed, 0);
    assert_eq!(
        rule_counts(&findings, "allow-missing-reason"),
        1,
        "{findings:#?}"
    );
    assert_eq!(
        rule_counts(&findings, "panic-reachability"),
        1,
        "{findings:#?}"
    );
    assert_eq!(findings.len(), 2);
}

#[test]
fn allow_naming_unknown_rule_suppresses_nothing() {
    let src = fixture("allow_unknown_rule.rs");
    let (findings, suppressed) = lint_str("ftl", "crates/ftl/src/fixture.rs", false, &src);
    assert_eq!(suppressed, 0);
    assert_eq!(
        rule_counts(&findings, "allow-unknown-rule"),
        1,
        "{findings:#?}"
    );
    assert_eq!(
        rule_counts(&findings, "panic-reachability"),
        1,
        "{findings:#?}"
    );
    assert_eq!(findings.len(), 2);
}

// ---------------------------------------------------------- R10 exhaustive-match

#[test]
fn exhaustive_match_fires_on_wildcard_growth_arm() {
    let src = fixture("exhaustive_bad.rs");
    let (findings, _) = lint_str("ftl", "crates/ftl/src/fixture.rs", false, &src);
    assert_only_rule(&findings, "exhaustive-match");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].message.contains("FlashOpKind"));
}

#[test]
fn exhaustive_match_silent_on_conforming_matches() {
    // Full enumeration, a named binding, and `_` on a non-growth match.
    let src = fixture("exhaustive_ok.rs");
    let (findings, _) = lint_str("ftl", "crates/ftl/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ----------------------------------------------------------- R11 merge-complete

#[test]
fn merge_complete_fires_on_forgotten_field() {
    let src = fixture("merge_bad.rs");
    let (findings, _) = lint_str("host", "crates/host/src/metrics.rs", false, &src);
    assert_only_rule(&findings, "merge-complete");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].message.contains("LatencyStats.max_ns"));
}

#[test]
fn merge_complete_silent_when_every_field_merges() {
    let src = fixture("merge_ok.rs");
    let (findings, _) = lint_str("host", "crates/host/src/metrics.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn merge_complete_scoped_to_listed_files() {
    // The same forgotten field is fine in a file outside the scope table.
    let src = fixture("merge_bad.rs");
    let (findings, _) = lint_str("host", "crates/host/src/other.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

// ------------------------------------------------------------ R12 nondet-reduce

#[test]
fn nondet_reduce_fires_on_unordered_reductions() {
    let src = fixture("nondet_bad.rs");
    let (findings, _) = lint_str("host", "crates/host/src/fixture.rs", false, &src);
    assert_only_rule(&findings, "nondet-reduce");
    // HashMap iteration inside parallel_map + f64 accumulation over a
    // HashMap anywhere.
    assert_eq!(findings.len(), 2, "{findings:#?}");
}

#[test]
fn nondet_reduce_silent_on_ordered_or_integer_reductions() {
    let src = fixture("nondet_ok.rs");
    let (findings, _) = lint_str("host", "crates/host/src/fixture.rs", false, &src);
    assert!(findings.is_empty(), "{findings:#?}");
}

// --------------------------------------------------- the workspace lints clean

fn workspace_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR is crates/lint; the workspace root is two levels up.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_no_unsuppressed_findings() {
    let report = ipu_lint::lint_workspace(&workspace_root(), 2).expect("walk workspace");
    assert!(
        report.files_scanned > 50,
        "scanned {}",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        rendered.is_empty(),
        "workspace findings:\n{}",
        rendered.join("\n")
    );
}

/// Satellite (b): the report — and every rendering of it — is byte-identical
/// whatever the worker count, because phase A is an order-preserving
/// parallel_map and findings are globally sorted by `(file, line, rule)`.
#[test]
fn report_is_byte_identical_across_thread_counts() {
    let root = workspace_root();
    let r1 = ipu_lint::lint_workspace(&root, 1).expect("walk workspace");
    let r4 = ipu_lint::lint_workspace(&root, 4).expect("walk workspace");
    assert_eq!(ipu_lint::render_human(&r1), ipu_lint::render_human(&r4));
    assert_eq!(ipu_lint::render_json(&r1), ipu_lint::render_json(&r4));
    assert_eq!(ipu_lint::render_github(&r1), ipu_lint::render_github(&r4));
    assert_eq!(r1.suppressed, r4.suppressed);
    assert_eq!(r1.files_scanned, r4.files_scanned);
}

//! Analytic mapping-table memory model (the paper's Figure 11 and §4.4.1).
//!
//! The simulator implements one unified subpage-granular map for all schemes;
//! what each scheme would *actually* have to keep in controller DRAM differs,
//! and this module computes it from live mapping state:
//!
//! * **Baseline** — a dynamic page-level table: one entry per mapped logical
//!   page ([`PAGE_ENTRY_BYTES`] each).
//! * **MGA** — the page-level table plus a second-level table recording
//!   subpage placement for every *scattered* chunk (one
//!   [`SUBPAGE_ENTRY_BYTES`] entry per subpage of such chunks).
//! * **IPU** — the page-level table plus, per SLC-mode physical page, a 2-bit
//!   field recording which subpage offset holds the live version, plus 2-bit
//!   level labels per SLC block (paper §4.4.1: 820 B of labels and ~0.84%
//!   total overhead at device scale).

use serde::{Deserialize, Serialize};

/// Bytes per page-level mapping entry (logical page → physical page).
pub const PAGE_ENTRY_BYTES: u64 = 8;
/// Bytes per second-level subpage entry in MGA's two-level table.
pub const SUBPAGE_ENTRY_BYTES: u64 = 4;
/// Bits per SLC physical page for IPU's live-offset field.
pub const IPU_OFFSET_BITS: u64 = 2;
/// Bits per SLC block for the three-level label.
pub const LEVEL_LABEL_BITS: u64 = 2;

/// Mapping-memory breakdown for one scheme (Figure 11's bars).
///
/// The first-level table is sized for the whole logical space (one entry per
/// logical page of the device), as dynamic page-level FTLs allocate it; the
/// second-level structures grow with live state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MappingMemory {
    /// First-level (page-granular) table bytes.
    pub page_table_bytes: u64,
    /// Second-level table bytes (MGA subpage entries / IPU offset fields).
    pub second_level_bytes: u64,
    /// Block-level label bytes (IPU's Work/Monitor/Hot tags).
    pub label_bytes: u64,
}

impl MappingMemory {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.page_table_bytes + self.second_level_bytes + self.label_bytes
    }

    /// Size relative to a baseline page-level table of the same chunk count.
    pub fn normalized_to(&self, baseline: &MappingMemory) -> f64 {
        if baseline.total() == 0 {
            return 1.0;
        }
        self.total() as f64 / baseline.total() as f64
    }

    /// Baseline model: the page-level table only, sized for the full logical
    /// space (`logical_pages` = device capacity / page size).
    pub fn baseline(logical_pages: u64) -> Self {
        MappingMemory {
            page_table_bytes: logical_pages * PAGE_ENTRY_BYTES,
            second_level_bytes: 0,
            label_bytes: 0,
        }
    }

    /// MGA model: the page-level table plus second-level entries for every
    /// subpage of every currently-scattered chunk.
    pub fn mga(logical_pages: u64, scattered_chunks: u64, subpages_per_page: u32) -> Self {
        MappingMemory {
            page_table_bytes: logical_pages * PAGE_ENTRY_BYTES,
            second_level_bytes: scattered_chunks * subpages_per_page as u64 * SUBPAGE_ENTRY_BYTES,
            label_bytes: 0,
        }
    }

    /// IPU model: the page-level table plus 2-bit offset fields over the SLC
    /// page population and 2-bit labels over the SLC block population.
    pub fn ipu(logical_pages: u64, slc_pages: u64, slc_blocks: u64) -> Self {
        MappingMemory {
            page_table_bytes: logical_pages * PAGE_ENTRY_BYTES,
            second_level_bytes: (slc_pages * IPU_OFFSET_BITS).div_ceil(8),
            label_bytes: (slc_blocks * LEVEL_LABEL_BITS).div_ceil(8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_label_cost_matches_section_441() {
        // Paper: 2 bit × 5% × 65536 blocks = 819.2 B, printed as 820 B in
        // §4.4.1. 3276 whole blocks × 2 bits = 819 B.
        let m = MappingMemory::ipu(0, 0, (65_536.0f64 * 0.05) as u64);
        assert_eq!(m.label_bytes, 819);
    }

    #[test]
    fn ipu_offset_cost_is_tiny_at_paper_scale() {
        // 3276 SLC blocks × 64 pages → 2-bit fields = 52.4 KB.
        let slc_blocks = 3276u64;
        let m = MappingMemory::ipu(1_000_000, slc_blocks * 64, slc_blocks);
        let overhead = m.total() as f64 / MappingMemory::baseline(1_000_000).total() as f64;
        assert!(
            overhead < 1.01,
            "IPU overhead {overhead} should be below 1%"
        );
        assert!(overhead > 1.0);
    }

    #[test]
    fn mga_grows_with_scatter() {
        let base = MappingMemory::baseline(1000);
        let none = MappingMemory::mga(1000, 0, 4);
        let some = MappingMemory::mga(1000, 150, 4);
        assert_eq!(none.total(), base.total());
        assert!(some.total() > base.total());
        // 150 scattered chunks × 4 × 4 B = 2400 B over 8000 B = +30%.
        assert!((some.normalized_to(&base) - 1.3).abs() < 1e-9);
    }

    #[test]
    fn normalization_handles_empty_baseline() {
        let m = MappingMemory::ipu(0, 64, 1);
        assert_eq!(m.normalized_to(&MappingMemory::baseline(0)), 1.0);
    }
}

//! The trace-replay engine: drives an FTL scheme over a request stream,
//! schedules the resulting flash operations onto chips, and aggregates every
//! metric the paper's evaluation reports.

use ipu_flash::device::OpCounters;
use ipu_flash::wear::WearTotals;
use ipu_flash::{DeviceConfig, FlashDevice, Nanos};
use ipu_ftl::{FtlConfig, FtlStats, MappingMemory, OpBatch, SchemeKind};
use ipu_trace::{IoRequest, OpKind};
use serde::{Deserialize, Serialize};

use crate::event_core::{EventCore, TimingConfig};
use crate::resources::ChipSchedule;
use ipu_host::metrics::{LatencyStats, ReliabilityStats};

/// Everything needed to run one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    pub device: DeviceConfig,
    pub ftl: FtlConfig,
    pub scheme: SchemeKind,
    /// Event-core timing model (GC preemption, read suspension). The default
    /// reproduces the inline oracle engine bit-for-bit.
    #[serde(default)]
    pub timing: TimingConfig,
}

impl ReplayConfig {
    /// Paper-scale configuration (Table 2) for `scheme`.
    pub fn paper_scale(scheme: SchemeKind) -> Self {
        ReplayConfig {
            device: DeviceConfig::paper_scale(),
            ftl: FtlConfig::default(),
            scheme,
            timing: TimingConfig::default(),
        }
    }

    /// Small configuration for tests.
    pub fn small_for_tests(scheme: SchemeKind) -> Self {
        ReplayConfig {
            device: DeviceConfig::small_for_tests(),
            ftl: FtlConfig::default(),
            scheme,
            timing: TimingConfig::default(),
        }
    }
}

/// Results of one replay: the measurements behind Figures 5–11 and 13–14.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    pub scheme: SchemeKind,
    pub trace: String,
    /// Host-visible response time of read requests (Fig. 5).
    pub read_latency: LatencyStats,
    /// Host-visible response time of write requests (Fig. 5).
    pub write_latency: LatencyStats,
    /// All requests combined (Fig. 5 "overall").
    pub overall_latency: LatencyStats,
    /// FTL counters (Figs. 6, 7, 9; read error rate for Fig. 8).
    pub ftl: FtlStats,
    /// Raw device operation counters.
    pub device: OpCounters,
    /// Erase totals by region (Fig. 10).
    pub wear: WearTotals,
    /// Mapping-table memory model (Fig. 11).
    pub mapping: MappingMemory,
    /// Simulated time when the last chip went idle.
    pub simulated_horizon_ns: Nanos,
    /// Requests replayed.
    pub requests: u64,
    /// Chip-time breakdown over the run: host write/erase, host read, and
    /// background (GC) nanoseconds executed.
    pub busy: BusyBreakdown,
    /// Per-request completion reliability (success / recovered / failed);
    /// absent in reports saved before the fault model existed.
    #[serde(default)]
    pub reliability: ReliabilityStats,
}

/// Total device busy time by operation class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyBreakdown {
    pub host_write_ns: Nanos,
    pub host_read_ns: Nanos,
    pub background_ns: Nanos,
}

impl BusyBreakdown {
    /// Utilization of the program/erase channel: host writes, erases and
    /// background GC all execute on each chip's write timeline.
    pub fn program_utilization(&self, chips: u32, horizon: Nanos) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        (self.host_write_ns + self.background_ns) as f64 / (chips as u64 * horizon) as f64
    }

    /// Utilization of the read channel. Reads run with program/erase
    /// suspension (see `ChipSchedule::schedule_read`), so they occupy a
    /// separate per-chip timeline from writes.
    pub fn read_utilization(&self, chips: u32, horizon: Nanos) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.host_read_ns as f64 / (chips as u64 * horizon) as f64
    }

    /// Mean device utilization over `chips` chips and `horizon` time: the
    /// busier of the two per-chip channels (program/erase+GC vs. reads).
    ///
    /// The two channels are accounted separately because the suspension model
    /// lets a read overlap a program on the same chip — summing both into one
    /// pool double-books the chip and can report utilizations above 1.0 on
    /// read-heavy bursts. As long as `horizon` covers both channels (see
    /// `ChipSchedule::horizon`), each per-channel utilization is ≤ 1 by
    /// construction, and so is the maximum.
    pub fn utilization(&self, chips: u32, horizon: Nanos) -> f64 {
        self.program_utilization(chips, horizon)
            .max(self.read_utilization(chips, horizon))
    }
}

impl SimReport {
    /// Average read error rate (Fig. 8).
    pub fn read_error_rate(&self) -> f64 {
        self.ftl.avg_read_error_rate()
    }

    /// Page utilization of GC'd SLC blocks (Fig. 9).
    pub fn gc_page_utilization(&self) -> f64 {
        self.ftl.gc_page_utilization()
    }
}

/// Replays `requests` (already sorted by arrival time) under `cfg`.
pub fn replay(cfg: &ReplayConfig, requests: &[IoRequest], trace_name: &str) -> SimReport {
    replay_with_progress(cfg, requests, trace_name, |_, _| {})
}

/// [`replay`] with a progress callback `(done, total)`.
///
/// Callback contract: `done` is strictly increasing — one call per 64 Ki
/// completed requests, plus exactly one final call at `(total, total)` (also
/// for empty traces).
///
/// The replay runs on the discrete-event core
/// ([`EventCore`](crate::event_core::EventCore)): op-issue events come from
/// the already-sorted request stream, and op-complete / GC-step / scrub-step
/// events interleave on the heap. With the default [`TimingConfig`] the
/// timeline is bit-identical to [`replay_oracle`] (pinned by the
/// `event_core_equivalence` property test).
pub fn replay_with_progress(
    cfg: &ReplayConfig,
    requests: &[IoRequest],
    trace_name: &str,
    mut progress: impl FnMut(u64, u64),
) -> SimReport {
    let mut dev = FlashDevice::new(cfg.device.clone());
    let mut ftl = cfg.scheme.build(&mut dev, cfg.ftl.clone());
    let mut core = EventCore::new(cfg.device.geometry.total_chips(), cfg.timing);

    let mut reliability = ReliabilityStats::new();

    let total = requests.len() as u64;
    // One batch for the whole replay: `clear()` retains the allocation, so
    // the FTL appends into an already-sized Vec on every request.
    let mut batch = OpBatch::new();
    for (i, req) in requests.iter().enumerate() {
        let now = req.timestamp_ns;
        batch.clear();
        match req.op {
            OpKind::Write => {
                let _span = ipu_obs::span(ipu_obs::Phase::FtlWrite);
                ftl.on_write_into(req, now, &mut dev, &mut batch);
            }
            OpKind::Read => {
                let _span = ipu_obs::span(ipu_obs::Phase::FtlRead);
                ftl.on_read_into(req, now, &mut dev, &mut batch);
            }
        };
        match batch.status {
            ipu_ftl::ReqStatus::Success => reliability.record_success(),
            ipu_ftl::ReqStatus::Recovered => reliability.record_recovered(),
            ipu_ftl::ReqStatus::Failed => reliability.record_failed(),
        }

        // Run every event that precedes this issue, then dispatch: host reads
        // get read priority, host writes are serviced FIFO per chip, and each
        // background round becomes a resumable step sequence.
        core.advance_to(now);
        core.dispatch(now, &batch, req.op);

        let done = i as u64 + 1;
        if done.is_multiple_of(65_536) && done < total {
            progress(done, total);
        }
    }
    progress(total, total);

    // Drain the heap: pending completions record their latencies and deferred
    // background GC runs to completion, so the report's accounting is not cut
    // off by a read-only or idle trace tail.
    core.finish();

    let mapping = ftl.mapping_memory(&dev);
    SimReport {
        scheme: cfg.scheme,
        trace: trace_name.to_string(),
        read_latency: core.read_latency().clone(),
        write_latency: core.write_latency().clone(),
        overall_latency: core.overall_latency().clone(),
        ftl: ftl.stats().clone(),
        device: dev.counters(),
        wear: dev.wear().totals(),
        mapping,
        simulated_horizon_ns: core.horizon(),
        requests: total,
        busy: BusyBreakdown {
            host_write_ns: core.host_busy(),
            host_read_ns: core.read_busy(),
            background_ns: core.background_done(),
        },
        reliability,
    }
}

/// The retained inline oracle engine: dispatches each request against a
/// [`ChipSchedule`] whose background queue drains lazily as a side effect of
/// host scheduling. Kept as the correctness oracle for the event core — the
/// `event_core_equivalence` property test pins `replay` bit-identical to this
/// function (via `SimReport` JSON) under the default timing model.
pub fn replay_oracle(cfg: &ReplayConfig, requests: &[IoRequest], trace_name: &str) -> SimReport {
    let mut dev = FlashDevice::new(cfg.device.clone());
    let mut ftl = cfg.scheme.build(&mut dev, cfg.ftl.clone());
    let mut chips = ChipSchedule::new(cfg.device.geometry.total_chips());

    let mut read_latency = LatencyStats::new();
    let mut write_latency = LatencyStats::new();
    let mut overall_latency = LatencyStats::new();
    let mut reliability = ReliabilityStats::new();

    let total = requests.len() as u64;
    let mut batch = OpBatch::new();
    for req in requests.iter() {
        let now = req.timestamp_ns;
        batch.clear();
        match req.op {
            OpKind::Write => ftl.on_write_into(req, now, &mut dev, &mut batch),
            OpKind::Read => ftl.on_read_into(req, now, &mut dev, &mut batch),
        };
        match batch.status {
            ipu_ftl::ReqStatus::Success => reliability.record_success(),
            ipu_ftl::ReqStatus::Recovered => reliability.record_recovered(),
            ipu_ftl::ReqStatus::Failed => reliability.record_failed(),
        }

        // Host reads get read priority (program/erase suspension), host
        // writes are serviced FIFO per chip, and GC operations run as
        // background work in idle gaps. The request completes when its last
        // host operation completes.
        let mut completion = now;
        for op in &batch.ops {
            match op.kind {
                ipu_ftl::FlashOpKind::HostRead | ipu_ftl::FlashOpKind::UnmappedRead => {
                    let (_, end) = chips.schedule_read(op.chip, now, op.latency_ns);
                    completion = completion.max(end);
                }
                ipu_ftl::FlashOpKind::HostProgram => {
                    let (_, end) = chips.schedule(op.chip, now, op.latency_ns);
                    completion = completion.max(end);
                }
                ipu_ftl::FlashOpKind::GcRead
                | ipu_ftl::FlashOpKind::GcProgram
                | ipu_ftl::FlashOpKind::Erase => {
                    chips.schedule_background(op.chip, now, op.latency_ns)
                }
            }
        }
        let latency = completion - now;
        overall_latency.record(latency);
        match req.op {
            OpKind::Read => read_latency.record(latency),
            OpKind::Write => write_latency.record(latency),
        }
    }

    chips.finish();

    let mapping = ftl.mapping_memory(&dev);
    SimReport {
        scheme: cfg.scheme,
        trace: trace_name.to_string(),
        read_latency,
        write_latency,
        overall_latency,
        ftl: ftl.stats().clone(),
        device: dev.counters(),
        wear: dev.wear().totals(),
        mapping,
        simulated_horizon_ns: chips.horizon(),
        requests: total,
        busy: BusyBreakdown {
            host_write_ns: chips.host_busy(),
            host_read_ns: chips.read_busy(),
            background_ns: chips.background_done(),
        },
        reliability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_workload() -> Vec<IoRequest> {
        let mut reqs = Vec::new();
        let mut t = 0u64;
        // Writes with updates, then reads of everything.
        for round in 0..6u64 {
            for slot in 0..5u64 {
                t += 100_000;
                reqs.push(IoRequest::new(t, OpKind::Write, slot * 65536, 4096));
                let _ = round;
            }
        }
        for slot in 0..5u64 {
            t += 100_000;
            reqs.push(IoRequest::new(t, OpKind::Read, slot * 65536, 4096));
        }
        reqs
    }

    #[test]
    fn replay_produces_complete_report() {
        for kind in SchemeKind::all() {
            let cfg = ReplayConfig::small_for_tests(kind);
            let reqs = tiny_workload();
            let report = replay(&cfg, &reqs, "tiny");
            assert_eq!(report.requests, reqs.len() as u64);
            assert_eq!(report.scheme, kind);
            assert_eq!(report.write_latency.count(), 30);
            assert_eq!(report.read_latency.count(), 5);
            assert_eq!(report.overall_latency.count(), 35);
            assert!(
                report.write_latency.mean_ns() > 0.0,
                "{kind}: zero write latency"
            );
            assert!(report.read_latency.mean_ns() > 0.0);
            assert!(report.read_error_rate() > 0.0);
            assert!(report.simulated_horizon_ns >= reqs.last().unwrap().timestamp_ns);
            assert!(report.mapping.total() > 0);
            assert_eq!(report.ftl.host_write_requests, 30);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Ipu);
        let reqs = tiny_workload();
        let a = replay(&cfg, &reqs, "t");
        let b = replay(&cfg, &reqs, "t");
        assert_eq!(a.write_latency.mean_ns(), b.write_latency.mean_ns());
        assert_eq!(a.ftl, b.ftl);
        assert_eq!(a.device, b.device);
        assert_eq!(a.wear, b.wear);
    }

    #[test]
    fn write_latency_reflects_slc_program_time() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Baseline);
        // A single isolated write: latency = transfer + SLC program.
        let reqs = vec![IoRequest::new(0, OpKind::Write, 0, 4096)];
        let report = replay(&cfg, &reqs, "one");
        let t = &cfg.device.timing;
        let expected = t.transfer_ns(4096) + t.program_ns(ipu_flash::CellMode::Slc);
        assert_eq!(report.write_latency.max_ns(), expected);
    }

    #[test]
    fn progress_callback_is_strictly_increasing_and_ends_once() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Mga);
        let reqs = tiny_workload();
        let mut calls: Vec<(u64, u64)> = Vec::new();
        replay_with_progress(&cfg, &reqs, "t", |done, total| {
            calls.push((done, total));
        });
        assert!(!calls.is_empty());
        for w in calls.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "progress not strictly increasing: {calls:?}"
            );
        }
        // Exactly one completion call, and it is the last one.
        assert_eq!(calls.last(), Some(&(35, 35)));
        assert_eq!(
            calls.iter().filter(|&&(d, _)| d == 35).count(),
            1,
            "completion must fire exactly once: {calls:?}"
        );
    }

    #[test]
    fn progress_callback_fires_once_on_empty_trace() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Baseline);
        let mut calls: Vec<(u64, u64)> = Vec::new();
        replay_with_progress(&cfg, &[], "empty", |done, total| calls.push((done, total)));
        assert_eq!(calls, vec![(0, 0)]);
    }

    #[test]
    fn busy_breakdown_accounts_all_op_classes() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Ipu);
        let reqs = tiny_workload();
        let report = replay(&cfg, &reqs, "tiny");
        assert!(report.busy.host_write_ns > 0, "writes must register");
        assert!(report.busy.host_read_ns > 0, "reads must register");
        // Utilization is a sane fraction.
        let u = report.busy.utilization(
            cfg.device.geometry.total_chips(),
            report.simulated_horizon_ns,
        );
        assert!(u > 0.0 && u <= 1.0 + 1e-9, "utilization {u} out of range");
        // Host write busy time is at least the SLC program time per write op.
        let min_write = cfg.device.timing.program_ns(ipu_flash::CellMode::Slc);
        assert!(report.busy.host_write_ns >= min_write * 30);
        // Empty horizon edge case.
        assert_eq!(BusyBreakdown::default().utilization(4, 0), 0.0);
    }

    #[test]
    fn queueing_shows_up_under_burst_arrivals() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Baseline);
        // All requests arrive at t=0 targeting the same plane → serialization.
        let burst: Vec<IoRequest> = (0..8)
            .map(|i| IoRequest::new(0, OpKind::Write, i * 65536, 4096))
            .collect();
        let spaced: Vec<IoRequest> = (0..8)
            .map(|i| IoRequest::new(i * 100_000_000, OpKind::Write, i * 65536, 4096))
            .collect();
        let r_burst = replay(&cfg, &burst, "burst");
        let r_spaced = replay(&cfg, &spaced, "spaced");
        assert!(
            r_burst.write_latency.mean_ns() > r_spaced.write_latency.mean_ns(),
            "burst {} should queue worse than spaced {}",
            r_burst.write_latency.mean_ns(),
            r_spaced.write_latency.mean_ns()
        );
    }
}

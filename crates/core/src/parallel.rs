//! Minimal scoped-thread parallel map built on `std::thread::scope`.
//!
//! Experiment sweeps (6 traces × 3 schemes × 4 P/E points) are embarrassingly
//! parallel and each job owns its whole simulated device, so a simple
//! chunk-per-worker scope is all that's needed — no work stealing, no shared
//! mutable state beyond an index counter.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, running up to `threads` jobs concurrently.
/// Results are returned in input order. Panics in workers propagate.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = jobs[i].lock().unwrap().take().expect("job taken twice");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker poisoned")
                .expect("missing result")
        })
        .collect()
}

/// Default worker count: physical parallelism minus one, at least one.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get().saturating_sub(1).max(1))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), 8, |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(vec![7], 4, |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn single_thread_path_works() {
        assert_eq!(
            parallel_map(vec![1, 2, 3], 1, |x: i32| x * x),
            vec![1, 4, 9]
        );
    }

    #[test]
    fn actually_runs_concurrently() {
        use std::sync::atomic::AtomicUsize;
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        parallel_map((0..8).collect(), 4, |_: i32| {
            let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(live, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(PEAK.load(Ordering::SeqCst) >= 2, "no concurrency observed");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn more_threads_than_items_clamps() {
        // 64 threads over 3 items: the clamp must spawn at most 3 workers
        // and every item still maps exactly once, in order.
        assert_eq!(
            parallel_map(vec![10, 20, 30], 64, |x: i32| x + 1),
            vec![11, 21, 31]
        );
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(parallel_map(vec![1, 2], 0, |x: i32| -x), vec![-1, -2]);
    }

    #[test]
    fn worker_panic_propagates_multi_thread() {
        let r = std::panic::catch_unwind(|| {
            parallel_map((0..16).collect(), 4, |x: i32| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(r.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn worker_panic_propagates_single_thread() {
        let r = std::panic::catch_unwind(|| {
            parallel_map(vec![1, 2, 3], 1, |x: i32| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn moves_non_clone_items_through() {
        // Items are moved into workers (no Clone bound): Box<i32> qualifies.
        let out = parallel_map(
            (0..10).map(Box::new).collect::<Vec<Box<i32>>>(),
            3,
            |b: Box<i32>| *b * 3,
        );
        assert_eq!(out, (0..10).map(|x| x * 3).collect::<Vec<_>>());
    }
}

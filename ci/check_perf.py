#!/usr/bin/env python3
"""Performance-regression gate: compare a fresh benchmark profile against
the committed baseline.

Usage: check_perf.py <BENCH_profile.json> <ci/bench_baseline.json>

Both files are `BenchProfile` JSON written by `ipu-sim profile` (schema v3).
The gate:

1. refuses to compare across schema versions, refuses candidate profiles
   built without optimizations (`release: false`) — debug numbers are
   meaningless — and refuses candidates whose run cells lack the schema-v3
   tail-latency fields (`p99_ns`, `p999_ns`);
2. refuses to compare different workloads — the monotonic counter fingerprint
   (requests, GC runs, device programs, ...) must match the baseline exactly,
   otherwise the two runs did not simulate the same work;
3. fails when aggregate throughput (simulated ops per wall second) drops more
   than THRESHOLD (default 25%) below the baseline;
4. fails when any per-(trace, scheme) cell drops more than THRESHOLD below
   its committed floor — every scheme holds its own win, so a regression in
   one scheme can't hide behind a speedup in another;
5. prints the per-phase wall-time comparison either way, so a regression's
   guilty phase is visible straight from the CI log.

Refreshing the baseline
-----------------------
Use ci/ratchet_baseline.py — it re-runs the gate workload, refuses to lower
any committed floor unless told why, and writes the new baseline:

    python3 ci/ratchet_baseline.py

Tuning: set PERF_GATE_THRESHOLD (a fraction, e.g. 0.25) to override the
allowed regression; CI runners with noisy neighbours may need headroom.
"""

import json
import os
import sys

DEFAULT_THRESHOLD = 0.25


def load(path):
    with open(path) as f:
        return json.load(f)


def counters_map(profile):
    return {name: value for name, value in profile["counters"]["counters"]}


def cells_map(profile):
    """(trace, scheme) → ops_per_sec for every run cell."""
    return {(r["trace"], r["scheme"]): r["ops_per_sec"] for r in profile["runs"]}


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = load(sys.argv[1])
    baseline = load(sys.argv[2])
    threshold = float(os.environ.get("PERF_GATE_THRESHOLD", DEFAULT_THRESHOLD))

    if candidate["schema_version"] != baseline["schema_version"]:
        print(
            f"FAIL: schema version {candidate['schema_version']} != baseline "
            f"{baseline['schema_version']}; refresh ci/bench_baseline.json "
            f"with ci/ratchet_baseline.py",
            file=sys.stderr,
        )
        return 1

    if not candidate.get("release", False):
        print(
            "FAIL: candidate profile was built without optimizations "
            "(release: false); run `cargo run --release -p ipu-cli -- profile ...`",
            file=sys.stderr,
        )
        return 1

    # Schema v3: every run cell must report simulated tail latency. A zero
    # p99 on a non-empty run means the field was defaulted, not measured.
    for run in candidate["runs"]:
        missing = [k for k in ("p99_ns", "p999_ns") if not run.get(k)]
        if missing:
            print(
                f"FAIL: run ({run['trace']}, {run['scheme']}) lacks "
                f"tail-latency fields {missing}; profiles predating schema "
                f"v3 are not gateable — re-run `ipu-sim profile`",
                file=sys.stderr,
            )
            return 1

    # Workload identity: the counter fingerprints must agree exactly.
    cand_counters = counters_map(candidate)
    base_counters = counters_map(baseline)
    if cand_counters != base_counters:
        drift = sorted(set(cand_counters) | set(base_counters))
        print("FAIL: workload fingerprint mismatch — runs are not comparable:",
              file=sys.stderr)
        for name in drift:
            b, c = base_counters.get(name, 0), cand_counters.get(name, 0)
            if b != c:
                print(f"  {name}: baseline {b} != candidate {c}", file=sys.stderr)
        print(
            "If the simulation intentionally changed, refresh the baseline "
            "with ci/ratchet_baseline.py.",
            file=sys.stderr,
        )
        return 1

    base_tp = baseline["sim_ops_per_sec"]
    cand_tp = candidate["sim_ops_per_sec"]
    ratio = cand_tp / base_tp if base_tp > 0 else float("inf")

    print(f"throughput: baseline {base_tp:,.0f} ops/s, candidate "
          f"{cand_tp:,.0f} ops/s ({ratio:.2%} of baseline)")

    # Per-cell floors: every (trace, scheme) holds its own committed win.
    base_cells = cells_map(baseline)
    cand_cells = cells_map(candidate)
    missing = sorted(set(base_cells) - set(cand_cells))
    if missing:
        print(f"FAIL: candidate is missing baseline cells: {missing}",
              file=sys.stderr)
        return 1
    failed_cells = []
    print(f"{'trace':<8} {'scheme':<10} {'floor(ops/s)':>13} "
          f"{'candidate':>12} {'ratio':>8}")
    for (trace, scheme), floor in sorted(base_cells.items()):
        got = cand_cells[(trace, scheme)]
        r = got / floor if floor > 0 else float("inf")
        flag = "" if r >= 1.0 - threshold else "  << FAIL"
        print(f"{trace:<8} {scheme:<10} {floor:>13,.0f} {got:>12,.0f} "
              f"{r:>7.0%}{flag}")
        if r < 1.0 - threshold:
            failed_cells.append((trace, scheme, floor, got))

    print(f"{'phase':<18} {'baseline(s)':>12} {'candidate(s)':>13} {'ratio':>7}")
    base_phases = {p["phase"]: p for p in baseline["phases"]}
    for p in candidate["phases"]:
        b = base_phases.get(p["phase"], {}).get("wall_seconds", 0.0)
        c = p["wall_seconds"]
        r = f"{c / b:.2f}x" if b > 0 else "new"
        print(f"{p['phase']:<18} {b:>12.3f} {c:>13.3f} {r:>7}")

    ok = True
    if failed_cells:
        for trace, scheme, floor, got in failed_cells:
            print(
                f"FAIL: ({trace}, {scheme}) regressed to {got:,.0f} ops/s, "
                f"{1.0 - got / floor:.1%} below its committed floor "
                f"{floor:,.0f} (allowed {threshold:.0%}).",
                file=sys.stderr,
            )
        ok = False
    if ratio < 1.0 - threshold:
        print(
            f"FAIL: aggregate throughput regressed {1.0 - ratio:.1%} "
            f"(allowed {threshold:.0%}).",
            file=sys.stderr,
        )
        ok = False
    if not ok:
        print(
            "If intentional, refresh ci/bench_baseline.json with "
            "ci/ratchet_baseline.py --allow-regression <reason>.",
            file=sys.stderr,
        )
        return 1

    print(f"perf gate OK (allowed regression {threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

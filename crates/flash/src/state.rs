//! Physical block, page and subpage state.
//!
//! A page is divided into [`MAX_SUBPAGES_PER_PAGE`] subpages (the paper uses 4).
//! Subpages move `Free → Valid → Invalid` and only an erase returns them to
//! `Free`. Each page additionally tracks how many *program operations* it has
//! received (the NOP budget — capped at 4 for SLC-mode per the Micron/Samsung
//! datasheets cited by the paper) and per-subpage disturb counters that feed the
//! error model:
//!
//! * `in_page_disturbs[s]` — how many later partial programs hit the same page
//!   *after* subpage `s` was programmed (Figure 1's "affected in-page cells");
//! * `neighbour_disturbs` — how many program operations landed on adjacent word
//!   lines of the same block while this page held programmed data.

use serde::{Deserialize, Serialize};

use crate::mode::CellMode;

/// Upper bound on subpages per page supported by the fixed-size state arrays.
pub const MAX_SUBPAGES_PER_PAGE: usize = 8;

/// Manufacturer NOP limit: maximum program operations per SLC-mode page.
pub const MAX_PARTIAL_PROGRAMS_SLC: u8 = 4;

/// State of one subpage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubpageState {
    /// Erased, never programmed since the last block erase.
    Free,
    /// Programmed and holding live data.
    Valid,
    /// Programmed but superseded; space is reclaimed only by erasing the block.
    Invalid,
}

/// State of one page: subpage states, program-op budget and disturb counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageState {
    subpages: [SubpageState; MAX_SUBPAGES_PER_PAGE],
    /// Number of subpages actually exposed by the geometry.
    subpage_count: u8,
    /// Number of program operations this page has received since erase.
    program_ops: u8,
    /// Per-subpage count of later program ops on this page (in-page disturb).
    in_page_disturbs: [u16; MAX_SUBPAGES_PER_PAGE],
    /// Count of program ops on adjacent pages while this page was programmed.
    neighbour_disturbs: u16,
}

impl PageState {
    /// A fresh (erased) page exposing `subpage_count` subpages.
    pub fn erased(subpage_count: u8) -> Self {
        assert!(
            (1..=MAX_SUBPAGES_PER_PAGE as u8).contains(&subpage_count),
            "subpage count {subpage_count} out of range"
        );
        PageState {
            subpages: [SubpageState::Free; MAX_SUBPAGES_PER_PAGE],
            subpage_count,
            program_ops: 0,
            in_page_disturbs: [0; MAX_SUBPAGES_PER_PAGE],
            neighbour_disturbs: 0,
        }
    }

    /// Number of subpages this page exposes.
    #[inline]
    pub fn subpage_count(&self) -> u8 {
        self.subpage_count
    }

    /// State of subpage `s`.
    #[inline]
    pub fn subpage(&self, s: u8) -> SubpageState {
        assert!(s < self.subpage_count, "subpage {s} out of range");
        self.subpages[s as usize]
    }

    /// Program operations received since the last erase.
    #[inline]
    pub fn program_ops(&self) -> u8 {
        self.program_ops
    }

    /// In-page disturb count accumulated by subpage `s`.
    #[inline]
    pub fn in_page_disturbs(&self, s: u8) -> u16 {
        assert!(s < self.subpage_count);
        self.in_page_disturbs[s as usize]
    }

    /// Neighbour disturb count accumulated by this page.
    #[inline]
    pub fn neighbour_disturbs(&self) -> u16 {
        self.neighbour_disturbs
    }

    /// Whether any subpage has been programmed (valid *or* invalid).
    pub fn is_programmed(&self) -> bool {
        self.iter_subpages().any(|s| s != SubpageState::Free)
    }

    /// Number of subpages in `state`.
    pub fn count(&self, state: SubpageState) -> u8 {
        self.iter_subpages().filter(|&s| s == state).count() as u8
    }

    /// Iterates the states of the exposed subpages.
    pub fn iter_subpages(&self) -> impl Iterator<Item = SubpageState> + '_ {
        self.subpages[..self.subpage_count as usize].iter().copied()
    }

    /// Lowest free subpage index such that `count` contiguous subpages starting
    /// there are all free, or `None` if no such run exists.
    ///
    /// Partial programming hardware programs a contiguous run of bit-line
    /// groups, so allocation within a page is contiguous-run based.
    pub fn find_free_run(&self, count: u8) -> Option<u8> {
        if count == 0 || count > self.subpage_count {
            return None;
        }
        'outer: for start in 0..=(self.subpage_count - count) {
            for s in start..start + count {
                if self.subpages[s as usize] != SubpageState::Free {
                    continue 'outer;
                }
            }
            return Some(start);
        }
        None
    }

    /// Records a program operation covering `[start, start+count)`.
    ///
    /// Returns the number of previously-programmed subpages in this page that
    /// this operation disturbed. Panics if the run is out of range; returns
    /// `Err` if any target subpage is not free.
    pub(crate) fn apply_program(&mut self, start: u8, count: u8) -> Result<u16, ProgramStateError> {
        assert!(
            count > 0 && start + count <= self.subpage_count,
            "program run out of range"
        );
        for s in start..start + count {
            if self.subpages[s as usize] != SubpageState::Free {
                return Err(ProgramStateError::SubpageNotFree(s));
            }
        }
        // Disturb every subpage programmed by an *earlier* operation.
        let mut disturbed = 0u16;
        if self.program_ops > 0 {
            for s in 0..self.subpage_count {
                if (s < start || s >= start + count)
                    && self.subpages[s as usize] != SubpageState::Free
                {
                    self.in_page_disturbs[s as usize] += 1;
                    disturbed += 1;
                }
            }
        }
        for s in start..start + count {
            self.subpages[s as usize] = SubpageState::Valid;
        }
        self.program_ops += 1;
        Ok(disturbed)
    }

    /// Records a program on an adjacent page; disturbs this page if programmed.
    ///
    /// Returns the number of programmed subpages that were disturbed.
    pub(crate) fn apply_neighbour_disturb(&mut self) -> u16 {
        if self.is_programmed() {
            self.neighbour_disturbs += 1;
            self.iter_subpages()
                .filter(|&s| s != SubpageState::Free)
                .count() as u16
        } else {
            0
        }
    }

    /// Marks a valid subpage invalid (logical overwrite / trim).
    pub(crate) fn invalidate(&mut self, s: u8) -> Result<(), ProgramStateError> {
        assert!(s < self.subpage_count);
        let cur = self.subpages[s as usize];
        if cur != SubpageState::Valid {
            return Err(ProgramStateError::NotValid(s, cur));
        }
        self.subpages[s as usize] = SubpageState::Invalid;
        Ok(())
    }
}

/// Errors from page-level state transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramStateError {
    /// Attempted to program a subpage that is not free.
    SubpageNotFree(u8),
    /// Attempted to invalidate a subpage that is not valid.
    NotValid(u8, SubpageState),
}

impl std::fmt::Display for ProgramStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramStateError::SubpageNotFree(s) => {
                write!(f, "subpage {s} is not free")
            }
            ProgramStateError::NotValid(s, st) => {
                write!(f, "subpage {s} is {st:?}, expected Valid")
            }
        }
    }
}

impl std::error::Error for ProgramStateError {}

/// State of one block: its mode, page states and erase count.
///
/// Validity totals (`valid_subpages`, `invalid_subpages`,
/// `fully_invalid_pages`) are cached and maintained by the block-level
/// transition methods so GC victim scoring reads them in O(1) instead of
/// rescanning every page. All state transitions must therefore go through
/// the crate-internal `apply_program_at` / `invalidate_at` / `erase`
/// methods; `page_mut` exists only for transitions that do not
/// change subpage validity (disturb accounting).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockState {
    mode: CellMode,
    pages: Vec<PageState>,
    erase_count: u32,
    /// Program operations applied to this block since the last erase.
    programs_since_erase: u32,
    /// Read operations served by this block since the last erase (feeds the
    /// optional read-disturb model).
    reads_since_erase: u64,
    /// Cached count of `Valid` subpages across all pages.
    valid_subpages: u32,
    /// Cached count of `Invalid` subpages across all pages.
    invalid_subpages: u32,
    /// Cached count of pages that are programmed but hold no valid subpage
    /// (the page-granularity greedy GC score).
    fully_invalid_pages: u32,
}

impl BlockState {
    /// A freshly-erased block in `mode` with `pages` pages of `subpages` each.
    pub fn erased(mode: CellMode, pages: u32, subpages: u8) -> Self {
        BlockState {
            mode,
            pages: (0..pages).map(|_| PageState::erased(subpages)).collect(),
            erase_count: 0,
            programs_since_erase: 0,
            reads_since_erase: 0,
            valid_subpages: 0,
            invalid_subpages: 0,
            fully_invalid_pages: 0,
        }
    }

    /// Current cell mode.
    #[inline]
    pub fn mode(&self) -> CellMode {
        self.mode
    }

    /// Number of pages exposed in the current mode.
    #[inline]
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// P/E cycles this block has consumed.
    #[inline]
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Program operations since the last erase (feeds utilization metrics).
    #[inline]
    pub fn programs_since_erase(&self) -> u32 {
        self.programs_since_erase
    }

    /// Immutable page state access.
    #[inline]
    pub fn page(&self, page: u32) -> &PageState {
        &self.pages[page as usize]
    }

    /// Mutable page access for validity-neutral transitions (disturb
    /// accounting). Validity transitions must use `apply_program_at` /
    /// `invalidate_at` so the cached block totals stay correct.
    pub(crate) fn page_mut(&mut self, page: u32) -> &mut PageState {
        &mut self.pages[page as usize]
    }

    /// Programs `[start, start+count)` of `page`, maintaining the cached
    /// validity totals. Returns the in-page disturb count.
    pub(crate) fn apply_program_at(
        &mut self,
        page: u32,
        start: u8,
        count: u8,
    ) -> Result<u16, ProgramStateError> {
        let p = &mut self.pages[page as usize];
        let was_dead = p.is_programmed() && p.count(SubpageState::Valid) == 0;
        let disturbed = p.apply_program(start, count)?;
        self.valid_subpages += count as u32;
        if was_dead {
            self.fully_invalid_pages -= 1;
        }
        Ok(disturbed)
    }

    /// Invalidates subpage `s` of `page`, maintaining the cached totals.
    pub(crate) fn invalidate_at(&mut self, page: u32, s: u8) -> Result<(), ProgramStateError> {
        let p = &mut self.pages[page as usize];
        p.invalidate(s)?;
        self.valid_subpages -= 1;
        self.invalid_subpages += 1;
        if p.count(SubpageState::Valid) == 0 {
            self.fully_invalid_pages += 1;
        }
        Ok(())
    }

    pub(crate) fn note_program(&mut self) {
        self.programs_since_erase += 1;
    }

    pub(crate) fn note_read(&mut self) {
        self.reads_since_erase += 1;
    }

    /// Reads served since the last erase (read-disturb accumulation).
    #[inline]
    pub fn reads_since_erase(&self) -> u64 {
        self.reads_since_erase
    }

    /// Erases the block, optionally switching mode, re-shaping the page array.
    pub(crate) fn erase(&mut self, new_mode: CellMode, pages: u32, subpages: u8) {
        self.mode = new_mode;
        self.pages.clear();
        self.pages
            .extend((0..pages).map(|_| PageState::erased(subpages)));
        self.erase_count += 1;
        self.programs_since_erase = 0;
        self.reads_since_erase = 0;
        self.valid_subpages = 0;
        self.invalid_subpages = 0;
        self.fully_invalid_pages = 0;
    }

    /// Total subpages across all pages. O(1): all pages share one geometry.
    pub fn total_subpages(&self) -> u32 {
        self.pages.len() as u32
            * self
                .pages
                .first()
                .map(|p| p.subpage_count() as u32)
                .unwrap_or(0)
    }

    /// Subpages currently in `state` across all pages. O(1) from the cached
    /// block totals.
    pub fn count_subpages(&self, state: SubpageState) -> u32 {
        match state {
            SubpageState::Valid => self.valid_subpages,
            SubpageState::Invalid => self.invalid_subpages,
            SubpageState::Free => {
                self.total_subpages() - self.valid_subpages - self.invalid_subpages
            }
        }
    }

    /// Pages that are programmed but hold no valid data (O(1), cached).
    #[inline]
    pub fn fully_invalid_pages(&self) -> u32 {
        self.fully_invalid_pages
    }

    /// Whether every page is fully free (freshly erased, never programmed).
    pub fn is_pristine(&self) -> bool {
        self.valid_subpages == 0 && self.invalid_subpages == 0
    }

    /// Recomputes the cached validity totals from page state and compares;
    /// used by the FTL's invariant checker (tests / debug sweeps only).
    pub fn counters_consistent(&self) -> bool {
        let valid: u32 = self
            .pages
            .iter()
            .map(|p| p.count(SubpageState::Valid) as u32)
            .sum();
        let invalid: u32 = self
            .pages
            .iter()
            .map(|p| p.count(SubpageState::Invalid) as u32)
            .sum();
        let dead = self
            .pages
            .iter()
            .filter(|p| p.is_programmed() && p.count(SubpageState::Valid) == 0)
            .count() as u32;
        valid == self.valid_subpages
            && invalid == self.invalid_subpages
            && dead == self.fully_invalid_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page4() -> PageState {
        PageState::erased(4)
    }

    #[test]
    fn fresh_page_is_all_free() {
        let p = page4();
        assert_eq!(p.count(SubpageState::Free), 4);
        assert_eq!(p.program_ops(), 0);
        assert!(!p.is_programmed());
    }

    #[test]
    fn first_program_disturbs_nothing_in_page() {
        let mut p = page4();
        let disturbed = p.apply_program(0, 2).unwrap();
        assert_eq!(disturbed, 0);
        assert_eq!(p.count(SubpageState::Valid), 2);
        assert_eq!(p.program_ops(), 1);
    }

    #[test]
    fn partial_program_disturbs_earlier_data() {
        let mut p = page4();
        p.apply_program(0, 2).unwrap();
        let disturbed = p.apply_program(2, 1).unwrap();
        assert_eq!(disturbed, 2);
        assert_eq!(p.in_page_disturbs(0), 1);
        assert_eq!(p.in_page_disturbs(1), 1);
        assert_eq!(p.in_page_disturbs(2), 0);
        // A third program disturbs all three earlier subpages, valid or not.
        p.invalidate(0).unwrap();
        let disturbed = p.apply_program(3, 1).unwrap();
        assert_eq!(disturbed, 3);
        assert_eq!(p.in_page_disturbs(0), 2);
    }

    #[test]
    fn cannot_program_occupied_subpage() {
        let mut p = page4();
        p.apply_program(1, 1).unwrap();
        assert_eq!(
            p.apply_program(1, 1),
            Err(ProgramStateError::SubpageNotFree(1))
        );
        // State unchanged by the failed attempt.
        assert_eq!(p.program_ops(), 1);
    }

    #[test]
    fn find_free_run_respects_contiguity() {
        let mut p = page4();
        p.apply_program(1, 1).unwrap(); // occupy subpage 1 → free: [0], [2,3]
        assert_eq!(p.find_free_run(1), Some(0));
        assert_eq!(p.find_free_run(2), Some(2));
        assert_eq!(p.find_free_run(3), None);
        assert_eq!(p.find_free_run(0), None);
        assert_eq!(p.find_free_run(5), None);
    }

    #[test]
    fn invalidate_requires_valid() {
        let mut p = page4();
        assert!(p.invalidate(0).is_err());
        p.apply_program(0, 1).unwrap();
        p.invalidate(0).unwrap();
        assert!(p.invalidate(0).is_err());
        assert_eq!(p.count(SubpageState::Invalid), 1);
    }

    #[test]
    fn neighbour_disturb_only_hits_programmed_pages() {
        let mut p = page4();
        assert_eq!(p.apply_neighbour_disturb(), 0);
        assert_eq!(p.neighbour_disturbs(), 0);
        p.apply_program(0, 3).unwrap();
        assert_eq!(p.apply_neighbour_disturb(), 3);
        assert_eq!(p.neighbour_disturbs(), 1);
    }

    #[test]
    fn block_erase_switches_mode_and_resets() {
        let mut b = BlockState::erased(CellMode::Slc, 4, 4);
        b.apply_program_at(0, 0, 4).unwrap();
        b.note_program();
        assert_eq!(b.count_subpages(SubpageState::Valid), 4);
        assert!(!b.is_pristine());
        assert!(b.counters_consistent());

        b.erase(CellMode::Mlc, 8, 4);
        assert_eq!(b.mode(), CellMode::Mlc);
        assert_eq!(b.page_count(), 8);
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.programs_since_erase(), 0);
        assert!(b.is_pristine());
        assert_eq!(b.total_subpages(), 32);
    }

    #[test]
    fn subpage_accounting_is_conserved() {
        let mut b = BlockState::erased(CellMode::Slc, 2, 4);
        b.apply_program_at(0, 0, 2).unwrap();
        b.apply_program_at(0, 2, 1).unwrap();
        b.invalidate_at(0, 1).unwrap();
        b.apply_program_at(1, 0, 4).unwrap();
        let total = b.total_subpages();
        let sum = b.count_subpages(SubpageState::Free)
            + b.count_subpages(SubpageState::Valid)
            + b.count_subpages(SubpageState::Invalid);
        assert_eq!(total, sum);
        assert_eq!(b.count_subpages(SubpageState::Invalid), 1);
        assert_eq!(b.count_subpages(SubpageState::Valid), 6);
        assert!(b.counters_consistent());
    }

    #[test]
    fn fully_invalid_pages_tracks_dead_pages() {
        let mut b = BlockState::erased(CellMode::Slc, 2, 4);
        b.apply_program_at(0, 0, 2).unwrap();
        assert_eq!(b.fully_invalid_pages(), 0);
        b.invalidate_at(0, 0).unwrap();
        b.invalidate_at(0, 1).unwrap();
        assert_eq!(b.fully_invalid_pages(), 1);
        // Re-programming remaining free space revives the page.
        b.apply_program_at(0, 2, 1).unwrap();
        assert_eq!(b.fully_invalid_pages(), 0);
        assert!(b.counters_consistent());
        b.erase(CellMode::Slc, 2, 4);
        assert_eq!(b.fully_invalid_pages(), 0);
        assert!(b.is_pristine());
    }
}

//! SLO capacity search: the largest tenant count a fleet sustains at a
//! target p99.
//!
//! The p99-vs-tenants landscape is not monotonic at the low end: few
//! tenants concentrate the whole workload on few devices (worst per-device
//! load), while many tenants multiply the queue pairs competing on each
//! device. The search therefore probes the full exponential ladder
//! (1, 2, 4, …, cap) without aborting on a failure, then binary-searches
//! between the largest passing and the smallest failing count above it.
//! Every probe is a full fleet run, so probes route through
//! [`run_fleet_cached`] — a warm search replays nothing.

use crate::report::{CapacityProbe, CapacityResult, FleetReport};
use crate::run::{run_fleet_cached, FleetSpec};
use ipu_core::{ExperimentConfig, ReplayCache, TraceSet};
use ipu_ftl::SchemeKind;
use ipu_trace::PaperTrace;

/// Outcome of the generic search: the largest passing tenant count, the
/// probes taken, and the fleet report at capacity.
struct SearchOutcome {
    max_tenants: u64,
    probes: Vec<CapacityProbe>,
    at_capacity: Option<FleetReport>,
}

/// Bracket-then-bisect over `probe`, which runs the fleet at a tenant count
/// and returns its report. Generic over the probe so the search logic is
/// testable without simulating anything.
fn search(
    slo_p99_ns: u64,
    tenant_cap: u64,
    mut probe: impl FnMut(u64) -> FleetReport,
) -> SearchOutcome {
    assert!(tenant_cap >= 1, "tenant cap must be ≥ 1");
    let mut probes = Vec::new();
    let mut best: Option<(u64, FleetReport)> = None;
    let mut check = |tenants: u64, probes: &mut Vec<CapacityProbe>| -> bool {
        let report = probe(tenants);
        let met = report.p99_ns < slo_p99_ns;
        probes.push(CapacityProbe {
            tenants,
            p99_ns: report.p99_ns,
            met_slo: met,
        });
        if met && best.as_ref().is_none_or(|(t, _)| tenants > *t) {
            best = Some((tenants, report));
        }
        met
    };

    // The full exponential ladder, 1, 2, 4, …, cap. A failure does NOT stop
    // the climb: few tenants concentrate the workload (hash places one
    // tenant on one device), so the low end can fail while larger counts
    // pass. `lo` tracks the largest passing count, `hi` the first failure
    // above it.
    let mut lo = 0u64; // largest count known to pass (0 = none yet)
    let mut hi = None; // smallest failing count above `lo`
    let mut t = 1u64;
    loop {
        if check(t, &mut probes) {
            lo = t;
            hi = None; // failures below a passing count are irrelevant
        } else if hi.is_none() {
            hi = Some(t);
        }
        if t >= tenant_cap {
            break;
        }
        t = (t * 2).min(tenant_cap);
    }

    // Bisect (lo passes, hi fails) down to adjacent counts. With no passing
    // ladder point there is no bracket to refine: the fleet serves 0 tenants
    // at this SLO as far as logarithmic probing can tell.
    if let Some(mut hi) = hi {
        while lo > 0 && hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if check(mid, &mut probes) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }

    let (max_tenants, at_capacity) = match best {
        Some((t, report)) => (t, Some(report)),
        None => (0, None),
    };
    SearchOutcome {
        max_tenants,
        probes,
        at_capacity,
    }
}

/// What a capacity search is looking for: the p99 SLO every probe is held
/// to and the ceiling on the tenant count.
#[derive(Clone, Copy, Debug)]
pub struct SloTarget {
    /// A probe meets the SLO iff its pooled fleet p99 is strictly below this.
    pub p99_ns: u64,
    /// Upper bound on the searched tenant count (the ladder clamps to it).
    pub tenant_cap: u64,
}

/// Searches the max tenant count for one trace × scheme under the fleet
/// shape in `proto` (its `tenants` field is the search variable and is
/// ignored). Probes go through the cache when one is supplied.
pub fn run_capacity_search(
    cfg: &ExperimentConfig,
    trace: PaperTrace,
    scheme: SchemeKind,
    proto: &FleetSpec,
    target: SloTarget,
    traces: &TraceSet,
    cache: Option<&ReplayCache>,
) -> CapacityResult {
    let SloTarget {
        p99_ns: slo_p99_ns,
        tenant_cap,
    } = target;
    let outcome = search(slo_p99_ns, tenant_cap, |tenants| {
        let mut spec = proto.clone();
        spec.tenants = tenants as usize;
        run_fleet_cached(cfg, scheme, trace, &spec, traces, cache)
    });
    CapacityResult {
        scheme: scheme.label().to_string(),
        trace: trace.to_string(),
        policy: proto.policy.label().to_string(),
        slo_p99_ns,
        tenant_cap,
        max_tenants: outcome.max_tenants,
        probes: outcome.probes,
        at_capacity: outcome.at_capacity,
    }
}

/// Degraded-mode capacity: [`run_capacity_search`] with `k` devices
/// fail-stopped at `at_frac` of the run (never both halves of a mirror
/// pair) under `replication` — the second number of the graceful-
/// degradation pair. The fault plan derives deterministically from the
/// proto's fault-plan seed, so healthy and degraded searches share every
/// other knob and their difference is attributable to the faults alone.
#[allow(clippy::too_many_arguments)]
pub fn run_degraded_capacity_search(
    cfg: &ExperimentConfig,
    trace: PaperTrace,
    scheme: SchemeKind,
    proto: &FleetSpec,
    target: SloTarget,
    k: usize,
    at_frac: f64,
    replication: crate::router::ReplicationPolicy,
    traces: &TraceSet,
    cache: Option<&ReplayCache>,
) -> CapacityResult {
    let plan =
        crate::fault::FleetFaultPlan::fail_stop(proto.devices, k, at_frac, proto.fault_plan.seed);
    let degraded = proto
        .clone()
        .with_fault_plan(plan)
        .with_replication(replication);
    run_capacity_search(cfg, trace, scheme, &degraded, target, traces, cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::ShardPolicy;
    use ipu_sim::ClosedLoopReport;

    /// A fleet report whose p99 is a pure function of the tenant count:
    /// `p99_ns = tenants × slope`.
    fn fake_report(tenants: u64, slope: u64) -> FleetReport {
        let empty: [Option<ClosedLoopReport>; 0] = [];
        let mut r =
            FleetReport::merge("ipu", "ts0", ShardPolicy::Hash, tenants as usize, 1, &empty);
        r.p99_ns = tenants * slope;
        r
    }

    #[test]
    fn search_finds_the_exact_boundary() {
        // SLO 1000 ns, slope 10: 99 tenants pass (990 < 1000), 100 fails.
        for cap in [100u64, 128, 1000, 65_536] {
            let mut calls = 0u64;
            let out = search(1_000, cap, |t| {
                calls += 1;
                fake_report(t, 10)
            });
            assert_eq!(out.max_tenants, 99, "cap {cap}");
            assert_eq!(out.at_capacity.as_ref().unwrap().p99_ns, 990);
            // Bracket + bisect: logarithmic, never anywhere near the cap.
            assert!(calls <= 2 * 64, "cap {cap}: {calls} probes");
            // The failing boundary probe is recorded.
            assert!(out.probes.iter().any(|p| p.tenants == 100 && !p.met_slo));
        }
    }

    #[test]
    fn search_saturates_at_the_cap_when_everything_passes() {
        let out = search(u64::MAX, 300, |t| fake_report(t, 1));
        assert_eq!(out.max_tenants, 300);
        assert_eq!(out.at_capacity.unwrap().tenants, 300);
        assert!(out.probes.iter().all(|p| p.met_slo));
        // Exponential probes clamped to the cap: 1,2,4,…,256,300.
        assert_eq!(out.probes.last().unwrap().tenants, 300);
    }

    #[test]
    fn search_reports_zero_when_every_ladder_point_misses() {
        let out = search(5, 1_000, |t| fake_report(t, 10));
        assert_eq!(out.max_tenants, 0);
        assert!(out.at_capacity.is_none());
        // The whole ladder was probed (1, 2, …, 512, 1000), all failing.
        assert_eq!(out.probes.len(), 11);
        assert!(out.probes.iter().all(|p| !p.met_slo));
    }

    #[test]
    fn search_handles_cap_of_one() {
        let out = search(1_000, 1, |t| fake_report(t, 10));
        assert_eq!(out.max_tenants, 1);
        assert_eq!(out.probes.len(), 1);
    }

    #[test]
    fn an_interior_dip_does_not_hide_the_larger_passing_counts() {
        // t = 8 fails but everything else under 100 passes: the ladder keeps
        // climbing past the dip and finds the cap still passing.
        let out = search(1_000, 64, |t| {
            let p99 = if t == 8 { 2_000 } else { t * 10 };
            let mut r = fake_report(t, 10);
            r.p99_ns = p99;
            r
        });
        assert_eq!(out.max_tenants, 64);
        assert!(out.probes.iter().all(|p| p.met_slo == (p.p99_ns < 1_000)));
    }

    #[test]
    fn low_end_failures_do_not_zero_the_search() {
        // Few tenants concentrate load (fails); the mid range passes; the
        // high end fails again. The search must find the upper boundary,
        // not report 0 because t = 1 failed.
        let passes = |t: u64| (4..=50).contains(&t);
        let out = search(1_000, 1_024, |t| {
            let mut r = fake_report(t, 1);
            r.p99_ns = if passes(t) { 500 } else { 5_000 };
            r
        });
        assert_eq!(out.max_tenants, 50);
        assert_eq!(out.at_capacity.as_ref().unwrap().p99_ns, 500);
        // Logarithmic probe count even with the non-monotone landscape.
        assert!(out.probes.len() <= 32, "{} probes", out.probes.len());
    }
}

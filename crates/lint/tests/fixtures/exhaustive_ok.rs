//! Fixture: growth-enum matches that stay exhaustive or bind with intent —
//! named variants, a named binding, and a non-growth match where `_` is fine.

pub fn route(kind: FlashOpKind) -> u32 {
    match kind {
        FlashOpKind::HostRead | FlashOpKind::UnmappedRead => 1,
        FlashOpKind::HostProgram => 2,
        FlashOpKind::GcRead | FlashOpKind::GcProgram | FlashOpKind::Erase => 0,
    }
}

pub fn bind_by_name(kind: FlashOpKind) -> u32 {
    match kind {
        FlashOpKind::HostRead => 1,
        other => other as u32,
    }
}

pub fn non_growth_enum(flag: bool) -> u32 {
    match flag {
        true => 1,
        _ => 0,
    }
}

//! Simulation time base.
//!
//! All latencies and timestamps are integer nanoseconds (`Nanos`). Integer time
//! keeps event ordering exact and simulation results reproducible; the paper's
//! Table 2 gives latencies in milliseconds, converted with [`ms_to_ns`].

/// Simulated time or duration, in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// Converts a millisecond figure (as printed in the paper's Table 2) to [`Nanos`].
///
/// Rounds to the nearest nanosecond; panics in debug builds on negative input.
#[inline]
pub fn ms_to_ns(ms: f64) -> Nanos {
    debug_assert!(ms >= 0.0, "latencies must be non-negative, got {ms}");
    (ms * MILLISECOND as f64).round() as Nanos
}

/// Converts [`Nanos`] back to fractional milliseconds for reporting.
#[inline]
pub fn ns_to_ms(ns: Nanos) -> f64 {
    ns as f64 / MILLISECOND as f64
}

/// Converts [`Nanos`] to fractional microseconds for reporting.
#[inline]
pub fn ns_to_us(ns: Nanos) -> f64 {
    ns as f64 / MICROSECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_round_trips_table2_values() {
        // Every latency in the paper's Table 2 must survive the conversion.
        for &ms in &[0.025, 0.05, 0.0005, 0.0968, 0.3, 0.9, 10.0] {
            let ns = ms_to_ns(ms);
            assert!((ns_to_ms(ns) - ms).abs() < 1e-9, "{ms} ms mangled");
        }
    }

    #[test]
    fn sub_nanosecond_values_round() {
        assert_eq!(ms_to_ns(0.0000004), 0); // 0.4 ns rounds down
        assert_eq!(ms_to_ns(0.0000006), 1); // 0.6 ns rounds up
    }

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(ms_to_ns(1.0), MILLISECOND);
        assert_eq!(ms_to_ns(1000.0), SECOND);
        assert_eq!(MILLISECOND / MICROSECOND, 1_000);
    }

    #[test]
    fn ns_to_us_scales() {
        assert!((ns_to_us(2_500) - 2.5).abs() < 1e-12);
    }
}

//! `cargo bench -p ipu-bench --bench fig10b_mlc_pressure`
//!
//! Figure 10(b) — erase counts in the *MLC* region — needs the MLC region to
//! actually reach its GC threshold. Under the paper's stated configuration
//! (128 GiB device vs ≤20 GiB workload footprint) that never happens, so the
//! main matrix reports zero MLC erases for every scheme (see EXPERIMENTS.md).
//!
//! This bench reconstructs the panel's *intent* by shrinking the MLC region
//! to ≈1.2× the eviction volume while keeping the SLC cache at its normal
//! (scaled) size: evicted data now churns the MLC region through GC, and the
//! scheme that ejects the least data to MLC erases the least there — the
//! paper's claim that IPU preserves high-density-block endurance.

use ipu_core::experiment;
use ipu_core::report::TextTable;

fn main() {
    let mut cfg = ipu_bench::bench_config();

    // Keep the SLC cache at its normal scaled size but give each plane only a
    // small MLC complement: the region saturates and MLC GC engages.
    let scale = cfg.scale;
    let slc_per_plane = ((51.2 * scale).ceil() as u32).max(1);
    let mlc_per_plane = ((16.0 * scale).ceil() as u32).max(4);
    cfg.device.geometry.blocks_per_plane = slc_per_plane + mlc_per_plane;
    cfg.ftl.slc_ratio = slc_per_plane as f64 / (slc_per_plane + mlc_per_plane) as f64;

    eprintln!(
        "[fig10b] per plane: {slc_per_plane} SLC + {mlc_per_plane} MLC blocks \
         (MLC region ≈ {:.1} GiB)",
        mlc_per_plane as u64 as f64 * cfg.device.geometry.total_planes() as f64 * 2.0 / 1024.0
    );

    let mut table = TextTable::new(&[
        "Trace",
        "Scheme",
        "MLC erases",
        "SLC erases",
        "evicted subpages",
        "overall(ms)",
    ]);
    for &trace in &cfg.traces {
        for &scheme in &cfg.schemes {
            let r = experiment::run_one(&cfg, trace, scheme);
            table.row(vec![
                trace.name().to_string(),
                scheme.label().to_string(),
                r.wear.mlc_erases.to_string(),
                r.wear.slc_erases.to_string(),
                r.ftl.gc_evicted_subpages.to_string(),
                format!("{:.4}", r.overall_latency.mean_ms()),
            ]);
        }
    }
    println!("Figure 10(b) — erase counts in MLC blocks under a pressured MLC region");
    println!("{}", table.render());
    println!("Paper's claim: IPU yields the fewest MLC erases (it ejects the least data).");
}

//! Shared infrastructure for the per-figure benchmark harnesses.
//!
//! Figures 5–11 are all views over the same trace × scheme evaluation matrix,
//! and Figures 13/14 share one P/E sweep. To keep `cargo bench` from
//! re-simulating the world for every figure, results are cached as JSON under
//! `target/ipu-bench-cache/`, keyed by the experiment configuration; any
//! config change (scale, thresholds, …) invalidates the cache automatically.
//!
//! Environment knobs:
//!
//! * `IPU_BENCH_SCALE` — fraction of the published request counts (and,
//!   proportionally, of the device) to run; default 0.25.
//! * `IPU_BENCH_THREADS` — worker threads for the sweep (default: cores − 1).
//! * `IPU_BENCH_REFRESH=1` — ignore and overwrite the cache.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

use ipu_core::trace::PaperTrace;
use ipu_core::{
    experiment, run_qd_sweep, ExperimentConfig, ExperimentRecord, MatrixResult, PeSweepResult,
    QdSweepHostSpec, QdSweepResult,
};

/// Default fraction of the paper-scale run used by benches.
pub const DEFAULT_BENCH_SCALE: f64 = 0.25;

/// Experiment configuration for bench runs, honouring the env knobs.
pub fn bench_config() -> ExperimentConfig {
    ExperimentConfig::from_env(DEFAULT_BENCH_SCALE)
}

/// Directory for cached results.
pub fn cache_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("ipu-bench-cache")
}

fn refresh_requested() -> bool {
    std::env::var("IPU_BENCH_REFRESH")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Runs (or loads) the main evaluation matrix for `cfg`.
pub fn main_matrix_cached(cfg: &ExperimentConfig) -> MatrixResult {
    let path = cache_dir().join(format!(
        "main_matrix_s{}_pe{}.json",
        cfg.scale, cfg.device.initial_pe_cycles
    ));
    if !refresh_requested() {
        if let Ok(rec) = ExperimentRecord::<MatrixResult>::load(&path) {
            if &rec.config == cfg {
                eprintln!("[ipu-bench] loaded cached matrix from {}", path.display());
                return rec.result;
            }
        }
    }
    eprintln!(
        "[ipu-bench] running {}×{} matrix at scale {} (set IPU_BENCH_SCALE to change)...",
        cfg.traces.len(),
        cfg.schemes.len(),
        cfg.scale
    );
    let started = Instant::now();
    let result = experiment::run_main_matrix(cfg);
    eprintln!("[ipu-bench] matrix done in {:.1?}", started.elapsed());
    let rec = ExperimentRecord::new("main_matrix", cfg.clone(), result);
    if let Err(e) = rec.save(&path) {
        eprintln!("[ipu-bench] warning: could not cache results: {e}");
    }
    rec.result
}

/// Runs (or loads) the §4.5 P/E sweep for `cfg`.
pub fn pe_sweep_cached(cfg: &ExperimentConfig, points: &[u32]) -> PeSweepResult {
    let path = cache_dir().join(format!("pe_sweep_s{}.json", cfg.scale));
    if !refresh_requested() {
        if let Ok(rec) = ExperimentRecord::<PeSweepResult>::load(&path) {
            if &rec.config == cfg && rec.result.pe_points == points {
                eprintln!(
                    "[ipu-bench] loaded cached P/E sweep from {}",
                    path.display()
                );
                return rec.result;
            }
        }
    }
    eprintln!(
        "[ipu-bench] running P/E sweep over {points:?} at scale {} ...",
        cfg.scale
    );
    let started = Instant::now();
    let result = experiment::run_pe_sweep(cfg, points);
    eprintln!("[ipu-bench] sweep done in {:.1?}", started.elapsed());
    let rec = ExperimentRecord::new("pe_sweep", cfg.clone(), result);
    if let Err(e) = rec.save(&path) {
        eprintln!("[ipu-bench] warning: could not cache results: {e}");
    }
    rec.result
}

/// Runs (or loads) the closed-loop host-interface QD sweep for `cfg`.
pub fn qd_sweep_cached(
    cfg: &ExperimentConfig,
    trace: PaperTrace,
    host: &QdSweepHostSpec,
    qd_points: &[usize],
) -> QdSweepResult {
    let path = cache_dir().join(format!(
        "qd_sweep_{}_s{}_{}t_{}.json",
        trace.name(),
        cfg.scale,
        host.tenants.len(),
        host.arbitration.label()
    ));
    if !refresh_requested() {
        if let Ok(rec) = ExperimentRecord::<QdSweepResult>::load(&path) {
            let same_points = rec
                .result
                .qd_points
                .iter()
                .map(|&q| q as usize)
                .eq(qd_points.iter().copied());
            if &rec.config == cfg && &rec.result.host == host && same_points {
                eprintln!("[ipu-bench] loaded cached QD sweep from {}", path.display());
                return rec.result;
            }
        }
    }
    eprintln!(
        "[ipu-bench] running QD sweep over {qd_points:?} on {} at scale {} ...",
        trace.name(),
        cfg.scale
    );
    let started = Instant::now();
    let result = run_qd_sweep(cfg, trace, host, qd_points);
    eprintln!("[ipu-bench] QD sweep done in {:.1?}", started.elapsed());
    let rec = ExperimentRecord::new("qd_sweep", cfg.clone(), result);
    if let Err(e) = rec.save(&path) {
        eprintln!("[ipu-bench] warning: could not cache results: {e}");
    }
    rec.result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_valid() {
        bench_config().validate().unwrap();
    }

    #[test]
    fn cache_round_trips_a_tiny_matrix() {
        let mut cfg = ExperimentConfig::scaled(0.001);
        cfg.traces = vec![ipu_core::trace::PaperTrace::Lun2];
        cfg.threads = 1;
        // First call computes and caches; second call must load identically.
        let dir = cache_dir();
        let a = main_matrix_cached(&cfg);
        let b = main_matrix_cached(&cfg);
        assert_eq!(a.traces, b.traces);
        assert_eq!(
            a.report(0, 0).overall_latency.count(),
            b.report(0, 0).overall_latency.count()
        );
        assert!(dir.exists());
    }
}

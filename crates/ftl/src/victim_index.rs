//! Bucketed priority index over SLC GC candidates.
//!
//! Every scheme's SLC garbage collector used to pick its victim with a linear
//! scan over all in-use cache blocks, recomputing each block's score from
//! scratch. [`VictimIndex`] replaces those scans: the greedy score (invalid
//! subpage count) is cached per member and bucketed, so selection scans the
//! highest non-empty bucket, and score updates are O(1) slot-map moves driven
//! by the same events the FTL already handles (block open, subpage
//! invalidate, block close).
//!
//! The index reproduces the retired linear scan *exactly*: the winner is the
//! member with the highest score, ties broken toward the smallest
//! `opened_seq` (FIFO), which is precisely `max_by` over
//! `(score, Reverse(seq))` as [`crate::gc::select_greedy`] computes it.
//! Buckets are unordered internally — selection takes the minimum
//! `(opened_seq, block index)` over the bucket's eligible entries, which is
//! the same winner an ordered walk would return. Equivalence is pinned by
//! property tests against the retained oracle.
//!
//! ISR selection shares the index's membership set (all in-use SLC blocks,
//! ordered by block index) but scores candidates with the incremental ISR
//! evaluator, pruning via [`crate::gc::isr_upper_bound`].

/// Per-member record: cached score, open order, and the member's position in
/// its score bucket (for O(1) swap-removal).
#[derive(Debug, Clone, Copy)]
struct Member {
    score: u32,
    seq: u64,
    pos: u32,
}

/// Priority index over in-use SLC blocks, keyed by cached greedy score.
#[derive(Debug, Clone, Default)]
pub struct VictimIndex {
    /// Dense block index → membership record (`None` = not indexed).
    members: Vec<Option<Member>>,
    /// score → unordered `(opened_seq, block index)` entries at that score.
    buckets: Vec<Vec<(u64, u64)>>,
    len: usize,
}

impl VictimIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed blocks.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `block_idx` is indexed.
    pub fn contains(&self, block_idx: u64) -> bool {
        self.members
            .get(block_idx as usize)
            .is_some_and(|m| m.is_some())
    }

    /// Drops all members (power-loss rebuild). Keeps allocated capacity.
    pub fn clear(&mut self) {
        self.members.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }

    /// Detaches `block_idx` from its bucket, patching the swapped entry's
    /// back-pointer, and returns its record.
    fn detach(&mut self, block_idx: u64) -> Option<Member> {
        let m = self.members.get_mut(block_idx as usize)?.take()?;
        let bucket = &mut self.buckets[m.score as usize];
        bucket.swap_remove(m.pos as usize);
        if let Some(&(_, moved)) = bucket.get(m.pos as usize) {
            if let Some(Some(mm)) = self.members.get_mut(moved as usize) {
                mm.pos = m.pos;
            }
        }
        Some(m)
    }

    /// Appends an entry to the `score` bucket and records its position.
    fn attach(&mut self, block_idx: u64, seq: u64, score: u32) {
        let need = score as usize + 1;
        if self.buckets.len() < need {
            self.buckets.resize_with(need, Vec::new);
        }
        let bucket = &mut self.buckets[score as usize];
        let pos = bucket.len() as u32;
        bucket.push((seq, block_idx));
        if self.members.len() <= block_idx as usize {
            self.members.resize(block_idx as usize + 1, None);
        }
        self.members[block_idx as usize] = Some(Member { score, seq, pos });
    }

    /// Adds a block with its current score (0 for a freshly-opened block).
    pub fn insert(&mut self, block_idx: u64, opened_seq: u64, score: u32) {
        debug_assert!(!self.contains(block_idx), "block {block_idx} indexed twice");
        self.attach(block_idx, opened_seq, score);
        self.len += 1;
    }

    /// Removes a block (erased, retired, or reclaimed). No-op if absent.
    pub fn remove(&mut self, block_idx: u64) {
        if self.detach(block_idx).is_some() {
            self.len -= 1;
        }
    }

    /// Bumps a member's score by one invalidated subpage. No-op for
    /// non-members (e.g. invalidates landing in the MLC region).
    pub fn note_invalidated(&mut self, block_idx: u64) {
        if let Some(m) = self.detach(block_idx) {
            self.attach(block_idx, m.seq, m.score + 1);
        }
    }

    /// The greedy victim: highest score, ties to the oldest `opened_seq`,
    /// skipping blocks for which `skip` returns true (active write targets).
    pub fn select_greedy(&self, mut skip: impl FnMut(u64) -> bool) -> Option<u64> {
        for bucket in self.buckets.iter().rev() {
            let winner = bucket
                .iter()
                .filter(|&&(_, idx)| !skip(idx))
                .min()
                .map(|&(_, idx)| idx);
            if winner.is_some() {
                return winner;
            }
        }
        None
    }

    /// Iterates `(block_idx, cached_score, opened_seq)` in block-index order.
    pub fn members(&self) -> impl Iterator<Item = (u64, u32, u64)> + '_ {
        self.members
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.map(|m| (i as u64, m.score, m.seq)))
    }

    /// Cached score of a member (test introspection).
    pub fn score_of(&self, block_idx: u64) -> Option<u32> {
        self.members
            .get(block_idx as usize)
            .and_then(|m| m.map(|m| m.score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_highest_score_then_oldest_seq() {
        let mut ix = VictimIndex::new();
        ix.insert(10, 5, 2);
        ix.insert(11, 3, 2); // same score, older → wins the tie
        ix.insert(12, 1, 1);
        assert_eq!(ix.select_greedy(|_| false), Some(11));
        ix.note_invalidated(12);
        ix.note_invalidated(12); // 12 now at score 3 → outranks both
        assert_eq!(ix.select_greedy(|_| false), Some(12));
        assert_eq!(ix.score_of(12), Some(3));
    }

    #[test]
    fn skip_filters_active_blocks_across_buckets() {
        let mut ix = VictimIndex::new();
        ix.insert(1, 1, 4);
        ix.insert(2, 2, 0);
        assert_eq!(ix.select_greedy(|i| i == 1), Some(2));
        assert_eq!(ix.select_greedy(|_| true), None);
    }

    #[test]
    fn remove_and_clear_forget_members() {
        let mut ix = VictimIndex::new();
        ix.insert(1, 1, 0);
        ix.insert(2, 2, 7);
        ix.remove(2);
        assert!(!ix.contains(2));
        assert_eq!(ix.select_greedy(|_| false), Some(1));
        ix.remove(2); // double-remove is a no-op
        ix.clear();
        assert!(ix.is_empty());
        assert_eq!(ix.select_greedy(|_| false), None);
    }

    #[test]
    fn zero_score_members_are_still_eligible() {
        // A cache full of valid data degenerates to FIFO eviction: the index
        // must return the oldest zero-score member, like the linear oracle.
        let mut ix = VictimIndex::new();
        ix.insert(4, 9, 0);
        ix.insert(5, 2, 0);
        assert_eq!(ix.select_greedy(|_| false), Some(5));
    }

    #[test]
    fn swap_removal_keeps_positions_consistent() {
        // Three same-score members; removing the middle one swaps the last
        // into its bucket slot — the swapped member must stay addressable.
        let mut ix = VictimIndex::new();
        ix.insert(1, 10, 3);
        ix.insert(2, 20, 3);
        ix.insert(3, 30, 3);
        ix.remove(2);
        ix.note_invalidated(3); // would corrupt if 3's position went stale
        assert_eq!(ix.score_of(3), Some(4));
        assert_eq!(ix.select_greedy(|_| false), Some(3));
        assert_eq!(ix.len(), 2);
    }
}

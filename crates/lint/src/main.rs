#![forbid(unsafe_code)]
//! `ipu-lint` CLI: lints the workspace and exits nonzero on any unsuppressed
//! finding. `--format json` emits machine-readable output, `--format github`
//! emits GitHub Actions `::error` annotations for CI; `--root <dir>` points
//! at a workspace other than the current directory; `--threads <n>` sets the
//! per-file analysis parallelism (output is identical at any thread count).

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Human,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut root = PathBuf::from(".");
    let mut threads = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            // Back-compat alias for `--format json`.
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!(
                        "error: --format expects human|json|github, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("error: --threads requires a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ipu-lint: project-specific static analysis\n\n\
                     USAGE: ipu-lint [--format human|json|github] [--threads <n>] [--root <dir>]\n\n\
                     Scans crates/*/src/**/*.rs under the workspace root and reports\n\
                     violations of the project rules (see DESIGN.md §13): lexical rules\n\
                     plus the semantic rules panic-reachability, exhaustive-match,\n\
                     merge-complete and nondet-reduce. Exit code is 0 when clean, 1 on\n\
                     findings, 2 on usage or I/O errors.\n\n\
                     Suppress a finding inline, reason mandatory:\n\
                     \x20   // ipu-lint: allow(<rule>) — <reason>"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match ipu_lint::lint_workspace(&root, threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to scan workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let rendered = match format {
        Format::Human => ipu_lint::render_human(&report),
        Format::Json => ipu_lint::render_json(&report),
        Format::Github => ipu_lint::render_github(&report),
    };
    print!("{rendered}");
    if matches!(format, Format::Json) {
        println!();
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

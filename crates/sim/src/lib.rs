//! # ipu-sim — trace-driven SSD simulator
//!
//! Replays block I/O traces against an `ipu-ftl` scheme running on an
//! `ipu-flash` device, modelling chip-level contention (operations serialize
//! FIFO per chip, parallelize across chips) and collecting the latency,
//! error-rate, endurance and memory metrics reported in the paper's
//! evaluation.
//!
//! ```
//! use ipu_sim::{replay, ReplayConfig};
//! use ipu_ftl::SchemeKind;
//! use ipu_trace::{IoRequest, OpKind};
//!
//! let cfg = ReplayConfig::small_for_tests(SchemeKind::Ipu);
//! let reqs = vec![IoRequest::new(0, OpKind::Write, 0, 4096)];
//! let report = replay(&cfg, &reqs, "demo");
//! assert_eq!(report.requests, 1);
//! ```

#![forbid(unsafe_code)]

pub mod closed_loop;
pub mod engine;
pub mod event_core;
pub mod power_loss;
pub mod resources;

pub use closed_loop::{replay_closed_loop, replay_closed_loop_detailed, ClosedLoopReport};
pub use engine::{replay, replay_oracle, replay_with_progress, ReplayConfig, SimReport};
pub use event_core::{EventCore, GcMode, TimingConfig};
// The latency/reliability histogram implementations live in `ipu-host` (the
// host interface aggregates per-tenant latency with the same types).
pub use ipu_host::metrics::{LatencyStats, ReliabilityStats};
pub use power_loss::{durable_snapshot, replay_with_power_loss, DurableSnapshot, PowerLossReport};
pub use resources::ChipSchedule;

//! Fixture: a conservation ledger whose `merge` forgot a field — linted as
//! if it were `crates/host/src/metrics.rs`, the scoped home of LatencyStats.

use serde::{Deserialize, Serialize};

/// Latency ledger (fixture twin of the real one).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

impl LatencyStats {
    /// Folds `other` in — but `max_ns` never made it here.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
    }
}

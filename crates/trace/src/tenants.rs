//! Splitting a trace into per-tenant streams for multi-queue replay.
//!
//! Closed-loop host-interface experiments need one request stream per tenant.
//! Three deterministic strategies cover the common cases:
//!
//! * [`split_round_robin`] — requests dealt to tenants in arrival order;
//!   tenants share the address space (a "noisy neighbours on one volume"
//!   model).
//! * [`split_by_lba`] — the observed address range is cut into equal
//!   contiguous extents, one per tenant (a "partitioned namespaces" model).
//! * [`clone_shifted`] — each tenant replays a full copy of the trace with
//!   its addresses rebased into a private extent (an "N identical
//!   independent workloads" model).

use crate::request::IoRequest;

/// How to derive per-tenant streams from one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    RoundRobin,
    ByLba,
    CloneShifted,
}

impl SplitStrategy {
    /// Parses the CLI spelling (`rr`, `lba`, `clone`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "rr" | "round-robin" => Ok(SplitStrategy::RoundRobin),
            "lba" => Ok(SplitStrategy::ByLba),
            "clone" | "clone-shifted" => Ok(SplitStrategy::CloneShifted),
            other => Err(format!(
                "unknown split strategy `{other}` (rr | lba | clone)"
            )),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            SplitStrategy::RoundRobin => "rr",
            SplitStrategy::ByLba => "lba",
            SplitStrategy::CloneShifted => "clone",
        }
    }

    /// Applies the strategy.
    pub fn split(self, requests: &[IoRequest], tenants: usize) -> Vec<Vec<IoRequest>> {
        match self {
            SplitStrategy::RoundRobin => split_round_robin(requests, tenants),
            SplitStrategy::ByLba => split_by_lba(requests, tenants),
            SplitStrategy::CloneShifted => clone_shifted(requests, tenants),
        }
    }
}

/// Deals requests to `tenants` streams in arrival order.
pub fn split_round_robin(requests: &[IoRequest], tenants: usize) -> Vec<Vec<IoRequest>> {
    assert!(tenants >= 1, "need at least one tenant");
    let mut streams = vec![Vec::with_capacity(requests.len() / tenants + 1); tenants];
    for (i, req) in requests.iter().enumerate() {
        streams[i % tenants].push(*req);
    }
    streams
}

/// Assigns each request to the tenant owning its address extent: the span
/// `[min_offset, max_offset]` observed in the trace is divided into `tenants`
/// equal extents. Streams keep arrival order; request counts per tenant
/// follow the trace's own address locality (and may be skewed).
pub fn split_by_lba(requests: &[IoRequest], tenants: usize) -> Vec<Vec<IoRequest>> {
    assert!(tenants >= 1, "need at least one tenant");
    let mut streams = vec![Vec::new(); tenants];
    if requests.is_empty() {
        return streams;
    }
    let lo = requests.iter().map(|r| r.offset).min().expect("non-empty");
    let hi = requests.iter().map(|r| r.offset).max().expect("non-empty");
    let extent = ((hi - lo) / tenants as u64 + 1).max(1);
    for req in requests {
        let t = (((req.offset - lo) / extent) as usize).min(tenants - 1);
        streams[t].push(*req);
    }
    streams
}

/// Gives every tenant a full copy of the trace, rebased into a private
/// address extent so the copies never collide: tenant `t` adds
/// `t × stride` to each offset, where the stride is the trace's address span
/// rounded up to the next 64 KiB cache-slot boundary.
pub fn clone_shifted(requests: &[IoRequest], tenants: usize) -> Vec<Vec<IoRequest>> {
    assert!(tenants >= 1, "need at least one tenant");
    if requests.is_empty() {
        return vec![Vec::new(); tenants];
    }
    const SLOT_BYTES: u64 = 64 * 1024;
    let span = requests
        .iter()
        .map(|r| r.offset + r.size as u64)
        .max()
        .expect("non-empty");
    let stride = span.div_ceil(SLOT_BYTES) * SLOT_BYTES;
    (0..tenants as u64)
        .map(|t| {
            requests
                .iter()
                .map(|r| {
                    let mut c = *r;
                    c.offset += t * stride;
                    c
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::OpKind;

    fn trace(n: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| IoRequest::new(i * 1_000, OpKind::Write, i * 65536, 4096))
            .collect()
    }

    #[test]
    fn round_robin_deals_evenly_and_keeps_order() {
        let streams = split_round_robin(&trace(10), 3);
        assert_eq!(
            streams.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        for s in &streams {
            assert!(s.windows(2).all(|w| w[0].timestamp_ns <= w[1].timestamp_ns));
        }
        // Every request lands in exactly one stream.
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 10);
    }

    #[test]
    fn lba_split_partitions_address_space() {
        let streams = split_by_lba(&trace(9), 3);
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 9);
        // Extents are disjoint: every stream's max offset < next stream's min.
        for pair in streams.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let a_max = a.iter().map(|r| r.offset).max().unwrap();
            let b_min = b.iter().map(|r| r.offset).min().unwrap();
            assert!(a_max < b_min, "extents overlap: {a_max} ≥ {b_min}");
        }
    }

    #[test]
    fn clone_shifted_copies_never_collide() {
        let streams = clone_shifted(&trace(4), 3);
        assert_eq!(streams.len(), 3);
        assert!(streams.iter().all(|s| s.len() == 4));
        // Same timing everywhere; address extents disjoint across tenants.
        for (t, s) in streams.iter().enumerate() {
            assert_eq!(s[0].timestamp_ns, 0);
            let _ = t;
        }
        let max0 = streams[0]
            .iter()
            .map(|r| r.offset + r.size as u64)
            .max()
            .unwrap();
        let min1 = streams[1].iter().map(|r| r.offset).min().unwrap();
        assert!(min1 >= max0, "tenant extents collide");
        // Stride is slot-aligned so tenants do not share cache slots.
        assert_eq!(min1 % (64 * 1024), 0);
    }

    #[test]
    fn single_tenant_split_is_identity() {
        let t = trace(5);
        assert_eq!(split_round_robin(&t, 1), vec![t.clone()]);
        assert_eq!(split_by_lba(&t, 1), vec![t.clone()]);
        assert_eq!(clone_shifted(&t, 1), vec![t.clone()]);
    }

    #[test]
    fn empty_trace_splits_to_empty_streams() {
        for strat in [
            SplitStrategy::RoundRobin,
            SplitStrategy::ByLba,
            SplitStrategy::CloneShifted,
        ] {
            let streams = strat.split(&[], 2);
            assert_eq!(streams.len(), 2);
            assert!(streams.iter().all(Vec::is_empty));
        }
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(
            SplitStrategy::parse("rr").unwrap(),
            SplitStrategy::RoundRobin
        );
        assert_eq!(SplitStrategy::parse("lba").unwrap(), SplitStrategy::ByLba);
        assert_eq!(
            SplitStrategy::parse("clone").unwrap(),
            SplitStrategy::CloneShifted
        );
        assert!(SplitStrategy::parse("hash").is_err());
    }
}

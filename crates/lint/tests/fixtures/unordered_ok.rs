//! Fixture: R3-conforming code — ordered map on an ordered-output path.

use std::collections::BTreeMap;

pub fn render(m: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in m {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

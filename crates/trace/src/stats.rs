//! Trace statistics: the paper's Table 1 and Table 3 metrics.
//!
//! * **Table 3** — request count, write ratio, average write size, and *hot
//!   write ratio*: the fraction of write-accessed logical subpage addresses
//!   that were requested at least [`HOT_ACCESS_THRESHOLD`] times (the paper's
//!   definition: "requested not less than 4 times").
//! * **Table 1** — among *updated* write requests (writes whose first logical
//!   subpage was written before), the size distribution over the buckets
//!   (0, 4 KB], (4 KB, 8 KB] and > 8 KB.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::request::{IoRequest, SUBPAGE_BYTES};

/// Paper's hotness threshold: an address is hot if requested ≥ 4 times.
pub const HOT_ACCESS_THRESHOLD: u32 = 4;

/// Size buckets of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeBucket {
    /// (0, 4 KB]
    UpTo4K,
    /// (4 KB, 8 KB]
    UpTo8K,
    /// > 8 KB
    Over8K,
}

impl SizeBucket {
    /// Classifies a request size in bytes.
    pub fn classify(size: u32) -> Self {
        if size <= 4096 {
            SizeBucket::UpTo4K
        } else if size <= 8192 {
            SizeBucket::UpTo8K
        } else {
            SizeBucket::Over8K
        }
    }
}

/// Update-size distribution (the paper's Table 1 row for one trace).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct UpdateSizeDistribution {
    pub up_to_4k: f64,
    pub up_to_8k: f64,
    pub over_8k: f64,
    /// Number of updated write requests the distribution is over.
    pub updated_requests: u64,
}

/// Aggregate statistics of a request stream (the paper's Table 3 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total requests.
    pub requests: u64,
    /// Write requests.
    pub writes: u64,
    /// Fraction of requests that are writes.
    pub write_ratio: f64,
    /// Mean write request size in bytes.
    pub avg_write_size: f64,
    /// Fraction of write request addresses accessed ≥ 4 times.
    ///
    /// The paper's Table 3 "Hot write": an *address* is a request start
    /// address, and it is hot when requested (read or write) at least four
    /// times. Counting per start address rather than per touched subpage
    /// keeps large sequential writes from diluting the metric with their
    /// tail subpages.
    pub hot_write_ratio: f64,
    /// Table 1 distribution of updated-write sizes.
    pub update_sizes: UpdateSizeDistribution,
    /// Fraction of write requests that are updates (first subpage seen before).
    pub update_ratio: f64,
    /// Distinct logical subpages written.
    pub written_footprint_subpages: u64,
    /// Trace duration (last arrival), ns.
    pub duration_ns: u64,
}

impl TraceStats {
    /// Computes statistics over a request stream.
    pub fn compute(requests: &[IoRequest]) -> Self {
        let mut writes = 0u64;
        let mut write_bytes = 0u64;
        let mut duration_ns = 0u64;
        // Request-start-address access counts (reads + writes), plus the set
        // of start addresses that have been written, and the set of written
        // subpages (footprint / update detection).
        let mut start_access_counts: BTreeMap<u64, u32> = BTreeMap::new();
        let mut written_starts: BTreeMap<u64, u32> = BTreeMap::new();
        let mut written_subpages: BTreeMap<u64, u32> = BTreeMap::new();
        let mut bucket_counts = [0u64; 3];
        let mut updated_requests = 0u64;

        for r in requests {
            duration_ns = duration_ns.max(r.timestamp_ns);
            let first = r.first_lsn();
            *start_access_counts.entry(first).or_insert(0) += 1;
            if r.op.is_write() {
                let is_update = written_subpages.contains_key(&first);
                if is_update {
                    updated_requests += 1;
                    let b = match SizeBucket::classify(r.size) {
                        SizeBucket::UpTo4K => 0,
                        SizeBucket::UpTo8K => 1,
                        SizeBucket::Over8K => 2,
                    };
                    bucket_counts[b] += 1;
                }
                writes += 1;
                write_bytes += r.size as u64;
                *written_starts.entry(first).or_insert(0) += 1;
                for lsn in r.subpage_span() {
                    *written_subpages.entry(lsn).or_insert(0) += 1;
                }
            }
        }

        let hot = written_starts
            .keys()
            .filter(|lsn| {
                start_access_counts.get(lsn).copied().unwrap_or(0) >= HOT_ACCESS_THRESHOLD
            })
            .count() as u64;

        let denom = updated_requests.max(1) as f64;
        TraceStats {
            requests: requests.len() as u64,
            writes,
            write_ratio: writes as f64 / (requests.len().max(1) as f64),
            avg_write_size: write_bytes as f64 / writes.max(1) as f64,
            hot_write_ratio: hot as f64 / written_starts.len().max(1) as f64,
            update_sizes: UpdateSizeDistribution {
                up_to_4k: bucket_counts[0] as f64 / denom,
                up_to_8k: bucket_counts[1] as f64 / denom,
                over_8k: bucket_counts[2] as f64 / denom,
                updated_requests,
            },
            update_ratio: updated_requests as f64 / writes.max(1) as f64,
            written_footprint_subpages: written_subpages.len() as u64,
            duration_ns,
        }
    }

    /// Written footprint in bytes.
    pub fn written_footprint_bytes(&self) -> u64 {
        self.written_footprint_subpages * SUBPAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::OpKind;

    fn w(t: u64, offset: u64, size: u32) -> IoRequest {
        IoRequest::new(t, OpKind::Write, offset, size)
    }
    fn rd(t: u64, offset: u64, size: u32) -> IoRequest {
        IoRequest::new(t, OpKind::Read, offset, size)
    }

    #[test]
    fn buckets_match_table1_edges() {
        assert_eq!(SizeBucket::classify(1), SizeBucket::UpTo4K);
        assert_eq!(SizeBucket::classify(4096), SizeBucket::UpTo4K);
        assert_eq!(SizeBucket::classify(4097), SizeBucket::UpTo8K);
        assert_eq!(SizeBucket::classify(8192), SizeBucket::UpTo8K);
        assert_eq!(SizeBucket::classify(8193), SizeBucket::Over8K);
    }

    #[test]
    fn write_ratio_and_sizes() {
        let reqs = vec![
            w(0, 0, 4096),
            w(1, 4096, 8192),
            rd(2, 0, 4096),
            rd(3, 0, 4096),
        ];
        let s = TraceStats::compute(&reqs);
        assert_eq!(s.requests, 4);
        assert_eq!(s.writes, 2);
        assert!((s.write_ratio - 0.5).abs() < 1e-12);
        assert!((s.avg_write_size - 6144.0).abs() < 1e-9);
        assert_eq!(s.duration_ns, 3);
    }

    #[test]
    fn updates_require_prior_write_to_first_subpage() {
        let reqs = vec![
            w(0, 0, 4096),     // new
            w(1, 4096, 4096),  // new
            w(2, 0, 8192),     // update (subpage 0 written before)
            w(3, 81920, 4096), // new
            w(4, 81920, 4096), // update
        ];
        let s = TraceStats::compute(&reqs);
        assert_eq!(s.update_sizes.updated_requests, 2);
        assert!((s.update_ratio - 2.0 / 5.0).abs() < 1e-12);
        assert!((s.update_sizes.up_to_4k - 0.5).abs() < 1e-12);
        assert!((s.update_sizes.up_to_8k - 0.5).abs() < 1e-12);
        assert_eq!(s.update_sizes.over_8k, 0.0);
    }

    #[test]
    fn hotness_counts_reads_and_writes_on_written_addresses() {
        // Subpage 0: 1 write + 3 reads = 4 accesses → hot.
        // Subpage 1: 2 accesses → cold. Subpage 2: read-only → not counted.
        let reqs = vec![
            w(0, 0, 4096),
            rd(1, 0, 4096),
            rd(2, 0, 4096),
            rd(3, 0, 4096),
            w(4, 4096, 4096),
            rd(5, 4096, 4096),
            rd(6, 8192, 4096),
            rd(7, 8192, 4096),
            rd(8, 8192, 4096),
            rd(9, 8192, 4096),
        ];
        let s = TraceStats::compute(&reqs);
        assert_eq!(s.written_footprint_subpages, 2);
        assert!((s.hot_write_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.write_ratio, 0.0);
        assert_eq!(s.hot_write_ratio, 0.0);
        assert_eq!(s.update_sizes.updated_requests, 0);
    }

    #[test]
    fn footprint_bytes_scales_by_subpage() {
        let reqs = vec![w(0, 0, 16384)];
        let s = TraceStats::compute(&reqs);
        assert_eq!(s.written_footprint_subpages, 4);
        assert_eq!(s.written_footprint_bytes(), 16384);
    }
}

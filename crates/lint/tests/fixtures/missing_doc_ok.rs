//! Fixture: R7-conforming trait and enum — every pub item documented.

pub trait FixtureScheme {
    /// Documented method.
    fn documented(&self) -> u32;

    /// Also documented, with a default body.
    fn documented_with_default_body(&self) -> u32 {
        0
    }
}

pub enum FixtureKind {
    /// First variant.
    First,
    /// Second variant, with a payload.
    Second(u32),
}

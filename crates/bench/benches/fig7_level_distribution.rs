//! `cargo bench -p ipu-bench --bench fig7_level_distribution`
//!
//! Regenerates the paper's Figure 7 (IPU write distribution across levels) from the cached evaluation matrix
//! (see crate docs for the IPU_BENCH_* environment knobs).

fn main() {
    let cfg = ipu_bench::bench_config();
    let matrix = ipu_bench::main_matrix_cached(&cfg);
    println!("{}", ipu_core::report::render_fig7(&matrix));
}

//! Fixture: R8 (no-debug-print) violations in library code.

pub fn bad_prints(x: u32) -> u32 {
    println!("x = {x}");
    let y = dbg!(x + 1);
    y
}

#[cfg(test)]
mod tests {
    #[test]
    fn printing_in_tests_is_fine() {
        println!("test output is allowed");
    }
}

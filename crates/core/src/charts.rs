//! ASCII bar charts for terminal reports.
//!
//! The paper's evaluation figures are grouped bar charts (one group per
//! trace, one bar per scheme). [`BarChart`] renders the same structure in
//! plain text so `cargo bench` output can be eyeballed against the paper
//! directly, without plotting tooling.

/// A grouped horizontal bar chart.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    unit: String,
    /// (group label, series label, value).
    bars: Vec<(String, String, f64)>,
    width: usize,
}

impl BarChart {
    pub fn new(title: &str, unit: &str) -> Self {
        BarChart {
            title: title.to_string(),
            unit: unit.to_string(),
            bars: Vec::new(),
            width: 48,
        }
    }

    /// Sets the bar area width in characters (default 48).
    pub fn width(mut self, width: usize) -> Self {
        self.width = width.clamp(8, 160);
        self
    }

    /// Adds one bar to `group` for `series`.
    pub fn bar(&mut self, group: &str, series: &str, value: f64) -> &mut Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "bar value must be finite and non-negative"
        );
        self.bars
            .push((group.to_string(), series.to_string(), value));
        self
    }

    /// Renders the chart; bars scale to the global maximum.
    pub fn render(&self) -> String {
        let mut out = format!("{} [{}]\n", self.title, self.unit);
        if self.bars.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let max = self
            .bars
            .iter()
            .map(|(_, _, v)| *v)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let label_w = self
            .bars
            .iter()
            .map(|(g, s, _)| g.len() + s.len() + 1)
            .max()
            .unwrap_or(8);

        let mut last_group: Option<&str> = None;
        for (group, series, value) in &self.bars {
            if last_group != Some(group.as_str()) {
                if last_group.is_some() {
                    out.push('\n');
                }
                last_group = Some(group.as_str());
            }
            let filled = ((value / max) * self.width as f64).round() as usize;
            let label = format!("{group} {series}");
            out.push_str(&format!(
                "{label:<label_w$} |{}{} {value:.4}\n",
                "█".repeat(filled),
                " ".repeat(self.width - filled),
            ));
        }
        out
    }
}

/// Convenience: chart one metric of a matrix, grouped by trace.
pub fn chart_matrix(
    m: &crate::experiment::MatrixResult,
    title: &str,
    unit: &str,
    metric: impl Fn(&ipu_sim::SimReport) -> f64,
) -> String {
    let mut chart = BarChart::new(title, unit);
    for (ti, trace) in m.traces.iter().enumerate() {
        for (si, scheme) in m.schemes.iter().enumerate() {
            chart.bar(trace, scheme.label(), metric(m.report(ti, si)));
        }
    }
    chart.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grouped_bars_scaled_to_max() {
        let mut c = BarChart::new("demo", "ms").width(10);
        c.bar("ts0", "Baseline", 1.0);
        c.bar("ts0", "IPU", 0.5);
        c.bar("usr0", "Baseline", 0.25);
        let out = c.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "demo [ms]");
        // Max bar fills the width; half bar fills half.
        assert!(lines[1].contains(&"█".repeat(10)));
        assert!(lines[2].contains(&"█".repeat(5)));
        assert!(!lines[2].contains(&"█".repeat(6)));
        // Groups are separated by a blank line.
        assert!(out.contains("\n\nusr0"));
        assert!(out.contains("1.0000"));
    }

    #[test]
    fn empty_chart_is_graceful() {
        assert!(BarChart::new("x", "y").render().contains("(no data)"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_values() {
        BarChart::new("x", "y").bar("g", "s", f64::NAN);
    }

    #[test]
    fn width_is_clamped() {
        let mut c = BarChart::new("x", "y").width(2); // clamps to 8
        c.bar("g", "s", 1.0);
        assert!(c.render().contains(&"█".repeat(8)));
    }
}

//! Fixture: R6 (float-eq) violations in non-test code.

pub fn bad_eq(x: f64) -> bool {
    x == 0.5
}

pub fn bad_ne(x: f64) -> bool {
    x != 1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_eq_in_tests_is_fine() {
        let y = 2.0;
        assert!(y == 2.0);
    }
}

//! The `MGA` scheme (Mapping Granularity Adaptive, Feng et al., DATE'17):
//! subpage-granular space management with partial programming.
//!
//! Small write chunks are packed into the free subpages of *open pages* —
//! pages that still have free contiguous space and remaining NOP budget —
//! regardless of which request the page's earlier data belongs to. This
//! maximizes page utilization (~99.9% in the paper's Figure 9) but every
//! packing partial-program disturbs the valid data already in the page, which
//! is why MGA shows the worst read error rate in Figure 8. A two-level mapping
//! table (page table + subpage entries for scattered chunks) models its memory
//! cost. GC is greedy at subpage granularity and evicts valid data to MLC.

use std::collections::VecDeque;

use ipu_flash::{FlashDevice, Nanos, Ppa, MAX_SUBPAGES_PER_PAGE};
use ipu_trace::IoRequest;

use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::memory::MappingMemory;
use crate::ops::{FlashOpKind, OpBatch, RoundOrigin};
use crate::stats::FtlStats;
use crate::types::{BlockLevel, Lsn};

use super::common::FtlCore;
use super::FtlScheme;

/// Subpage-packing FTL with partial programming.
#[derive(Debug)]
pub struct MgaFtl {
    core: FtlCore,
    /// Pages with free subpage runs and remaining NOP budget, oldest first.
    open_pages: VecDeque<Ppa>,
}

impl MgaFtl {
    pub fn new(dev: &mut FlashDevice, cfg: FtlConfig) -> Self {
        MgaFtl {
            core: FtlCore::new(dev, cfg),
            open_pages: VecDeque::new(),
        }
    }

    /// Number of currently-open packing candidate pages (introspection).
    pub fn open_page_count(&self) -> usize {
        self.open_pages.len()
    }

    /// First open page that can absorb `count` subpages, with the offset.
    fn find_open_slot(&self, dev: &FlashDevice, count: u8) -> Option<(usize, Ppa, u8)> {
        for (i, &ppa) in self.open_pages.iter().enumerate() {
            let page = dev.block(ppa.block_addr()).page(ppa.page);
            if page.program_ops() < dev.config().max_partial_programs {
                if let Some(off) = page.find_free_run(count) {
                    return Some((i, ppa, off));
                }
            }
        }
        None
    }

    /// Drops an open page that can no longer accept data, keeps it otherwise.
    fn refresh_open_page(&mut self, dev: &FlashDevice, ppa: Ppa) {
        let page = dev.block(ppa.block_addr()).page(ppa.page);
        let usable = page.program_ops() < dev.config().max_partial_programs
            && page.find_free_run(1).is_some();
        if !usable {
            self.open_pages.retain(|&p| p != ppa);
        }
    }

    fn write_chunk(
        &mut self,
        lsns: &[Lsn],
        now: Nanos,
        dev: &mut FlashDevice,
        batch: &mut OpBatch,
    ) -> Result<(), FtlError> {
        let k = lsns.len() as u8;
        // Pack sub-page chunks into an open page when possible.
        if k < self.core.spp() {
            if let Some((_, ppa, off)) = self.find_open_slot(dev, k) {
                let res = self.core.program_group(
                    dev,
                    ppa,
                    off,
                    lsns,
                    FlashOpKind::HostProgram,
                    now,
                    batch,
                );
                // A failed program may have retired the target block; the
                // refresh drops the page either way once it is unusable. Open
                // pages on retired blocks are purged below regardless.
                self.open_pages.retain(|p| {
                    !self
                        .core
                        .bad_blocks()
                        .contains(&self.core.block_idx(p.block_addr()))
                });
                self.refresh_open_page(dev, ppa);
                return res;
            }
        }
        // Otherwise open a fresh page; leftovers become packing space.
        let (ppa, level) = self.core.take_host_page(dev, BlockLevel::Work, batch)?;
        self.core
            .program_group(dev, ppa, 0, lsns, FlashOpKind::HostProgram, now, batch)?;
        if level.is_slc()
            && k < self.core.spp()
            && !self
                .core
                .bad_blocks()
                .contains(&self.core.block_idx(ppa.block_addr()))
        {
            self.open_pages.push_back(ppa);
            while self.open_pages.len() > self.core.cfg.mga_open_page_limit {
                self.open_pages.pop_front();
            }
        }
        Ok(())
    }

    fn run_gc(&mut self, now: Nanos, dev: &mut FlashDevice, batch: &mut OpBatch) {
        let mut rounds = 0;
        while self.core.slc_gc_needed()
            && self.core.slc_gc_gate_open(now)
            && rounds < self.core.cfg.gc_rounds_per_write
        {
            let _span = ipu_obs::span(ipu_obs::Phase::Gc);
            batch.begin_background_round(RoundOrigin::Gc);
            rounds += 1;
            let cost_before = batch.total_latency_sum();
            let victim = self.core.select_slc_victim_greedy();
            let Some(victim) = victim else { break };
            let Some(victim_addr) = self.core.meta.get(victim).map(|m| m.addr) else {
                break;
            };
            // Victim pages can no longer serve as packing targets.
            self.open_pages.retain(|p| p.block_addr() != victim_addr);
            let mut aborted = false;
            let mut groups = std::mem::take(&mut self.core.gc_groups);
            let groups_cap = groups.capacity();
            self.core
                .collect_victim_groups_into(dev, victim, &mut groups);
            for group in &groups {
                if self
                    .core
                    .relocate_group(dev, victim_addr, group, BlockLevel::HighDensity, now, batch)
                    .is_err()
                {
                    aborted = true;
                    break;
                }
            }
            if groups.capacity() != groups_cap {
                self.core.stats.scratch_grows += 1;
            }
            self.core.gc_groups = groups;
            if aborted {
                // Never erase a partially-relocated victim.
                break;
            }
            self.core.erase_victim(dev, victim, now, batch);
            let round_cost = batch.total_latency_sum() - cost_before;
            self.core.finish_slc_gc_round(now, round_cost);
        }
        self.core.run_mlc_gc_if_needed(dev, now, batch);
        self.core.run_wear_leveling_if_due(dev, now, batch);
        self.core.run_scrub_if_due(dev, now, batch);
    }
}

impl FtlScheme for MgaFtl {
    fn name(&self) -> &'static str {
        "MGA"
    }

    fn on_write_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    ) {
        self.core.begin_request(now);
        self.core.stats.host_write_requests += 1;
        for (start, len) in self.core.chunk_spans(req) {
            // A chunk is a contiguous LSN run of at most one page: stage it in
            // a stack buffer so the write path performs no heap allocation.
            let mut chunk = [0 as Lsn; MAX_SUBPAGES_PER_PAGE];
            for (i, slot) in chunk[..len as usize].iter_mut().enumerate() {
                *slot = start + i as u64;
            }
            if let Err(e) = self.write_chunk(&chunk[..len as usize], now, dev, out) {
                self.core.note_write_failure(&e, out);
            }
            self.run_gc(now, dev, out);
        }
    }

    fn on_read_into(
        &mut self,
        req: &IoRequest,
        now: Nanos,
        dev: &mut FlashDevice,
        out: &mut OpBatch,
    ) {
        self.core.begin_request(now);
        if let Err(e) = self.core.host_read(req, dev, out) {
            self.core.note_read_failure(&e, out);
        }
    }

    fn power_cycle(&mut self, dev: &FlashDevice) {
        // Open packing candidates are volatile controller state.
        self.open_pages.clear();
        self.core.rebuild_from_flash(dev);
    }

    fn stats(&self) -> &FtlStats {
        &self.core.stats
    }

    fn mapping_memory(&self, dev: &FlashDevice) -> MappingMemory {
        let spp = dev.config().geometry.subpages_per_page();
        let summary = self.core.map.chunk_summary(spp);
        MappingMemory::mga(self.core.logical_pages(), summary.scattered_chunks, spp)
    }

    fn core(&self) -> &FtlCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut FtlCore {
        &mut self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_flash::{DeviceConfig, SubpageState};
    use ipu_trace::OpKind;

    fn setup() -> (MgaFtl, FlashDevice) {
        let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
        let ftl = MgaFtl::new(&mut dev, FtlConfig::default());
        (ftl, dev)
    }

    fn w(offset: u64, size: u32) -> IoRequest {
        IoRequest::new(0, OpKind::Write, offset, size)
    }

    #[test]
    fn small_writes_pack_into_one_page() {
        let (mut ftl, mut dev) = setup();
        // Three 4 KB writes from *different* addresses pack into one page.
        ftl.on_write(&w(0, 4096), 1, &mut dev);
        ftl.on_write(&w(65536, 4096), 2, &mut dev);
        ftl.on_write(&w(2 * 65536, 4096), 3, &mut dev);
        let a = ftl.core.map.lookup(0).unwrap();
        let b = ftl.core.map.lookup(16).unwrap();
        let c = ftl.core.map.lookup(32).unwrap();
        assert_eq!(a.ppa, b.ppa, "packing failed");
        assert_eq!(a.ppa, c.ppa);
        assert_eq!((a.subpage, b.subpage, c.subpage), (0, 1, 2));
        // Packing partial programs disturbed the earlier data.
        let page = dev.block(a.ppa.block_addr()).page(a.ppa.page);
        assert_eq!(page.program_ops(), 3);
        assert_eq!(page.in_page_disturbs(0), 2);
        assert_eq!(page.in_page_disturbs(1), 1);
    }

    #[test]
    fn nop_budget_caps_packing_at_four_programs() {
        let (mut ftl, mut dev) = setup();
        for i in 0..5u64 {
            ftl.on_write(&w(i * 65536, 4096), i, &mut dev);
        }
        let first = ftl.core.map.lookup(0).unwrap();
        let fifth = ftl.core.map.lookup(4 * 16).unwrap();
        // Four programs fill the page's budget; the fifth write opens a new page.
        assert_ne!(first.ppa, fifth.ppa);
        let page = dev.block(first.ppa.block_addr()).page(first.ppa.page);
        assert_eq!(page.program_ops(), 4);
    }

    #[test]
    fn full_page_writes_bypass_packing() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 4096), 1, &mut dev);
        assert_eq!(ftl.open_page_count(), 1);
        ftl.on_write(&w(65536, 16384), 2, &mut dev);
        let big = ftl.core.map.lookup(16).unwrap();
        assert_eq!(big.subpage, 0);
        let page = dev.block(big.ppa.block_addr()).page(big.ppa.page);
        assert_eq!(page.program_ops(), 1);
        assert_eq!(page.count(SubpageState::Valid), 4);
    }

    #[test]
    fn two_subpage_chunks_pack_contiguously() {
        let (mut ftl, mut dev) = setup();
        ftl.on_write(&w(0, 8192), 1, &mut dev);
        ftl.on_write(&w(65536, 8192), 2, &mut dev);
        let a = ftl.core.map.lookup(0).unwrap();
        let b = ftl.core.map.lookup(16).unwrap();
        assert_eq!(a.ppa, b.ppa);
        assert_eq!((a.subpage, b.subpage), (0, 2));
    }

    #[test]
    fn gc_under_pressure_keeps_mapping_consistent() {
        let (mut ftl, mut dev) = setup();
        for round in 0..12u64 {
            for slot in 0..6u64 {
                ftl.on_write(&w(slot * 65536, 4096), round * 6 + slot, &mut dev);
            }
        }
        assert!(ftl.stats().gc_runs_slc > 0);
        for slot in 0..6u64 {
            let lsn = slot * 16;
            let spa = ftl.core.map.lookup(lsn).expect("mapping lost");
            let bi = ftl.core.block_idx(spa.ppa.block_addr());
            assert_eq!(ftl.core.owners.owner(bi, spa), Some(lsn), "owner drift");
        }
        // Packing keeps GC'd blocks nearly full (Fig. 9: MGA ≈ 99.9%).
        let util = ftl.stats().gc_page_utilization();
        assert!(util > 0.9, "MGA utilization {util} should be near 1");
    }

    #[test]
    fn mapping_memory_includes_second_level_for_scattered_chunks() {
        let (mut ftl, mut dev) = setup();
        // Packed small writes land at arbitrary offsets → scattered chunks.
        ftl.on_write(&w(0, 4096), 1, &mut dev);
        ftl.on_write(&w(65536, 4096), 2, &mut dev);
        let m = ftl.mapping_memory(&dev);
        assert!(m.second_level_bytes > 0, "MGA must pay for a second level");
        let base = MappingMemory::baseline(ftl.core.logical_pages());
        assert!(m.total() > base.total());
    }
}

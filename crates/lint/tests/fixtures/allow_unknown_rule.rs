//! Fixture: an allow naming a rule that does not exist — reported, and the
//! underlying violation stays unsuppressed.

pub struct Fixture;

impl FtlScheme for Fixture {
    fn unsuppressed_unwrap(&mut self, v: Option<u32>) -> u32 {
        // ipu-lint: allow(no-such-rule) — the rule name is wrong, so this suppresses nothing
        v.unwrap()
    }
}

//! Power-loss injection and recovery verification.
//!
//! Mid-replay, every volatile FTL structure (mapping table, owner table,
//! cache metadata, open-block rings, scheme-local packing state) is dropped
//! and rebuilt from durable flash contents — the per-page OOB records and the
//! bad-block table ([`ipu_ftl::FtlScheme::power_cycle`]). The rebuilt state is
//! checked against a **golden oracle**: the durable view of the same FTL an
//! instant before power was cut. Recovery is correct iff the two are
//! identical and the core's structural invariants still hold.

use std::collections::BTreeMap;

use ipu_flash::{FlashDevice, Nanos, Spa};
use ipu_ftl::{BlockLevel, FtlCore, Lsn, OpBatch};
use ipu_trace::{IoRequest, OpKind};

use crate::engine::ReplayConfig;
use crate::event_core::EventCore;

/// Durable view of one in-use block: what OOB-based recovery must restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSnapshot {
    pub level: BlockLevel,
    /// Monotonic open order (ISR GC tie-breaking depends on it).
    pub opened_seq: u64,
    /// `(page, subpage)` → durable write timestamp, for every subpage
    /// programmed in the current erase cycle (valid or since-invalidated).
    pub written: BTreeMap<(u32, u8), Nanos>,
    /// Pages flagged as intra-page-updated (drives degraded movement at GC).
    pub updated_pages: Vec<u32>,
}

/// The durable slice of FTL state: everything power-loss recovery must
/// reproduce *exactly*. Volatile-only details — active-block rings, GC
/// pacing gates, free-pool ordering, open-page packing state — are
/// deliberately excluded: they may legally differ after a rebuild.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurableSnapshot {
    /// LSN → `(block index, page, subpage)` of every mapped logical subpage.
    pub map: BTreeMap<Lsn, (u64, u32, u8)>,
    /// Reverse owners of every device-valid subpage.
    pub owners: BTreeMap<(u64, u32, u8), Lsn>,
    /// In-use blocks holding at least one programmed subpage.
    pub blocks: BTreeMap<u64, BlockSnapshot>,
    /// Retired blocks, ascending dense index.
    pub bad_blocks: Vec<u64>,
}

impl DurableSnapshot {
    /// First difference versus `other`, as a human-readable description.
    /// `None` when the snapshots are identical.
    pub fn diff(&self, other: &DurableSnapshot) -> Option<String> {
        if self.map != other.map {
            return Some(format!(
                "mapping tables differ ({} vs {} entries)",
                self.map.len(),
                other.map.len()
            ));
        }
        if self.owners != other.owners {
            return Some(format!(
                "owner tables differ ({} vs {} valid subpages)",
                self.owners.len(),
                other.owners.len()
            ));
        }
        if self.bad_blocks != other.bad_blocks {
            return Some(format!(
                "bad-block tables differ ({:?} vs {:?})",
                self.bad_blocks, other.bad_blocks
            ));
        }
        if self.blocks != other.blocks {
            for (idx, b) in &self.blocks {
                match other.blocks.get(idx) {
                    None => return Some(format!("block {idx} missing after rebuild")),
                    Some(o) if o != b => {
                        return Some(format!("block {idx} metadata differs: {b:?} vs {o:?}"))
                    }
                    _ => {}
                }
            }
            return Some("rebuild restored extra blocks".to_string());
        }
        None
    }
}

/// Extracts the durable view of `core` over `dev`.
pub fn durable_snapshot(core: &FtlCore, dev: &FlashDevice) -> DurableSnapshot {
    let geo = core.geometry();
    let spa_key = |spa: Spa| {
        let addr = ipu_flash::BlockAddr::new(
            spa.ppa.channel,
            spa.ppa.chip,
            spa.ppa.die,
            spa.ppa.plane,
            spa.ppa.block,
        );
        (geo.block_index(addr), spa.ppa.page, spa.subpage)
    };

    let map: BTreeMap<Lsn, (u64, u32, u8)> = core
        .map
        .iter()
        .map(|(lsn, spa)| (lsn, spa_key(spa)))
        .collect();

    // Owners of every device-valid subpage, walked in device order.
    let mut owners = BTreeMap::new();
    for idx in 0..geo.total_blocks() {
        let addr = geo.block_from_index(idx);
        let block = dev.block_by_index(idx);
        for page in 0..block.page_count() {
            let ps = block.page(page);
            for sub in 0..ps.subpage_count() {
                if ps.subpage(sub) == ipu_flash::SubpageState::Valid {
                    let spa = Spa::new(addr.page(page), sub);
                    if let Some(lsn) = core.owners.owner(idx, spa) {
                        owners.insert((idx, page, sub), lsn);
                    }
                }
            }
        }
    }

    // In-use blocks with at least one programmed subpage. (A freshly-opened
    // block that never received a program has no durable trace, so recovery
    // legitimately forgets it.)
    let spp = core.spp();
    let mut blocks = BTreeMap::new();
    for (idx, meta) in core.meta.iter() {
        let mut written = BTreeMap::new();
        let mut updated_pages = Vec::new();
        for page in 0..meta.page_count() {
            for sub in 0..spp {
                let t = meta.written_at(page, sub);
                if t > 0 {
                    written.insert((page, sub), t);
                }
            }
            if meta.page_updated(page) {
                updated_pages.push(page);
            }
        }
        if written.is_empty() {
            continue;
        }
        blocks.insert(
            idx,
            BlockSnapshot {
                level: meta.level,
                opened_seq: meta.opened_seq(),
                written,
                updated_pages,
            },
        );
    }

    let mut bad_blocks: Vec<u64> = core.bad_blocks().iter().copied().collect();
    bad_blocks.sort_unstable();

    DurableSnapshot {
        map,
        owners,
        blocks,
        bad_blocks,
    }
}

/// Outcome of a replay with one injected power loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerLossReport {
    /// Requests replayed before the cut.
    pub requests_before: u64,
    /// Requests replayed after recovery.
    pub requests_after: u64,
    /// Mapped logical subpages at the instant of power loss.
    pub mapped_subpages: u64,
    /// In-use blocks the rebuild restored.
    pub restored_blocks: u64,
    /// Background (GC/scrub) nanoseconds still queued on the event core when
    /// power was cut — in-flight rounds the loss interrupted. Recovery must
    /// hold regardless of how much background work was outstanding.
    pub interrupted_background_ns: Nanos,
}

/// Replays `requests` under `cfg`, cutting power after the first `cut`
/// requests: the FTL's volatile state is dropped, rebuilt from flash, checked
/// against the golden (pre-loss) durable snapshot and the core invariants,
/// then the remaining requests are replayed on the recovered FTL.
///
/// Returns `Err` describing the first inconsistency if recovery diverges
/// from the oracle.
pub fn replay_with_power_loss(
    cfg: &ReplayConfig,
    requests: &[IoRequest],
    cut: usize,
    trace_name: &str,
) -> Result<PowerLossReport, String> {
    let cut = cut.min(requests.len());
    let mut dev = FlashDevice::new(cfg.device.clone());
    let mut ftl = cfg.scheme.build(&mut dev, cfg.ftl.clone());

    // Each power segment runs on its own event core: the cut drops the
    // in-flight background rounds along with the volatile FTL state (their
    // flash-side effects are already durable — the FTL applies state
    // immediately, timing is the core's job).
    let run = |ftl: &mut Box<dyn ipu_ftl::FtlScheme>,
               dev: &mut FlashDevice,
               core: &mut EventCore,
               reqs: &[IoRequest]| {
        let mut batch = OpBatch::new();
        for req in reqs {
            let now = req.timestamp_ns;
            batch.clear();
            match req.op {
                OpKind::Write => ftl.on_write_into(req, now, dev, &mut batch),
                OpKind::Read => ftl.on_read_into(req, now, dev, &mut batch),
            };
            core.advance_to(now);
            core.dispatch(now, &batch, req.op);
        }
    };

    let chips = cfg.device.geometry.total_chips();
    let mut core = EventCore::new(chips, cfg.timing);
    run(&mut ftl, &mut dev, &mut core, &requests[..cut]);
    let interrupted_background_ns = core.background_backlog();

    let golden = durable_snapshot(ftl.core(), &dev);
    ftl.power_cycle(&dev);
    let rebuilt = durable_snapshot(ftl.core(), &dev);

    if let Some(diff) = golden.diff(&rebuilt) {
        return Err(format!(
            "{trace_name}/{}: recovery diverged from oracle after {cut} requests: {diff}",
            cfg.scheme
        ));
    }
    ftl.core().check_invariants(&dev).map_err(|e| {
        format!(
            "{trace_name}/{}: invariants broken after rebuild: {e}",
            cfg.scheme
        )
    })?;

    // Power is back: a fresh event core models the restarted device.
    let mut core = EventCore::new(chips, cfg.timing);
    run(&mut ftl, &mut dev, &mut core, &requests[cut..]);
    core.finish();
    ftl.core().check_invariants(&dev).map_err(|e| {
        format!(
            "{trace_name}/{}: invariants broken after resume: {e}",
            cfg.scheme
        )
    })?;

    Ok(PowerLossReport {
        requests_before: cut as u64,
        requests_after: (requests.len() - cut) as u64,
        mapped_subpages: golden.map.len() as u64,
        restored_blocks: rebuilt.blocks.len() as u64,
        interrupted_background_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipu_ftl::SchemeKind;

    fn workload(n: u64) -> Vec<IoRequest> {
        (0..n)
            .map(|i| {
                let op = if i % 5 == 4 {
                    OpKind::Read
                } else {
                    OpKind::Write
                };
                // Overwrites within a small working set force updates and GC.
                IoRequest::new(
                    i * 60_000,
                    op,
                    (i % 12) * 65536,
                    4096 + (i % 3) as u32 * 4096,
                )
            })
            .collect()
    }

    #[test]
    fn recovery_matches_oracle_for_all_schemes() {
        for scheme in SchemeKind::all_extended() {
            let cfg = ReplayConfig::small_for_tests(scheme);
            let reqs = workload(120);
            let report = replay_with_power_loss(&cfg, &reqs, 70, "t").unwrap();
            assert_eq!(report.requests_before, 70);
            assert_eq!(report.requests_after, 50);
            assert!(report.mapped_subpages > 0, "{scheme}: nothing was mapped");
            assert!(report.restored_blocks > 0, "{scheme}: nothing restored");
        }
    }

    #[test]
    fn recovery_holds_at_every_cut_point() {
        // Sweep cut positions so the loss lands mid-GC, mid-update, on open
        // blocks, etc.
        let reqs = workload(90);
        let mut interrupted_any = false;
        for cut in (0..=90).step_by(9) {
            for scheme in SchemeKind::all() {
                let cfg = ReplayConfig::small_for_tests(scheme);
                let report = replay_with_power_loss(&cfg, &reqs, cut, "sweep").unwrap();
                interrupted_any |= report.interrupted_background_ns > 0;
            }
        }
        // The sweep must actually exercise a loss that interrupts queued
        // background work — otherwise the mid-GC cut path is untested.
        assert!(
            interrupted_any,
            "no cut in the sweep interrupted background work"
        );
    }

    #[test]
    fn recovery_matches_oracle_under_faults() {
        // Program/erase failures retire blocks; the bad-block table and the
        // remapped data must both survive the power cycle.
        for scheme in SchemeKind::all() {
            let mut cfg = ReplayConfig::small_for_tests(scheme);
            let (fault, retry) = ipu_flash::FaultProfile::named("light").unwrap();
            cfg.device.fault = fault;
            cfg.device.retry = retry;
            let reqs = workload(150);
            replay_with_power_loss(&cfg, &reqs, 100, "faulty").unwrap();
        }
    }

    #[test]
    fn snapshot_diff_reports_divergence() {
        let cfg = ReplayConfig::small_for_tests(SchemeKind::Ipu);
        let reqs = workload(40);
        let mut dev = FlashDevice::new(cfg.device.clone());
        let mut ftl = cfg.scheme.build(&mut dev, cfg.ftl.clone());
        for req in &reqs {
            match req.op {
                OpKind::Write => ftl.on_write(req, req.timestamp_ns, &mut dev),
                OpKind::Read => ftl.on_read(req, req.timestamp_ns, &mut dev),
            };
        }
        let a = durable_snapshot(ftl.core(), &dev);
        assert_eq!(a.diff(&a), None);
        let mut b = a.clone();
        let (&lsn, _) = b.map.iter().next().expect("workload maps data");
        b.map.remove(&lsn);
        assert!(a.diff(&b).unwrap().contains("mapping tables differ"));
    }
}

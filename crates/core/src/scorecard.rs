//! The reproduction scorecard: the paper's quantitative claims encoded as
//! data, checked programmatically against a measured [`MatrixResult`].
//!
//! This is the self-checking heart of the reproduction: instead of eyeballing
//! tables, every claim from the paper's evaluation gets a machine-checkable
//! predicate over the measured matrix, with three possible outcomes —
//! reproduced, partially reproduced (right direction, different magnitude),
//! or deviation. EXPERIMENTS.md is the prose rendering of this scorecard;
//! the `reproduction_scorecard` bench prints it, and integration tests assert
//! the claims marked as must-hold.

use ipu_ftl::SchemeKind;
use ipu_sim::SimReport;
use serde::{Deserialize, Serialize};

use crate::experiment::MatrixResult;
use crate::report::TextTable;

/// Outcome of checking one claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Direction and rough magnitude match the paper.
    Reproduced,
    /// Direction matches; magnitude differs beyond the tolerance.
    Partial,
    /// Direction differs (discussed in EXPERIMENTS.md).
    Deviation,
}

impl Outcome {
    pub fn symbol(self) -> &'static str {
        match self {
            Outcome::Reproduced => "REPRODUCED",
            Outcome::Partial => "PARTIAL",
            Outcome::Deviation => "DEVIATION",
        }
    }
}

/// One checked claim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClaimResult {
    /// Where the paper makes the claim.
    pub source: &'static str,
    /// The claim, in one sentence.
    pub claim: &'static str,
    /// The paper's number (ratio or value), when it gives one.
    pub paper_value: f64,
    /// Our measured number on the same definition.
    pub measured: f64,
    pub outcome: Outcome,
}

/// Metric extractors (geometric-mean ratios over all traces in the matrix).
fn ratio(m: &MatrixResult, a: SchemeKind, b: SchemeKind, f: impl Fn(&SimReport) -> f64) -> f64 {
    m.mean_ratio(a, b, f)
}

/// Checks a ratio claim: `measured` must be on the same side of 1.0 as
/// `paper`; within `tol` (relative to the paper's distance from 1.0) it
/// counts as reproduced, otherwise partial.
fn check_ratio(
    source: &'static str,
    claim: &'static str,
    paper: f64,
    measured: f64,
    tol: f64,
) -> ClaimResult {
    let same_side = (paper - 1.0).signum() == (measured - 1.0).signum()
        || (paper - 1.0).abs() < 1e-9
        || (measured - 1.0).abs() < 0.02; // a near-tie doesn't contradict a small claim
    let close = (measured - paper).abs() <= tol;
    let outcome = if same_side && close {
        Outcome::Reproduced
    } else if same_side {
        Outcome::Partial
    } else {
        Outcome::Deviation
    };
    ClaimResult {
        source,
        claim,
        paper_value: paper,
        measured,
        outcome,
    }
}

/// Checks an ordering claim (no paper magnitude): `holds` decides
/// reproduced/deviation directly.
fn check_order(
    source: &'static str,
    claim: &'static str,
    paper: f64,
    measured: f64,
    holds: bool,
) -> ClaimResult {
    ClaimResult {
        source,
        claim,
        paper_value: paper,
        measured,
        outcome: if holds {
            Outcome::Reproduced
        } else {
            Outcome::Deviation
        },
    }
}

/// Evaluates every encoded claim against a measured matrix (which must
/// contain all three of the paper's schemes).
pub fn evaluate(m: &MatrixResult) -> Vec<ClaimResult> {
    let overall = |r: &SimReport| r.overall_latency.mean_ns();
    let writes = |r: &SimReport| r.write_latency.mean_ns();
    let reads = |r: &SimReport| r.read_latency.mean_ns();
    let err = |r: &SimReport| r.read_error_rate();
    let util = |r: &SimReport| r.gc_page_utilization();
    let slc_erases = |r: &SimReport| r.wear.slc_erases as f64;
    let mapping = |r: &SimReport| r.mapping.total() as f64;
    let mlc_share = |r: &SimReport| {
        r.ftl.host_subpages_to_mlc as f64
            / (r.ftl.host_subpages_to_slc + r.ftl.host_subpages_to_mlc).max(1) as f64
    };
    use SchemeKind::{Baseline, Ipu, Mga};

    vec![
        // §4.2.1 / Figure 5.
        check_ratio(
            "§4.2.1 / Fig. 5",
            "MGA reduces overall I/O time vs Baseline (−6.4%)",
            0.936,
            ratio(m, Mga, Baseline, overall),
            0.10,
        ),
        check_ratio(
            "§4.2.1 / Fig. 5",
            "IPU reduces overall I/O time vs Baseline (−14.9%)",
            0.851,
            ratio(m, Ipu, Baseline, overall),
            0.10,
        ),
        check_ratio(
            "§4.2.1 / Fig. 5",
            "IPU reduces write latency vs MGA (−17.9%)",
            0.821,
            ratio(m, Ipu, Mga, writes),
            0.10,
        ),
        check_ratio(
            "§4.2.1 / Fig. 5",
            "IPU reduces read latency vs MGA (up to −6.3%)",
            0.937,
            ratio(m, Ipu, Mga, reads),
            0.07,
        ),
        // §4.2.2 / Figure 8.
        check_ratio(
            "§4.2.2 / Fig. 8",
            "MGA raises read error rate vs Baseline (+14.0%)",
            1.140,
            ratio(m, Mga, Baseline, err),
            0.10,
        ),
        check_ratio(
            "§4.2.2 / Fig. 8",
            "IPU raises read error rate vs Baseline only slightly (+3.5%)",
            1.035,
            ratio(m, Ipu, Baseline, err),
            0.05,
        ),
        check_order(
            "§4.2.2 / Fig. 8",
            "Error-rate ordering Baseline < IPU < MGA on every trace",
            f64::NAN,
            f64::NAN,
            per_trace_ordering(m, err),
        ),
        // §4.3.1 / Figure 9 (ratios of utilization).
        check_ratio(
            "§4.3.1 / Fig. 9",
            "MGA page utilization ≈ 99.9% (vs Baseline 52.8% → ratio 1.89)",
            0.999 / 0.528,
            ratio(m, Mga, Baseline, util),
            0.50,
        ),
        check_order(
            "§4.3.1 / Fig. 9",
            "Utilization ordering MGA > IPU > Baseline on every trace",
            f64::NAN,
            f64::NAN,
            // per_trace_ordering checks Baseline < IPU < MGA on the metric.
            // Traces whose cache never filled (no GC ⇒ no utilization data)
            // carry no evidence either way and are skipped.
            per_trace_ordering_where(m, util, |r| r.ftl.gc_runs_slc > 0),
        ),
        // §4.3.2 / Figure 10(a).
        check_order(
            "§4.3.2 / Fig. 10a",
            "SLC erases: MGA fewest, IPU at most Baseline, on every trace",
            f64::NAN,
            f64::NAN,
            slc_erase_ordering(m),
        ),
        // §4.2.1 / Figure 6 (we read it as the host-write split).
        check_order(
            "§4.2.1 / Fig. 6",
            "IPU completes a smaller share of host writes in MLC than Baseline",
            f64::NAN,
            f64::NAN,
            mean_less(m, Ipu, Baseline, mlc_share),
        ),
        // §4.4.1 / Figure 11.
        check_ratio(
            "§4.4.1 / Fig. 11",
            "IPU mapping-table overhead vs Baseline ≈ +0.84% (< 1%)",
            1.0084,
            ratio(m, Ipu, Baseline, mapping),
            0.009,
        ),
        check_ratio(
            "§4.4.1 / Fig. 11",
            "MGA mapping-table overhead vs Baseline ≈ +23.7%",
            1.237,
            ratio(m, Mga, Baseline, mapping),
            0.22,
        ),
        // Figure 10(a) magnitude-free cross-check via erase ratio.
        check_ratio(
            "§4.3.2 / Fig. 10a",
            "IPU erases SLC blocks more than MGA (better-packed MGA erases less)",
            2.0, // the paper's bars show a clear multiple; exact value unreadable
            ratio(m, Ipu, Mga, slc_erases),
            1.5,
        ),
        // Extension: the fault/recovery subsystem must be inert when no
        // faults are injected — the paper's evaluation assumes a clean medium.
        check_order(
            "ext / fault model",
            "No uncorrectable reads, failed requests or retired blocks under the nominal error model",
            f64::NAN,
            m.reports
                .iter()
                .flatten()
                .map(|r| (r.ftl.host_uncorrectable_reads + r.ftl.retired_blocks) as f64)
                .sum(),
            m.reports.iter().flatten().all(|r| {
                r.ftl.host_uncorrectable_reads == 0
                    && r.ftl.retired_blocks == 0
                    && r.ftl.data_loss_events == 0
                    && r.reliability.failed == 0
                    && r.reliability.total == r.reliability.success
            }),
        ),
    ]
}

/// True iff `f` increases Baseline → IPU → MGA on *every* trace row.
fn per_trace_ordering(m: &MatrixResult, f: impl Fn(&SimReport) -> f64) -> bool {
    per_trace_ordering_where(m, f, |_| true)
}

/// [`per_trace_ordering`] restricted to rows where `include` holds for every
/// scheme (rows without evidence — e.g. no GC activity — are skipped).
fn per_trace_ordering_where(
    m: &MatrixResult,
    f: impl Fn(&SimReport) -> f64,
    include: impl Fn(&SimReport) -> bool,
) -> bool {
    let (Some(b), Some(g), Some(i)) = (
        m.scheme_index(SchemeKind::Baseline),
        m.scheme_index(SchemeKind::Mga),
        m.scheme_index(SchemeKind::Ipu),
    ) else {
        return false;
    };
    m.reports
        .iter()
        .filter(|row| include(&row[b]) && include(&row[g]) && include(&row[i]))
        .all(|row| {
            let vb = f(&row[b]);
            let vi = f(&row[i]);
            let vg = f(&row[g]);
            vb < vi && vi < vg
        })
}

/// True iff MGA ≤ IPU ≤ Baseline on SLC erases for every trace (ties allowed).
fn slc_erase_ordering(m: &MatrixResult) -> bool {
    let (Some(b), Some(g), Some(i)) = (
        m.scheme_index(SchemeKind::Baseline),
        m.scheme_index(SchemeKind::Mga),
        m.scheme_index(SchemeKind::Ipu),
    ) else {
        return false;
    };
    m.reports.iter().all(|row| {
        row[g].wear.slc_erases <= row[i].wear.slc_erases
            && row[i].wear.slc_erases <= row[b].wear.slc_erases
    })
}

/// True iff the mean of `f` over traces is lower for `a` than for `b`.
fn mean_less(
    m: &MatrixResult,
    a: SchemeKind,
    b: SchemeKind,
    f: impl Fn(&SimReport) -> f64,
) -> bool {
    let (Some(ai), Some(bi)) = (m.scheme_index(a), m.scheme_index(b)) else {
        return false;
    };
    let n = m.reports.len() as f64;
    let ma: f64 = m.reports.iter().map(|row| f(&row[ai])).sum::<f64>() / n;
    let mb: f64 = m.reports.iter().map(|row| f(&row[bi])).sum::<f64>() / n;
    ma < mb
}

/// Renders the scorecard as an aligned table.
pub fn render(results: &[ClaimResult]) -> String {
    let mut t = TextTable::new(&["Source", "Claim", "paper", "measured", "outcome"]);
    for r in results {
        let fmt = |v: f64| {
            if v.is_nan() {
                "—".to_string()
            } else {
                format!("{v:.3}")
            }
        };
        t.row(vec![
            r.source.to_string(),
            r.claim.to_string(),
            fmt(r.paper_value),
            fmt(r.measured),
            r.outcome.symbol().to_string(),
        ]);
    }
    let reproduced = results
        .iter()
        .filter(|r| r.outcome == Outcome::Reproduced)
        .count();
    let partial = results
        .iter()
        .filter(|r| r.outcome == Outcome::Partial)
        .count();
    let deviation = results
        .iter()
        .filter(|r| r.outcome == Outcome::Deviation)
        .count();
    format!(
        "Reproduction scorecard — the paper's claims checked against this run\n{}\n\
         {reproduced} reproduced · {partial} partial · {deviation} deviations \
         (see EXPERIMENTS.md for the discussion of each)\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_check_classifies_correctly() {
        // Same side, close → reproduced.
        let r = check_ratio("s", "c", 0.90, 0.93, 0.05);
        assert_eq!(r.outcome, Outcome::Reproduced);
        // Same side, far → partial.
        let r = check_ratio("s", "c", 0.85, 0.98, 0.05);
        assert_eq!(r.outcome, Outcome::Partial);
        // Opposite side → deviation.
        let r = check_ratio("s", "c", 0.85, 1.15, 0.05);
        assert_eq!(r.outcome, Outcome::Deviation);
        // A near-tie measurement never counts as contradicting.
        let r = check_ratio("s", "c", 0.94, 1.005, 0.10);
        assert_ne!(r.outcome, Outcome::Deviation);
    }

    #[test]
    fn scorecard_runs_on_a_small_matrix() {
        let mut cfg = crate::ExperimentConfig::scaled(0.02);
        cfg.traces = vec![ipu_trace::PaperTrace::Ts0];
        cfg.threads = 1;
        let m = crate::experiment::run_main_matrix(&cfg);
        let results = evaluate(&m);
        assert!(results.len() >= 12);
        let text = render(&results);
        assert!(text.contains("scorecard"));
        assert!(text.contains("REPRODUCED"));
        // The hard orderings (Figures 8, 9, 10a) must hold even at 2% scale.
        for r in &results {
            if r.claim.contains("ordering") {
                assert_eq!(
                    r.outcome,
                    Outcome::Reproduced,
                    "ordering claim failed: {} ({})",
                    r.claim,
                    r.source
                );
            }
        }
    }
}

//! Fault-injection recovery properties and the zero-fault regression.
//!
//! * Under random program/erase fault rates (with the retry ladder and
//!   bad-block remapping armed), no *acknowledged* write is ever silently
//!   lost: every acked LSN either stays mapped to a valid subpage or its loss
//!   is accounted in `data_loss_events`.
//! * With fault injection disabled — the default, and the explicit "none"
//!   profile — every scheme behaves bit-for-bit identically to the
//!   pre-fault-model simulator.

use std::collections::HashSet;

use ipu_flash::{DeviceConfig, FaultProfile, FaultScope, FlashDevice, RetryLadder, SubpageState};
use ipu_ftl::{FtlConfig, ReqStatus, SchemeKind};
use ipu_sim::{replay, ReplayConfig};
use ipu_trace::{IoRequest, OpKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Op {
    write: bool,
    slot: u64,
    size_subpages: u8,
}

fn workload() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..12, 1u8..=4).prop_map(|(write, slot, size_subpages)| Op {
            write,
            slot,
            size_subpages,
        }),
        1..120,
    )
}

/// Replays `ops` under a program/erase fault profile and checks the
/// no-silent-loss property.
fn check_no_acked_loss(
    kind: SchemeKind,
    ops: &[Op],
    seed: u64,
    program_fail: f64,
    erase_fail: f64,
) -> Result<(), TestCaseError> {
    let mut device = DeviceConfig::small_for_tests();
    device.fault = FaultProfile {
        seed,
        program_fail,
        erase_fail,
        read_fail: 0.0,
        rber_spike: 0.0,
        rber_spike_factor: 1.0,
        scope: FaultScope::Global,
    };
    device.retry = RetryLadder::standard();
    let mut dev = FlashDevice::new(device);
    let cfg = FtlConfig {
        slc_ratio: 0.2,
        ..FtlConfig::default()
    };
    let mut ftl = kind.build(&mut dev, cfg);

    let mut acked: HashSet<u64> = HashSet::new();
    for (t, op) in ops.iter().enumerate() {
        let req = IoRequest::new(
            t as u64 * 1000,
            if op.write {
                OpKind::Write
            } else {
                OpKind::Read
            },
            op.slot * 65536,
            op.size_subpages as u32 * 4096,
        );
        let batch = if op.write {
            ftl.on_write(&req, req.timestamp_ns, &mut dev)
        } else {
            ftl.on_read(&req, req.timestamp_ns, &mut dev)
        };
        if op.write {
            match batch.status {
                // A failed write was never acknowledged; its LSNs carry no
                // durability promise (an earlier acked version may also have
                // been invalidated mid-rewrite, so drop them from the set).
                ReqStatus::Failed => {
                    for lsn in req.subpage_span() {
                        acked.remove(&lsn);
                    }
                }
                _ => acked.extend(req.subpage_span()),
            }
        }
    }

    let core = ftl.core();
    core.check_invariants(&dev)
        .map_err(|e| TestCaseError::fail(format!("{kind:?}: {e}")))?;

    // Every acked LSN is still mapped to a device-valid subpage, unless its
    // loss was explicitly accounted (GC relocation ran out of placements).
    let mut lost = 0u64;
    for &lsn in &acked {
        match core.map.lookup(lsn) {
            None => lost += 1,
            Some(spa) => {
                let page = dev.block(spa.ppa.block_addr()).page(spa.ppa.page);
                prop_assert_eq!(
                    page.subpage(spa.subpage),
                    SubpageState::Valid,
                    "{:?}: acked lsn {} maps to a non-valid subpage",
                    kind,
                    lsn
                );
            }
        }
    }
    prop_assert!(
        lost <= core.stats.data_loss_events,
        "{kind:?}: {lost} acked LSNs vanished but only {} data-loss events accounted",
        core.stats.data_loss_events
    );
    // Failed program attempts must have retired blocks (the remap path ran).
    if core.stats.program_retries > 0 {
        prop_assert!(
            core.stats.retired_blocks > 0,
            "{kind:?}: program retries without retirement"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No acked-data loss under program/erase faults with retry + remap, for
    /// each of the paper's schemes.
    #[test]
    fn baseline_never_loses_acked_data(
        ops in workload(), seed in any::<u64>(),
        pf in 0.0f64..0.05, ef in 0.0f64..0.05,
    ) {
        check_no_acked_loss(SchemeKind::Baseline, &ops, seed, pf, ef)?;
    }

    #[test]
    fn mga_never_loses_acked_data(
        ops in workload(), seed in any::<u64>(),
        pf in 0.0f64..0.05, ef in 0.0f64..0.05,
    ) {
        check_no_acked_loss(SchemeKind::Mga, &ops, seed, pf, ef)?;
    }

    #[test]
    fn ipu_never_loses_acked_data(
        ops in workload(), seed in any::<u64>(),
        pf in 0.0f64..0.05, ef in 0.0f64..0.05,
    ) {
        check_no_acked_loss(SchemeKind::Ipu, &ops, seed, pf, ef)?;
    }
}

fn regression_workload() -> Vec<IoRequest> {
    let mut reqs = Vec::new();
    for i in 0..200u64 {
        let op = if i % 4 == 3 {
            OpKind::Read
        } else {
            OpKind::Write
        };
        reqs.push(IoRequest::new(
            i * 80_000,
            op,
            (i % 16) * 65536,
            4096 + (i % 4) as u32 * 4096,
        ));
    }
    reqs
}

/// The fault subsystem must be invisible when inert: a default config and an
/// explicit "none" profile produce bit-identical reports.
#[test]
fn zero_fault_replay_is_bit_identical() {
    let reqs = regression_workload();
    for kind in SchemeKind::all() {
        let base = ReplayConfig::small_for_tests(kind);
        let mut none = base.clone();
        let (fault, retry) = FaultProfile::named("none").unwrap();
        none.device.fault = fault;
        none.device.retry = retry;

        let a = replay(&base, &reqs, "t");
        let b = replay(&none, &reqs, "t");
        assert_eq!(a.ftl, b.ftl, "{kind}: FTL stats diverge under inert faults");
        assert_eq!(a.device, b.device);
        assert_eq!(a.wear, b.wear);
        assert_eq!(a.overall_latency.sum_ns(), b.overall_latency.sum_ns());
        assert_eq!(a.reliability, b.reliability);

        // No fault machinery engages: all requests succeed, nothing retires.
        assert_eq!(a.reliability.failed, 0, "{kind}");
        assert_eq!(a.reliability.recovered, 0, "{kind}");
        assert_eq!(a.reliability.total, a.reliability.success);
        assert_eq!(a.ftl.read_retries, 0);
        assert_eq!(a.ftl.retired_blocks, 0);
        assert_eq!(a.ftl.data_loss_events, 0);
        assert_eq!(a.ftl.host_uncorrectable_reads, 0);
    }
}

/// The light profile exercises the recovery paths without losing data: reads
/// recover through the retry ladder and no data-loss events accrue.
#[test]
fn light_profile_recovers_reads_without_loss() {
    // read_fail is 1e-3 in the light profile: a few thousand reads make
    // injected failures certain in this deterministic draw stream.
    let reqs: Vec<IoRequest> = (0..6000u64)
        .map(|i| {
            let op = if i % 2 == 1 {
                OpKind::Read
            } else {
                OpKind::Write
            };
            // Write/read pairs share a slot so every read hits mapped data.
            IoRequest::new(
                i * 80_000,
                op,
                (i / 2 % 16) * 65536,
                4096 + (i % 4) as u32 * 4096,
            )
        })
        .collect();
    let mut recovered_somewhere = false;
    for kind in SchemeKind::all() {
        let mut cfg = ReplayConfig::small_for_tests(kind);
        let (fault, retry) = FaultProfile::named("light").unwrap();
        cfg.device.fault = fault;
        cfg.device.retry = retry;
        let r = replay(&cfg, &reqs, "t");
        assert_eq!(
            r.reliability.failed, 0,
            "{kind}: light profile failed requests"
        );
        assert_eq!(r.ftl.data_loss_events, 0, "{kind}: light profile lost data");
        recovered_somewhere |= r.ftl.recovered_reads > 0;
    }
    assert!(
        recovered_somewhere,
        "light profile never exercised the retry ladder"
    );
}

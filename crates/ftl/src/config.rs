//! FTL configuration.

use serde::{Deserialize, Serialize};

use crate::wear_leveling::WearLevelingConfig;

/// Background scrub/refresh policy: SLC pages whose accumulated disturb
/// pushes the expected raw bit errors of any valid subpage past a fraction
/// of the ECC correction capability are rewritten to fresh pages before they
/// become uncorrectable. Disabled by default (the paper's evaluation has no
/// scrubber); the fault-injection experiments enable it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScrubConfig {
    /// Whether the scrub pass runs at all.
    pub enabled: bool,
    /// Rewrite threshold as a fraction of ECC correction capability: a page
    /// is refreshed when any valid subpage's expected raw bit errors exceed
    /// `rber_watermark × correctable_bits`.
    pub rber_watermark: f64,
    /// Maximum pages rewritten per scrub pass (bounds foreground stalls).
    pub max_pages_per_pass: u32,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            enabled: false,
            rber_watermark: 0.5,
            max_pages_per_pass: 4,
        }
    }
}

impl ScrubConfig {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.rber_watermark && self.rber_watermark <= 1.0) {
            return Err(format!(
                "scrub rber_watermark {} out of (0,1]",
                self.rber_watermark
            ));
        }
        if self.max_pages_per_pass == 0 {
            return Err("scrub max_pages_per_pass must be positive".into());
        }
        Ok(())
    }
}

/// FTL-level policy parameters (paper Table 2 plus scheme knobs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FtlConfig {
    /// Fraction of all blocks operated in SLC-mode (Table 2: 5%).
    pub slc_ratio: f64,
    /// GC triggers when the free fraction of a region's blocks drops below
    /// this (Table 2: 5%).
    pub gc_threshold: f64,
    /// Maximum GC victims processed per write chunk. The paper's Algorithm 1
    /// runs a single select/move/erase cycle per request; values above 1 make
    /// GC more aggressive at the cost of foreground interference.
    pub gc_rounds_per_write: u32,
    /// Maximum open (partially-filled, partially-programmable) pages MGA keeps
    /// as packing candidates — models the controller's write-buffer bound.
    pub mga_open_page_limit: usize,
    /// Active blocks kept open per level, page allocations round-robin across
    /// them. Models SSDsim's dynamic allocation striping writes over
    /// channels; bounded by the number of planes at runtime.
    pub write_parallelism: usize,
    /// Latency charged for a read of a logical address the trace never wrote
    /// (pre-trace-resident data, served from the MLC region).
    pub serve_unmapped_reads_from_mlc: bool,
    /// IPU ablation: use the paper's ISR GC policy (Equations 1–2). When
    /// false, IPU falls back to greedy subpage-granular victim selection.
    pub ipu_use_isr_gc: bool,
    /// IPU ablation: highest SLC cache level (`block_flag`) data can climb to.
    /// The paper uses 3 (Work/Monitor/Hot); 1 collapses the hierarchy to a
    /// single Work level.
    pub ipu_max_level: u8,
    /// Static wear-leveling policy (Table 2: "Wear-leveling: static").
    pub wear_leveling: WearLevelingConfig,
    /// Background scrub/refresh of disturb-degraded SLC pages.
    #[serde(default)]
    pub scrub: ScrubConfig,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            slc_ratio: 0.05,
            gc_threshold: 0.05,
            gc_rounds_per_write: 1,
            mga_open_page_limit: 64,
            write_parallelism: 16,
            serve_unmapped_reads_from_mlc: true,
            ipu_use_isr_gc: true,
            ipu_max_level: 3,
            wear_leveling: WearLevelingConfig::default(),
            scrub: ScrubConfig::default(),
        }
    }
}

impl FtlConfig {
    /// Number of SLC-mode blocks per plane given `blocks_per_plane`.
    ///
    /// The SLC region is spread evenly across planes so the cache enjoys the
    /// device's full channel parallelism (as SSDsim's hybrid configs do).
    pub fn slc_blocks_per_plane(&self, blocks_per_plane: u32) -> u32 {
        ((blocks_per_plane as f64 * self.slc_ratio).ceil() as u32)
            .clamp(1, blocks_per_plane.saturating_sub(1).max(1))
    }

    /// GC trigger threshold in blocks for a region of `region_blocks` blocks.
    pub fn gc_threshold_blocks(&self, region_blocks: u64) -> u64 {
        ((region_blocks as f64 * self.gc_threshold).ceil() as u64).max(1)
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.slc_ratio && self.slc_ratio < 1.0) {
            return Err(format!("slc_ratio {} out of (0,1)", self.slc_ratio));
        }
        if !(0.0 < self.gc_threshold && self.gc_threshold < 1.0) {
            return Err(format!("gc_threshold {} out of (0,1)", self.gc_threshold));
        }
        if self.mga_open_page_limit == 0 {
            return Err("mga_open_page_limit must be positive".into());
        }
        if self.write_parallelism == 0 {
            return Err("write_parallelism must be positive".into());
        }
        if self.gc_rounds_per_write == 0 {
            return Err("gc_rounds_per_write must be positive".into());
        }
        if !(1..=3).contains(&self.ipu_max_level) {
            return Err(format!("ipu_max_level {} out of 1..=3", self.ipu_max_level));
        }
        self.wear_leveling.validate()?;
        self.scrub.validate()?;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // mutate-then-validate idiom
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = FtlConfig::default();
        assert_eq!(c.slc_ratio, 0.05);
        assert_eq!(c.gc_threshold, 0.05);
        c.validate().unwrap();
    }

    #[test]
    fn slc_blocks_per_plane_matches_paper_scale() {
        let c = FtlConfig::default();
        // 1024 blocks/plane × 5% = 52 blocks/plane (rounded up); over 64
        // planes that is 3328 blocks ≈ 5.08% of 65,536.
        assert_eq!(c.slc_blocks_per_plane(1024), 52);
        // Tiny planes still get at least one SLC block but never all blocks.
        assert_eq!(c.slc_blocks_per_plane(4), 1);
        assert_eq!(c.slc_blocks_per_plane(1), 1);
    }

    #[test]
    fn gc_threshold_has_a_floor() {
        let c = FtlConfig::default();
        assert_eq!(c.gc_threshold_blocks(3328), 167);
        assert_eq!(c.gc_threshold_blocks(4), 1);
        assert_eq!(c.gc_threshold_blocks(0), 1);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = FtlConfig::default();
        c.slc_ratio = 0.0;
        assert!(c.validate().is_err());
        let mut c = FtlConfig::default();
        c.gc_threshold = 1.0;
        assert!(c.validate().is_err());
        let mut c = FtlConfig::default();
        c.mga_open_page_limit = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn scrub_defaults_are_off_and_valid() {
        let s = ScrubConfig::default();
        assert!(!s.enabled);
        s.validate().unwrap();
        let mut s = ScrubConfig::default();
        s.rber_watermark = 0.0;
        assert!(s.validate().is_err());
        let mut s = ScrubConfig::default();
        s.max_pages_per_pass = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn config_without_scrub_field_deserializes() {
        // Configs saved before the fault model gained the scrub knob.
        let json = serde_json::to_string(&FtlConfig::default()).unwrap();
        let back: FtlConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, FtlConfig::default());
    }
}

//! `cargo bench -p ipu-bench --bench extension_ipu_plus`
//!
//! Evaluates this repo's implementation of the paper's §5 future work —
//! **IPU+**, intra-page update with adaptive cold-data packing — against the
//! paper's three schemes. The paper's stated goal: "improving the page
//! utilization without a noticeable error increase". The table reports
//! exactly those two axes plus latency and endurance.

use ipu_core::experiment;
use ipu_core::ftl::SchemeKind;
use ipu_core::report::TextTable;

fn main() {
    let mut cfg = ipu_bench::bench_config();
    cfg.schemes = SchemeKind::all_extended().to_vec();

    let mut table = TextTable::new(&[
        "Trace",
        "Scheme",
        "overall(ms)",
        "read err",
        "GC page util",
        "SLC erases",
        "MLC host subpages",
    ]);
    for &trace in &cfg.traces {
        for &scheme in &cfg.schemes {
            let r = experiment::run_one(&cfg, trace, scheme);
            table.row(vec![
                trace.name().to_string(),
                scheme.label().to_string(),
                format!("{:.4}", r.overall_latency.mean_ms()),
                format!("{:.3e}", r.read_error_rate()),
                format!("{:.1}%", r.gc_page_utilization() * 100.0),
                r.wear.slc_erases.to_string(),
                r.ftl.host_subpages_to_mlc.to_string(),
            ]);
        }
    }
    println!("Extension — IPU+ (paper §5 future work: cold-data packing) vs the paper's schemes");
    println!("{}", table.render());
    println!(
        "Success criteria from the paper: IPU+ utilization > IPU's, with read \
         error rate staying near IPU's (well under MGA's)."
    );
}

//! `cargo bench -p ipu-bench --bench ext_qd_sweep`
//!
//! Extension (not in the paper): the closed-loop host-interface queue-depth
//! sweep. Replays ts0 through the `ipu-host` multi-queue front end at
//! QD ∈ {1, 4, 16, 64} under Baseline, MGA and IPU with four equal-weight
//! tenants, and prints per-tenant service latency, admission stall, queue
//! occupancy and fairness. The open-loop figures show how much faster IPU
//! serves each request; this sweep shows what that buys the host once
//! backpressure is modelled: lower stall and deeper effective queues.

use ipu_core::ftl::SchemeKind;
use ipu_core::host::TenantSpec;
use ipu_core::trace::PaperTrace;
use ipu_core::{QdSweepHostSpec, PAPER_QD_POINTS};

fn main() {
    let mut cfg = ipu_bench::bench_config();
    cfg.schemes = vec![SchemeKind::Baseline, SchemeKind::Mga, SchemeKind::Ipu];
    let host = QdSweepHostSpec {
        tenants: TenantSpec::parse_list("4").expect("valid tenant count"),
        ..QdSweepHostSpec::default()
    };
    let sweep = ipu_bench::qd_sweep_cached(&cfg, PaperTrace::Ts0, &host, &PAPER_QD_POINTS);
    println!("{}", ipu_core::report::render_qd_sweep(&sweep));
    println!(
        "(Closed-loop extension: arrivals shift under backpressure, so latencies are\n\
         host-visible submission→completion times, not open-loop queueing artefacts.)"
    );
}

//! Offline stand-in for the `criterion` crate.
//!
//! Provides the group/`bench_function` surface as a plain timing harness:
//! each benchmark is warmed up once, then timed for `sample_size` samples,
//! and the mean/min/max per-iteration wall time is printed. There is no
//! statistical analysis, HTML report, or baseline comparison.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Mirrors the builder method real criterion exposes; kept for source
    /// compatibility.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.default_sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.default_sample_size;
        run_benchmark(name, samples, f);
        self
    }

    /// Real criterion's post-run hook; nothing to finalize here.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    /// Iterations folded into each sample.
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per call of the closure passed
    /// to `bench_function`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_benchmark(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    // Warm-up sample, discarded.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name}: no samples recorded (b.iter never called)");
        return;
    }
    let n = b.samples.len() as u32;
    let total: Duration = b.samples.iter().sum();
    let mean = total / n;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    println!("{name}: mean {mean:?}  min {min:?}  max {max:?}  ({n} samples)");
}

/// Declares a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        // 1 warm-up + 3 samples, one iteration each.
        assert_eq!(calls, 4);
    }
}

//! `cargo bench -p ipu-bench --bench fig14_ber_vs_pe`
//!
//! Regenerates the paper's Figure 14 — read error rate under varied P/E
//! cycles (§4.5). Shares the cached sweep with `fig13_latency_vs_pe`.

fn main() {
    let cfg = ipu_bench::bench_config();
    let sweep = ipu_bench::pe_sweep_cached(&cfg, &ipu_core::PAPER_PE_POINTS);
    println!("{}", ipu_core::report::render_pe_sweep(&sweep));
    println!("(Figure 14 reads the error-rate column; Figure 13 the overall-latency column.)");
}

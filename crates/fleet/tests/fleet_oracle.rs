//! Pins the fleet layer to its oracles.
//!
//! * **Equivalence**: a 1-device fleet with 1 tenant at QD=1 is the plain
//!   closed-loop replay — the per-device report is bit-identical under
//!   serialization, and the fleet aggregates restate it exactly.
//! * **Determinism**: two identical fleet runs on 4 worker threads produce
//!   byte-identical `FleetReport` JSON, for every shard policy.

use ipu_core::{ExperimentConfig, TraceSet};
use ipu_fleet::{run_fleet, run_fleet_detailed, FleetSpec, ShardPolicy};
use ipu_ftl::SchemeKind;
use ipu_host::HostConfig;
use ipu_sim::replay_closed_loop;
use ipu_trace::{IoRequest, OpKind, PaperTrace};

fn base_workload(n: u64) -> Vec<IoRequest> {
    (0..n)
        .map(|i| {
            let op = if i % 4 == 3 {
                OpKind::Read
            } else {
                OpKind::Write
            };
            IoRequest::new(i * 1_500, op, (i % 96) * 65_536, 4096)
        })
        .collect()
}

#[test]
fn one_device_one_tenant_qd1_is_bit_identical_to_replay_closed_loop() {
    let mut cfg = ExperimentConfig::scaled(0.002);
    cfg.threads = 2;
    let base = base_workload(80);

    for scheme in SchemeKind::all_extended() {
        let spec = FleetSpec::new(1, 1, ShardPolicy::Hash).with_queue_depth(1);
        let (fleet, per_device) = run_fleet_detailed(&cfg, scheme, "ts0", &base, &spec);

        let oracle = replay_closed_loop(
            &cfg.replay_config(scheme),
            &HostConfig::single(1),
            std::slice::from_ref(&base),
            "ts0",
        );

        // The device report IS the oracle report, byte for byte.
        let fleet_device = serde_json::to_string(per_device[0].as_ref().unwrap()).unwrap();
        let oracle_json = serde_json::to_string(&oracle).unwrap();
        assert_eq!(
            fleet_device, oracle_json,
            "{scheme}: device report diverges"
        );

        // And the merged aggregates restate it exactly.
        assert_eq!(fleet.total_ops, oracle.host.total_completed());
        let pooled = oracle.host.overall_service_latency();
        assert_eq!(fleet.service_latency.count(), pooled.count());
        assert_eq!(fleet.service_latency.sum_ns(), pooled.sum_ns());
        assert_eq!(fleet.p99_ns, pooled.percentile_ns(99.0));
        assert_eq!(fleet.p999_ns, pooled.percentile_ns(99.9));
        assert_eq!(fleet.horizon_ns, oracle.host.horizon_ns);
        assert_eq!(
            serde_json::to_string(&fleet.reliability).unwrap(),
            serde_json::to_string(&oracle.sim.reliability).unwrap()
        );
        assert!((fleet.fairness - 1.0).abs() < f64::EPSILON);
    }
}

#[test]
fn fleet_runs_are_deterministic_across_repeats_on_four_threads() {
    let mut cfg = ExperimentConfig::scaled(0.002);
    cfg.threads = 4;
    cfg.traces = vec![PaperTrace::Ts0];
    let traces = TraceSet::generate(&cfg);
    let base = traces.get(PaperTrace::Ts0);

    for policy in ShardPolicy::all() {
        let spec = FleetSpec::new(4, 16, policy).with_queue_depth(4);
        let a = run_fleet(&cfg, SchemeKind::Ipu, "ts0", &base, &spec);
        let b = run_fleet(&cfg, SchemeKind::Ipu, "ts0", &base, &spec);
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap(),
            "{policy:?}: fleet report not byte-identical across identical runs"
        );
    }
}

#[test]
fn thread_count_does_not_change_the_report() {
    // parallel_map is order-preserving and devices are independent worlds,
    // so the merged report must not depend on worker parallelism.
    let base = base_workload(100);
    let spec = FleetSpec::new(5, 10, ShardPolicy::Range).with_queue_depth(2);
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let mut cfg = ExperimentConfig::scaled(0.002);
        cfg.threads = threads;
        reports.push(run_fleet(&cfg, SchemeKind::Mga, "ts0", &base, &spec));
    }
    assert_eq!(
        serde_json::to_string(&reports[0]).unwrap(),
        serde_json::to_string(&reports[1]).unwrap(),
        "report depends on worker thread count"
    );
}

//! Property-based tests of `LatencyStats::merge` — the invariants fleet
//! aggregation leans on.
//!
//! A fleet report pools per-tenant histograms from many devices with
//! `merge`. For that pooling to be trustworthy, merging any partition of a
//! sample population must behave exactly like recording the whole population
//! into one histogram:
//!
//! * `count` and `sum_ns` are exact sums (no precision loss — `sum_ns` is
//!   u128),
//! * `min`/`max` are the extrema of the parts,
//! * every percentile lands inside `[min, max]`, and
//! * percentiles are *identical* to the single-histogram ones, because merge
//!   sums the underlying log₂ buckets rather than approximating.

use ipu_host::LatencyStats;
use proptest::prelude::*;

/// Samples spanning nine orders of magnitude so bucket boundaries get hit.
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..1_000,
        1_000u64..1_000_000,
        1_000_000u64..1_000_000_000,
    ]
}

/// An arbitrary split of a population: 1–8 parts of 0–50 samples each.
fn parts() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(sample(), 0..50), 1..8)
}

fn record_all(samples: impl IntoIterator<Item = u64>) -> LatencyStats {
    let mut s = LatencyStats::new();
    for ns in samples {
        s.record(ns);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_exact_over_arbitrary_splits(parts in parts()) {
        let mut merged = LatencyStats::new();
        for part in &parts {
            merged.merge(&record_all(part.iter().copied()));
        }
        let flat: Vec<u64> = parts.iter().flatten().copied().collect();
        let whole = record_all(flat.iter().copied());

        // count / sum are exact sums across the split.
        prop_assert_eq!(merged.count(), flat.len() as u64);
        prop_assert_eq!(
            merged.sum_ns(),
            flat.iter().map(|&ns| ns as u128).sum::<u128>()
        );

        // Extrema are the extrema of the parts.
        prop_assert_eq!(merged.min_ns(), flat.iter().copied().min());
        prop_assert_eq!(merged.max_ns(), flat.iter().copied().max().unwrap_or(0));

        // Merge sums buckets, so the merged histogram IS the single-pass
        // histogram: every percentile matches exactly.
        for p in [0.0, 1.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            prop_assert_eq!(
                merged.percentile_ns(p),
                whole.percentile_ns(p),
                "p{} diverges between merged and single-pass", p
            );
        }
    }

    #[test]
    fn merged_percentiles_stay_within_the_extrema(parts in parts()) {
        let mut merged = LatencyStats::new();
        for part in &parts {
            merged.merge(&record_all(part.iter().copied()));
        }
        if merged.count() == 0 {
            // Empty population: percentiles are 0 by definition.
            prop_assert_eq!(merged.percentile_ns(50.0), 0);
            return Ok(());
        }
        let min = merged.min_ns().expect("non-empty");
        let max = merged.max_ns();
        // "min of mins" / "max of maxes" over the non-empty parts.
        let min_of_mins = parts.iter().flatten().copied().min().expect("non-empty");
        let max_of_maxes = parts.iter().flatten().copied().max().expect("non-empty");
        prop_assert_eq!(min, min_of_mins);
        prop_assert_eq!(max, max_of_maxes);
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 99.9, 100.0] {
            let v = merged.percentile_ns(p);
            prop_assert!(
                (min..=max).contains(&v),
                "p{} = {} escapes [{}, {}]", p, v, min, max
            );
        }
    }

    #[test]
    fn merge_is_commutative_and_associative(parts in parts()) {
        let stats: Vec<LatencyStats> =
            parts.iter().map(|p| record_all(p.iter().copied())).collect();

        // Left fold.
        let mut left = LatencyStats::new();
        for s in &stats {
            left.merge(s);
        }
        // Reverse fold.
        let mut right = LatencyStats::new();
        for s in stats.iter().rev() {
            right.merge(s);
        }
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum_ns(), right.sum_ns());
        prop_assert_eq!(left.min_ns(), right.min_ns());
        prop_assert_eq!(left.max_ns(), right.max_ns());
        for p in [1.0, 50.0, 99.0] {
            prop_assert_eq!(left.percentile_ns(p), right.percentile_ns(p));
        }
    }
}

//! Fixture: a violation silenced by a well-formed allow comment with a reason.

pub fn allowed_unwrap(v: Option<u32>) -> u32 {
    // ipu-lint: allow(no-panic) — fixture: the reason text is present, so this allow is valid
    v.unwrap()
}

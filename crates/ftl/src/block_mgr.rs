//! Region layout and free-block management.
//!
//! The device is split into a fixed SLC-mode cache region (5% of blocks,
//! spread evenly across planes so the cache sees the full channel parallelism)
//! and the native MLC region. The manager owns the free pools; schemes pull
//! blocks to open as active write targets and return them after GC erases.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use ipu_flash::{BlockAddr, FlashGeometry, Nanos};

use crate::config::FtlConfig;

/// Free-pool and region-membership manager.
///
/// Erased blocks re-enter the pool *when their erase completes in simulated
/// time* ([`BlockManager::release_at`] + [`BlockManager::promote_ready`]):
/// GC replenishment is rate-limited by the 10 ms erase, so bursts can drain
/// the ready pool and force the host-write bypass to MLC — the behaviour the
/// paper's Figure 6 measures.
#[derive(Debug, Clone)]
pub struct BlockManager {
    geometry: FlashGeometry,
    /// `true` at dense block index `i` iff block `i` belongs to the SLC region.
    is_slc_region: Vec<bool>,
    slc_free: VecDeque<BlockAddr>,
    mlc_free: VecDeque<BlockAddr>,
    /// Blocks whose erase is still in flight, by readiness time.
    slc_pending: BinaryHeap<Reverse<(Nanos, u64)>>,
    mlc_pending: BinaryHeap<Reverse<(Nanos, u64)>>,
    slc_total: u64,
    mlc_total: u64,
}

impl BlockManager {
    /// Carves the SLC region out of `geometry` per `cfg.slc_ratio`.
    ///
    /// The first `slc_blocks_per_plane` blocks of every plane form the SLC
    /// region. Free pools are plane-interleaved so consecutive allocations
    /// land on different planes/chips.
    pub fn new(geometry: &FlashGeometry, cfg: &FtlConfig) -> Self {
        let per_plane = cfg.slc_blocks_per_plane(geometry.blocks_per_plane);
        let total_blocks = geometry.total_blocks();
        let mut is_slc_region = vec![false; total_blocks as usize];
        let mut slc_free = VecDeque::new();
        let mut mlc_free = VecDeque::new();

        // Chip-striding fill: consecutive pool entries live on *different
        // chips* (then different planes of the same chip, then the next block
        // slot), so an N-block active ring spans min(N, chips) chips and
        // consecutive page allocations truly parallelize.
        let planes_per_chip = geometry.dies_per_chip * geometry.planes_per_die;
        for b in 0..geometry.blocks_per_plane {
            for sub_plane in 0..planes_per_chip {
                for chip in 0..geometry.total_chips() {
                    let plane_flat = chip * planes_per_chip + sub_plane;
                    let idx = plane_flat as u64 * geometry.blocks_per_plane as u64 + b as u64;
                    let addr = geometry.block_from_index(idx);
                    if b < per_plane {
                        is_slc_region[idx as usize] = true;
                        slc_free.push_back(addr);
                    } else {
                        mlc_free.push_back(addr);
                    }
                }
            }
        }
        let slc_total = slc_free.len() as u64;
        let mlc_total = mlc_free.len() as u64;
        BlockManager {
            geometry: geometry.clone(),
            is_slc_region,
            slc_free,
            mlc_free,
            slc_pending: BinaryHeap::new(),
            mlc_pending: BinaryHeap::new(),
            slc_total,
            mlc_total,
        }
    }

    /// Whether a block belongs to the SLC-mode cache region.
    #[inline]
    pub fn is_slc_region(&self, addr: BlockAddr) -> bool {
        self.is_slc_region[self.geometry.block_index(addr) as usize]
    }

    /// Takes a free SLC-region block, if any.
    pub fn allocate_slc(&mut self) -> Option<BlockAddr> {
        self.slc_free.pop_front()
    }

    /// Takes a free MLC-region block, if any.
    pub fn allocate_mlc(&mut self) -> Option<BlockAddr> {
        self.mlc_free.pop_front()
    }

    /// Returns an erased block to its region's free pool immediately.
    pub fn release(&mut self, addr: BlockAddr) {
        if self.is_slc_region(addr) {
            self.slc_free.push_back(addr);
        } else {
            self.mlc_free.push_back(addr);
        }
    }

    /// Schedules a block to re-enter its pool once its erase completes at
    /// `ready_ns`; [`BlockManager::promote_ready`] performs the hand-over.
    pub fn release_at(&mut self, addr: BlockAddr, ready_ns: Nanos) {
        let idx = self.geometry.block_index(addr);
        if self.is_slc_region(addr) {
            self.slc_pending.push(Reverse((ready_ns, idx)));
        } else {
            self.mlc_pending.push(Reverse((ready_ns, idx)));
        }
    }

    /// Moves every pending block whose erase has completed by `now` into its
    /// free pool.
    pub fn promote_ready(&mut self, now: Nanos) {
        while let Some(&Reverse((t, idx))) = self.slc_pending.peek() {
            if t > now {
                break;
            }
            self.slc_pending.pop();
            self.slc_free.push_back(self.geometry.block_from_index(idx));
        }
        while let Some(&Reverse((t, idx))) = self.mlc_pending.peek() {
            if t > now {
                break;
            }
            self.mlc_pending.pop();
            self.mlc_free.push_back(self.geometry.block_from_index(idx));
        }
    }

    /// SLC blocks whose erase is still in flight.
    pub fn slc_pending_count(&self) -> u64 {
        self.slc_pending.len() as u64
    }

    /// MLC blocks whose erase is still in flight.
    pub fn mlc_pending_count(&self) -> u64 {
        self.mlc_pending.len() as u64
    }

    /// Total blocks in the SLC region.
    pub fn slc_total(&self) -> u64 {
        self.slc_total
    }

    /// Total blocks in the MLC region.
    pub fn mlc_total(&self) -> u64 {
        self.mlc_total
    }

    /// Currently free SLC-region blocks.
    pub fn slc_free_count(&self) -> u64 {
        self.slc_free.len() as u64
    }

    /// Currently free MLC-region blocks.
    pub fn mlc_free_count(&self) -> u64 {
        self.mlc_free.len() as u64
    }

    /// Permanently removes a block from its region: it never re-enters a
    /// free pool, and the region total shrinks so the GC-threshold arithmetic
    /// tracks the *usable* region size. The caller has already drained the
    /// block (it is in no pool when retired).
    pub fn retire(&mut self, addr: BlockAddr) {
        if self.is_slc_region(addr) {
            self.slc_total = self.slc_total.saturating_sub(1);
        } else {
            self.mlc_total = self.mlc_total.saturating_sub(1);
        }
    }

    /// Rebuilds the free pools from scratch after a power loss: every block
    /// that is neither retired (`bad`) nor holding live data (`in_use`) is
    /// free, re-inserted in the original chip-striding order so allocation
    /// parallelism is preserved. Pending (in-flight) erases are dropped —
    /// the physical erase completed before the crash in this model, so those
    /// blocks come back immediately free.
    pub fn rebuild_free(&mut self, bad: &BTreeSet<u64>, in_use: &BTreeSet<u64>) {
        self.slc_free.clear();
        self.mlc_free.clear();
        self.slc_pending.clear();
        self.mlc_pending.clear();
        let planes_per_chip = self.geometry.dies_per_chip * self.geometry.planes_per_die;
        for b in 0..self.geometry.blocks_per_plane {
            for sub_plane in 0..planes_per_chip {
                for chip in 0..self.geometry.total_chips() {
                    let plane_flat = chip * planes_per_chip + sub_plane;
                    let idx = plane_flat as u64 * self.geometry.blocks_per_plane as u64 + b as u64;
                    if bad.contains(&idx) || in_use.contains(&idx) {
                        continue;
                    }
                    let addr = self.geometry.block_from_index(idx);
                    if self.is_slc_region[idx as usize] {
                        self.slc_free.push_back(addr);
                    } else {
                        self.mlc_free.push_back(addr);
                    }
                }
            }
        }
    }

    /// All SLC-region block addresses (for region formatting at startup).
    pub fn slc_region_blocks(&self) -> Vec<BlockAddr> {
        (0..self.geometry.total_blocks())
            .filter(|&i| self.is_slc_region[i as usize])
            .map(|i| self.geometry.block_from_index(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BlockManager {
        BlockManager::new(&FlashGeometry::small_for_tests(), &FtlConfig::default())
    }

    #[test]
    fn region_split_respects_ratio_floor() {
        let m = mgr();
        // small_for_tests: 2 planes × 16 blocks; 5% of 16 rounds up to 1/plane.
        assert_eq!(m.slc_total(), 2);
        assert_eq!(m.mlc_total(), 30);
        assert_eq!(m.slc_free_count(), 2);
        assert_eq!(m.mlc_free_count(), 30);
    }

    #[test]
    fn paper_scale_region_is_about_five_percent() {
        let m = BlockManager::new(&FlashGeometry::paper_scale(), &FtlConfig::default());
        assert_eq!(m.slc_total(), 52 * 64); // 3328
        assert_eq!(m.slc_total() + m.mlc_total(), 65_536);
        let ratio = m.slc_total() as f64 / 65_536.0;
        assert!((ratio - 0.05).abs() < 0.003, "SLC ratio {ratio}");
    }

    #[test]
    fn allocations_stride_across_chips() {
        let g = FlashGeometry::paper_scale();
        let mut m = BlockManager::new(&g, &FtlConfig::default());
        // The first `total_chips` allocations must land on distinct chips.
        let mut chips = std::collections::HashSet::new();
        for _ in 0..g.total_chips() {
            let a = m.allocate_slc().unwrap();
            assert!(
                chips.insert(g.chip_index(a)),
                "chip repeated before full coverage"
            );
        }
        assert_eq!(chips.len() as u32, g.total_chips());
        // Same property for the MLC pool.
        let mut chips = std::collections::HashSet::new();
        for _ in 0..g.total_chips() {
            let a = m.allocate_mlc().unwrap();
            chips.insert(g.chip_index(a));
        }
        assert_eq!(chips.len() as u32, g.total_chips());
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut m = mgr();
        let a = m.allocate_slc().unwrap();
        assert!(m.is_slc_region(a));
        assert_eq!(m.slc_free_count(), 1);
        m.release(a);
        assert_eq!(m.slc_free_count(), 2);

        let b = m.allocate_mlc().unwrap();
        assert!(!m.is_slc_region(b));
        m.release(b);
        assert_eq!(m.mlc_free_count(), 30);
    }

    #[test]
    fn pools_exhaust_cleanly() {
        let mut m = mgr();
        assert!(m.allocate_slc().is_some());
        assert!(m.allocate_slc().is_some());
        assert!(m.allocate_slc().is_none());
    }

    #[test]
    fn retire_shrinks_region_totals() {
        let mut m = mgr();
        let a = m.allocate_slc().unwrap();
        m.retire(a);
        assert_eq!(m.slc_total(), 1);
        assert_eq!(m.slc_free_count(), 1);
        let b = m.allocate_mlc().unwrap();
        m.retire(b);
        assert_eq!(m.mlc_total(), 29);
    }

    #[test]
    fn rebuild_free_skips_bad_and_in_use() {
        let g = FlashGeometry::small_for_tests();
        let mut m = BlockManager::new(&g, &FtlConfig::default());
        let slc = m.allocate_slc().unwrap();
        let mlc = m.allocate_mlc().unwrap();
        let bad_addr = m.allocate_mlc().unwrap();
        m.retire(bad_addr);
        // Park a block in pending: rebuild must drop the pending list.
        let parked = m.allocate_mlc().unwrap();
        m.release_at(parked, 1_000_000);

        let bad: BTreeSet<u64> = [g.block_index(bad_addr)].into_iter().collect();
        let in_use: BTreeSet<u64> = [g.block_index(slc), g.block_index(mlc)]
            .into_iter()
            .collect();
        m.rebuild_free(&bad, &in_use);
        assert_eq!(m.slc_free_count(), 1); // 2 total − 1 in use
        assert_eq!(m.mlc_free_count(), 28); // 30 − 1 bad − 1 in use
        assert_eq!(m.mlc_pending_count(), 0, "pending erases dropped");
        // Striding order is preserved: first allocations span distinct chips.
        let a = m.allocate_mlc().unwrap();
        let b = m.allocate_mlc().unwrap();
        assert_ne!(g.chip_index(a), g.chip_index(b));
    }

    #[test]
    fn region_blocks_match_membership() {
        let m = mgr();
        let blocks = m.slc_region_blocks();
        assert_eq!(blocks.len() as u64, m.slc_total());
        for b in blocks {
            assert!(m.is_slc_region(b));
        }
    }
}

//! P/E cycle study (paper §4.5, Figures 13 & 14): how I/O latency and read
//! error rate evolve as the device ages.
//!
//! ```text
//! cargo run --release --example pe_cycle_study [-- <scale> [trace]]
//! ```

use ipu_core::trace::PaperTrace;
use ipu_core::{experiment, report, ExperimentConfig, PAPER_PE_POINTS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let trace = args
        .get(2)
        .map(|name| {
            PaperTrace::all()
                .into_iter()
                .find(|t| t.name() == name)
                .unwrap_or_else(|| panic!("unknown trace `{name}`"))
        })
        .unwrap_or(PaperTrace::Wdev0);

    let mut cfg = ExperimentConfig::scaled(scale);
    cfg.traces = vec![trace];

    eprintln!(
        "sweeping P/E ∈ {PAPER_PE_POINTS:?} on {trace} at scale {scale} \
         (3 schemes × 4 points) ..."
    );
    let started = std::time::Instant::now();
    let sweep = experiment::run_pe_sweep(&cfg, &PAPER_PE_POINTS);
    eprintln!("done in {:.1?}\n", started.elapsed());

    println!("{}", report::render_pe_sweep(&sweep));

    // Sanity note: both metrics must grow with wear for every scheme.
    for (si, scheme) in sweep.matrices[0].schemes.iter().enumerate() {
        let errs: Vec<f64> = sweep
            .matrices
            .iter()
            .map(|m| m.report(0, si).read_error_rate())
            .collect();
        let grew = errs.windows(2).all(|w| w[1] > w[0]);
        println!(
            "{scheme}: read error rate {} with wear ({:.2e} → {:.2e})",
            if grew {
                "grows monotonically"
            } else {
                "is NOT monotone (unexpected!)"
            },
            errs.first().unwrap(),
            errs.last().unwrap()
        );
    }
}

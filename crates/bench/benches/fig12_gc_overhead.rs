//! `cargo bench -p ipu-bench --bench fig12_gc_overhead`
//!
//! Regenerates the paper's Figure 12 — the computational overhead of GC
//! victim selection — with Criterion. The paper reports that IPU's ISR policy
//! costs only ~1.2% more than Baseline's greedy policy, both scanning every
//! block of the SLC region (their measurement: <2.48 ms per selection at
//! paper scale).
//!
//! The benchmark populates a paper-scale SLC region (3,328 blocks × 64 pages
//! × 4 subpages) with a deterministic mix of valid/invalid data and update
//! history, then times one full victim selection under each policy.

use criterion::{criterion_group, criterion_main, Criterion};
use ipu_core::flash::{CellMode, DeviceConfig, FlashDevice, Spa};
use ipu_core::ftl::{select_greedy, select_isr, BlockLevel, CacheMeta, FtlConfig, GcGranularity};

/// Deterministic pseudo-random stream (no external RNG needed).
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Builds a fully-populated paper-scale SLC region and its metadata.
fn populate() -> (FlashDevice, CacheMeta, Vec<u64>) {
    let dev_cfg = DeviceConfig::paper_scale();
    let mut dev = FlashDevice::new(dev_cfg);
    let ftl_cfg = FtlConfig::default();
    let g = dev.config().geometry.clone();
    let per_plane = ftl_cfg.slc_blocks_per_plane(g.blocks_per_plane);

    let mut meta = CacheMeta::new();
    let mut indices = Vec::new();
    let mut rng = Lcg(0x1234_5678);

    for plane in 0..g.total_planes() {
        for b in 0..per_plane {
            let idx = plane as u64 * g.blocks_per_plane as u64 + b as u64;
            let addr = g.block_from_index(idx);
            dev.set_block_mode(addr, CellMode::Slc);
            let level = match rng.next() % 3 {
                0 => BlockLevel::Work,
                1 => BlockLevel::Monitor,
                _ => BlockLevel::Hot,
            };
            meta.open_block(
                idx,
                addr,
                level,
                g.pages_per_block_slc,
                g.subpages_per_page(),
            );

            // Program every page once (varying fill), update ~30%, invalidate
            // ~40% of programmed subpages.
            for p in 0..g.pages_per_block_slc {
                let fill = 1 + (rng.next() % 4) as u8;
                dev.program(Spa::new(addr.page(p), 0), fill)
                    .expect("program");
                let updated = rng.next() % 10 < 3;
                meta.get_mut(idx).unwrap().note_program(
                    p,
                    0,
                    fill,
                    1_000_000 + rng.next() % 1_000_000_000,
                    updated,
                );
                for s in 0..fill {
                    if rng.next() % 10 < 4 {
                        dev.invalidate(Spa::new(addr.page(p), s))
                            .expect("invalidate");
                    }
                }
            }
            indices.push(idx);
        }
    }
    (dev, meta, indices)
}

fn gc_selection(c: &mut Criterion) {
    let (dev, meta, indices) = populate();
    eprintln!(
        "[fig12] populated {} SLC blocks at paper scale",
        indices.len()
    );

    let mut group = c.benchmark_group("fig12_gc_victim_selection");
    group.sample_size(20);

    group.bench_function("baseline_greedy", |b| {
        b.iter(|| {
            let cands = indices
                .iter()
                .map(|&i| (i, dev.block_by_index(i), meta.get(i).unwrap().opened_seq()));
            criterion::black_box(select_greedy(cands, GcGranularity::Subpage))
        })
    });

    group.bench_function("ipu_isr", |b| {
        b.iter(|| {
            let now = 2_000_000_000u64;
            let cands = indices
                .iter()
                .map(|&i| (i, dev.block_by_index(i), meta.get(i).unwrap()));
            criterion::black_box(select_isr(cands, now))
        })
    });

    group.finish();

    // Print the Figure 12 comparison explicitly.
    let t0 = std::time::Instant::now();
    let n = 20;
    for _ in 0..n {
        let cands = indices
            .iter()
            .map(|&i| (i, dev.block_by_index(i), meta.get(i).unwrap().opened_seq()));
        std::hint::black_box(select_greedy(cands, GcGranularity::Subpage));
    }
    let greedy = t0.elapsed() / n;
    let t0 = std::time::Instant::now();
    for _ in 0..n {
        let cands = indices
            .iter()
            .map(|&i| (i, dev.block_by_index(i), meta.get(i).unwrap()));
        std::hint::black_box(select_isr(cands, 2_000_000_000));
    }
    let isr = t0.elapsed() / n;
    println!("Figure 12 — GC victim-selection compute overhead (paper-scale SLC region)");
    println!("  Baseline greedy : {greedy:?} per selection");
    println!("  IPU ISR         : {isr:?} per selection");
    println!(
        "  overhead        : {:+.1}%  (paper: +1.2%, both < 2.48 ms)",
        (isr.as_secs_f64() / greedy.as_secs_f64() - 1.0) * 100.0
    );
}

criterion_group!(benches, gc_selection);
criterion_main!(benches);

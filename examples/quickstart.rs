//! Quickstart: run one trace under all three schemes and print the headline
//! comparison (mean latencies, read error rate, writes split, mapping size).
//!
//! ```text
//! cargo run --release --example quickstart [-- <scale> [trace]]
//! ```
//!
//! `scale` is the fraction of the trace's published request count to replay
//! (default 0.02 ≈ 36 K requests of ts0); `trace` is one of
//! ts0|wdev0|lun1|usr0|ads|lun2.

use ipu_core::{experiment, report, ExperimentConfig};
use ipu_ftl::SchemeKind;
use ipu_trace::PaperTrace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let trace = args
        .get(2)
        .map(|name| {
            PaperTrace::all()
                .into_iter()
                .find(|t| t.name() == name)
                .unwrap_or_else(|| panic!("unknown trace `{name}`"))
        })
        .unwrap_or(PaperTrace::Ts0);

    let mut cfg = ExperimentConfig::scaled(scale);
    cfg.traces = vec![trace];
    cfg.schemes = SchemeKind::all().to_vec();

    eprintln!(
        "replaying {} at scale {scale} ({} requests) under Baseline / MGA / IPU ...",
        trace,
        (trace.table3_row().0 as f64 * scale) as u64
    );
    let started = std::time::Instant::now();
    let matrix = experiment::run_main_matrix(&cfg);
    eprintln!("done in {:.1?}\n", started.elapsed());

    println!("{}", report::render_fig5(&matrix));
    println!("{}", report::render_fig8(&matrix));
    println!("{}", report::render_fig6(&matrix));
    println!("{}", report::render_fig9(&matrix));
    println!("{}", report::render_fig10(&matrix));
    println!("{}", report::render_fig11(&matrix));
    println!("{}", report::render_fig7(&matrix));
}

//! # ipu-trace — block I/O trace infrastructure
//!
//! The paper evaluates on six block I/O traces: `ts0`, `wdev0`, `usr0` from the
//! MSR Cambridge collection, `ads` from Microsoft production servers, and
//! `lun1`, `lun2` from an enterprise VDI study. Those traces cannot be
//! redistributed here, so this crate provides both:
//!
//! * an **MSR-Cambridge-format parser** ([`parser`]) so the real traces can be
//!   dropped in unchanged, and
//! * **calibrated synthetic generators** ([`synth`], [`specs`]) that reproduce
//!   the published per-trace statistics the paper's mechanisms depend on —
//!   request count, write ratio, average write size and hot-write ratio
//!   (Table 3) plus the update-size distribution (Table 1).
//!
//! [`stats`] computes both tables from *any* request stream, which is how the
//! calibration is validated (see the `table1_update_sizes` and
//! `table3_trace_specs` bench targets).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod parser;
pub mod request;
pub mod specs;
pub mod stats;
pub mod synth;
pub mod tenants;
pub mod writer;

pub use analysis::{Log2Histogram, TraceAnalysis};
pub use parser::{parse_msr_line, parse_msr_reader, ParseError};
pub use request::{IoRequest, OpKind, SUBPAGE_BYTES};
pub use specs::{all_paper_traces, paper_trace, PaperTrace};
pub use stats::{SizeBucket, TraceStats, UpdateSizeDistribution};
pub use synth::{SyntheticTraceSpec, TraceGenerator};
pub use tenants::{clone_shifted, split_by_lba, split_round_robin, SplitStrategy};
pub use writer::{to_msr_string, write_msr};

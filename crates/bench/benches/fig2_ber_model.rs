//! `cargo bench -p ipu-bench --bench fig2_ber_model`
//!
//! Regenerates the paper's Figure 2 — raw bit error rate of conventional vs
//! partial programming across P/E cycles — from the calibrated RBER and
//! disturb models (fitted to the two published points: 2.8·10⁻⁴ and
//! 3.8·10⁻⁴ at 4000 P/E cycles).

fn main() {
    let points: Vec<u32> = (0..=10).map(|i| i * 1000).collect();
    let curve = ipu_core::run_ber_curve(&points);
    println!("{}", ipu_core::report::render_fig2(&curve));
}

//! Property-based tests over all three FTL schemes: under arbitrary
//! write/read workloads (with heavy cache pressure and GC), every scheme must
//! preserve read-your-writes mapping consistency, forward/reverse map
//! agreement, and physical/logical accounting.

use ipu_flash::{DeviceConfig, FlashDevice, SubpageState};
use ipu_ftl::{FtlConfig, SchemeKind};
use ipu_trace::{IoRequest, OpKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Op {
    write: bool,
    slot: u64,
    size_subpages: u8,
}

fn workload() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (any::<bool>(), 0u64..12, 1u8..=4).prop_map(|(write, slot, size_subpages)| Op {
            write,
            slot,
            size_subpages,
        }),
        1..160,
    )
}

fn check_scheme(kind: SchemeKind, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
    // Slightly roomier SLC region so all IPU levels can engage; still small
    // enough that GC fires constantly under this workload.
    let cfg = FtlConfig {
        slc_ratio: 0.2,
        ..FtlConfig::default()
    };
    let mut ftl = kind.build(&mut dev, cfg);

    let mut shadow: std::collections::HashMap<u64, ()> = std::collections::HashMap::new();
    for (t, op) in ops.iter().enumerate() {
        let offset = op.slot * 65536;
        let size = op.size_subpages as u32 * 4096;
        let req = IoRequest::new(
            t as u64 * 1000,
            if op.write {
                OpKind::Write
            } else {
                OpKind::Read
            },
            offset,
            size,
        );
        let batch = if op.write {
            for lsn in req.subpage_span() {
                shadow.insert(lsn, ());
            }
            ftl.on_write(&req, req.timestamp_ns, &mut dev)
        } else {
            ftl.on_read(&req, req.timestamp_ns, &mut dev)
        };
        for rec in &batch.ops {
            prop_assert!(rec.latency_ns > 0, "zero-latency op");
        }

        // Invariant 1: every shadow LSN resolves, and the forward and reverse
        // maps agree.
        let core = ftl.core();
        for &lsn in shadow.keys() {
            let spa = core.map.lookup(lsn);
            prop_assert!(spa.is_some(), "{kind:?}: lsn {lsn} lost after op {t}");
            let spa = spa.unwrap();
            let bi = core.block_idx(spa.ppa.block_addr());
            prop_assert_eq!(
                core.owners.owner(bi, spa),
                Some(lsn),
                "{:?}: owner table disagrees for lsn {}",
                kind,
                lsn
            );
            // The mapped subpage must be physically valid.
            let page = dev.block(spa.ppa.block_addr()).page(spa.ppa.page);
            prop_assert_eq!(
                page.subpage(spa.subpage),
                SubpageState::Valid,
                "{:?}: lsn {} maps to a non-valid subpage",
                kind,
                lsn
            );
        }

        // Invariant 2: the number of mapped LSNs equals the shadow set size.
        prop_assert_eq!(core.map.len(), shadow.len());

        // Invariant 3: valid subpages device-wide equal the mapped count
        // (every valid subpage is owned by exactly one live LSN).
        let mut device_valid = 0u64;
        for i in 0..dev.config().geometry.total_blocks() {
            device_valid += dev.block_by_index(i).count_subpages(SubpageState::Valid) as u64;
        }
        prop_assert_eq!(
            device_valid,
            shadow.len() as u64,
            "{:?}: device holds {} valid subpages but {} LSNs are live",
            kind,
            device_valid,
            shadow.len()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn baseline_invariants(ops in workload()) {
        check_scheme(SchemeKind::Baseline, &ops)?;
    }

    #[test]
    fn mga_invariants(ops in workload()) {
        check_scheme(SchemeKind::Mga, &ops)?;
    }

    #[test]
    fn ipu_invariants(ops in workload()) {
        check_scheme(SchemeKind::Ipu, &ops)?;
    }

    #[test]
    fn ipu_plus_invariants(ops in workload()) {
        check_scheme(SchemeKind::IpuPlus, &ops)?;
    }

    /// Determinism: replaying the same ops yields identical stats and mapping.
    #[test]
    fn schemes_are_deterministic(ops in workload(), kind in prop_oneof![
        Just(SchemeKind::Baseline), Just(SchemeKind::Mga),
        Just(SchemeKind::Ipu), Just(SchemeKind::IpuPlus)
    ]) {
        let run = |ops: &[Op]| {
            let mut dev = FlashDevice::new(DeviceConfig::small_for_tests());
            let mut ftl = kind.build(&mut dev, FtlConfig::default());
            for (t, op) in ops.iter().enumerate() {
                let req = IoRequest::new(
                    t as u64,
                    if op.write { OpKind::Write } else { OpKind::Read },
                    op.slot * 65536,
                    op.size_subpages as u32 * 4096,
                );
                if op.write {
                    ftl.on_write(&req, req.timestamp_ns, &mut dev);
                } else {
                    ftl.on_read(&req, req.timestamp_ns, &mut dev);
                }
            }
            (ftl.stats().clone(), dev.counters(), dev.wear().totals())
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}

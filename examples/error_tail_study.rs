//! Error tail study: run the device in *sampled* error mode (deterministic
//! per-read Poisson draws instead of expected values) and measure the
//! probability of uncorrectable reads as the device ages — the tail behaviour
//! the paper's averaged "read error rate" metric cannot show.
//!
//! ```text
//! cargo run --release --example error_tail_study [-- <scale> [seed]]
//! ```

use ipu_core::flash::ErrorMode;
use ipu_core::ftl::SchemeKind;
use ipu_core::trace::PaperTrace;
use ipu_core::{experiment, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("Uncorrectable-read probability under sampled errors (seed {seed}, wdev0)");
    println!(
        "{:<6} {:>12} {:>16} {:>20}",
        "P/E", "scheme", "host reads", "uncorrectable"
    );
    for pe in [5000u32, 6000, 6500, 7000] {
        for scheme in SchemeKind::all() {
            let mut cfg = ExperimentConfig::scaled(scale);
            cfg.device.initial_pe_cycles = pe;
            cfg.device.error_mode = ErrorMode::Sampled { seed };
            let r = experiment::run_one(&cfg, PaperTrace::Wdev0, scheme);
            let reads = r.ftl.host_subpages_read.max(1);
            println!(
                "{:<6} {:>12} {:>16} {:>12} ({:.4}%)",
                pe,
                scheme.label(),
                r.ftl.host_read_requests,
                r.ftl.host_uncorrectable_reads,
                r.ftl.host_uncorrectable_reads as f64 / reads as f64 * 100.0
            );
        }
    }
    println!();
    println!(
        "Expected shape: uncorrectable reads are absent at low P/E, then rise \
         steeply as the expected error count crosses the BCH capability \
         (40 bits per 4 KB subpage, around P/E ≈ 6,900 in this model) — with \
         MGA's partially-programmed pages crossing first."
    );
}

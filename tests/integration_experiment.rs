//! Integration tests for the experiment layer: the P/E sweep (§4.5), the
//! Figure 2 curve, the report renderers and result persistence.

use ipu_core::ftl::SchemeKind;
use ipu_core::trace::PaperTrace;
use ipu_core::{experiment, report, ExperimentConfig, ExperimentRecord};

fn tiny_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::scaled(0.005);
    cfg.traces = vec![PaperTrace::Wdev0];
    cfg.schemes = SchemeKind::all().to_vec();
    cfg.threads = 1;
    cfg
}

#[test]
fn pe_sweep_degrades_error_rate_and_latency_monotonically() {
    let cfg = tiny_cfg();
    let sweep = experiment::run_pe_sweep(&cfg, &[1000, 4000, 8000]);
    assert_eq!(sweep.matrices.len(), 3);
    for (si, scheme) in sweep.matrices[0].schemes.iter().enumerate() {
        let errs: Vec<f64> = sweep
            .matrices
            .iter()
            .map(|m| m.report(0, si).read_error_rate())
            .collect();
        assert!(
            errs.windows(2).all(|w| w[1] > w[0]),
            "{scheme}: error rate not monotone over P/E: {errs:?}"
        );
        // Latency must not *improve* with wear (more ECC time).
        let lats: Vec<f64> = sweep
            .matrices
            .iter()
            .map(|m| m.report(0, si).read_latency.mean_ns())
            .collect();
        assert!(
            lats.windows(2).all(|w| w[1] >= w[0] * 0.999),
            "{scheme}: read latency shrank with wear: {lats:?}"
        );
    }
}

#[test]
fn scheme_error_ordering_holds_at_every_pe_point() {
    // The paper's §4.5 headline: IPU's improvement over MGA holds across
    // device ages ("fine scalability of our proposal").
    let cfg = tiny_cfg();
    let sweep = experiment::run_pe_sweep(&cfg, &[1000, 8000]);
    for m in &sweep.matrices {
        let mga = m
            .report(0, m.scheme_index(SchemeKind::Mga).unwrap())
            .read_error_rate();
        let ipu = m
            .report(0, m.scheme_index(SchemeKind::Ipu).unwrap())
            .read_error_rate();
        assert!(
            ipu < mga,
            "IPU ({ipu:.3e}) must beat MGA ({mga:.3e}) at every age"
        );
    }
}

#[test]
fn figure2_curve_is_calibrated_and_renders() {
    let curve = experiment::run_ber_curve(&[0, 2000, 4000, 8000]);
    let at4000 = curve.iter().find(|p| p.pe_cycles == 4000).unwrap();
    assert!((at4000.conventional - 2.8e-4).abs() < 1e-9);
    assert!((at4000.partial - 3.8e-4).abs() < 1e-9);
    let text = report::render_fig2(&curve);
    assert!(text.contains("Figure 2"));
    assert!(text.contains("4000"));
}

#[test]
fn all_reports_render_from_one_matrix() {
    let cfg = tiny_cfg();
    let m = experiment::run_main_matrix(&cfg);
    for (name, text) in [
        ("fig5", report::render_fig5(&m)),
        ("fig6", report::render_fig6(&m)),
        ("fig7", report::render_fig7(&m)),
        ("fig8", report::render_fig8(&m)),
        ("fig9", report::render_fig9(&m)),
        ("fig10", report::render_fig10(&m)),
        ("fig11", report::render_fig11(&m)),
    ] {
        assert!(text.contains("wdev0"), "{name} missing trace row:\n{text}");
        assert!(text.lines().count() >= 4, "{name} suspiciously short");
    }
}

#[test]
fn matrix_results_persist_and_reload() {
    let cfg = tiny_cfg();
    let m = experiment::run_main_matrix(&cfg);
    let dir = std::env::temp_dir().join("ipu-integration-records");
    let path = dir.join("matrix.json");
    ExperimentRecord::new("itest", cfg.clone(), m.clone())
        .save(&path)
        .unwrap();
    let loaded: ExperimentRecord<ipu_core::MatrixResult> = ExperimentRecord::load(&path).unwrap();
    assert_eq!(loaded.config, cfg);
    assert_eq!(loaded.result.traces, m.traces);
    assert_eq!(
        loaded.result.report(0, 0).overall_latency.count(),
        m.report(0, 0).overall_latency.count()
    );
    assert_eq!(loaded.result.report(0, 2).ftl, m.report(0, 2).ftl);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_tables_cover_all_requested_traces() {
    let mut cfg = tiny_cfg();
    cfg.traces = vec![PaperTrace::Ts0, PaperTrace::Lun2];
    let rows = experiment::run_trace_tables(&cfg);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].trace, "ts0");
    assert_eq!(rows[1].trace, "lun2");
    let t1 = report::render_table1(&rows);
    let t3 = report::render_table3(&rows);
    assert!(t1.contains("lun2") && t3.contains("ts0"));
}

//! Validates every calibrated synthetic trace against the paper's published
//! statistics (Tables 1 and 3). Runs at a 10% scale of the published request
//! counts — the generator's ratios are scale-invariant (covered by a unit
//! test), and full-scale validation happens in the table1/table3 benches.

use ipu_trace::{all_paper_traces, PaperTrace, TraceGenerator, TraceStats};

fn scaled_stats(trace: PaperTrace, fraction: f64) -> TraceStats {
    let spec = ipu_trace::paper_trace(trace);
    let scaled = spec.with_requests(((spec.requests as f64) * fraction) as u64);
    TraceStats::compute(&TraceGenerator::new(scaled).generate())
}

#[test]
fn write_ratio_matches_table3_for_all_traces() {
    for t in PaperTrace::all() {
        let (_, write_ratio, _, _) = t.table3_row();
        let s = scaled_stats(t, 0.1);
        assert!(
            (s.write_ratio - write_ratio).abs() < 0.01,
            "{t}: measured write ratio {:.3} vs table {:.3}",
            s.write_ratio,
            write_ratio
        );
    }
}

#[test]
fn avg_write_size_matches_table3_for_all_traces() {
    for t in PaperTrace::all() {
        let (_, _, avg_kb, _) = t.table3_row();
        let s = scaled_stats(t, 0.1);
        let measured_kb = s.avg_write_size / 1024.0;
        assert!(
            (measured_kb - avg_kb).abs() < 0.4,
            "{t}: measured avg write {measured_kb:.2} KB vs table {avg_kb:.2} KB"
        );
    }
}

#[test]
fn hot_write_ratio_matches_table3_for_all_traces() {
    for t in PaperTrace::all() {
        let (_, _, _, hot) = t.table3_row();
        let s = scaled_stats(t, 0.1);
        assert!(
            (s.hot_write_ratio - hot).abs() < 0.05,
            "{t}: measured hot ratio {:.3} vs table {:.3}",
            s.hot_write_ratio,
            hot
        );
    }
}

#[test]
fn update_size_buckets_match_table1_for_all_traces() {
    for t in PaperTrace::all() {
        let expected = t.table1_row();
        let s = scaled_stats(t, 0.1);
        let measured = [
            s.update_sizes.up_to_4k,
            s.update_sizes.up_to_8k,
            s.update_sizes.over_8k,
        ];
        for (i, (m, e)) in measured.iter().zip(expected.iter()).enumerate() {
            assert!(
                (m - e).abs() < 0.04,
                "{t}: bucket {i} measured {m:.3} vs table {e:.3}"
            );
        }
        assert!(
            s.update_sizes.updated_requests > 0,
            "{t}: no updates generated"
        );
    }
}

#[test]
fn traces_exhibit_substantial_update_traffic() {
    // The paper's premise: applications issue many small *update* requests.
    for t in PaperTrace::all() {
        let s = scaled_stats(t, 0.05);
        assert!(
            s.update_ratio > 0.3,
            "{t}: update ratio {:.3} too low for the paper's mechanisms to engage",
            s.update_ratio
        );
    }
}

#[test]
fn footprints_are_device_scale_plausible() {
    for spec in all_paper_traces() {
        let gen = TraceGenerator::new(spec.clone());
        let footprint = gen.footprint_bytes();
        // Must fit the paper's 128 GiB device but be big enough to pressure
        // the ~3.2 GiB SLC-mode cache region.
        assert!(
            footprint < 128 * (1 << 30),
            "{}: footprint {footprint} exceeds device",
            spec.name
        );
        assert!(
            footprint > (1 << 30),
            "{}: footprint {footprint} too small to exercise the cache",
            spec.name
        );
    }
}

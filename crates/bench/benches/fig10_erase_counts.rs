//! `cargo bench -p ipu-bench --bench fig10_erase_counts`
//!
//! Regenerates the paper's Figure 10 (erase counts in SLC and MLC blocks) from the cached evaluation matrix
//! (see crate docs for the IPU_BENCH_* environment knobs).

fn main() {
    let cfg = ipu_bench::bench_config();
    let matrix = ipu_bench::main_matrix_cached(&cfg);
    println!("{}", ipu_core::report::render_fig10(&matrix));
}

//! Span-based phase timing with exclusive-time accounting.
//!
//! A [`Span`] is an RAII guard: construction pushes a frame on a per-thread
//! stack, drop pops it and charges the elapsed wall time to the frame's
//! [`Phase`] — minus the time spent in nested spans, which is charged to
//! *their* phases instead. Per-thread accumulators flush into global atomics
//! when a thread exits (or when [`snapshot`] runs on the calling thread), so
//! parallel sweeps aggregate correctly across `std::thread::scope` workers.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// The instrumented phases of the replay pipeline, one per hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Trace parsing / synthetic trace generation.
    TraceDecode,
    /// FTL write path (`on_write`), excluding nested GC/migration/retry work.
    FtlWrite,
    /// FTL read path (`on_read`), excluding nested retry-ladder work.
    FtlRead,
    /// Garbage collection rounds (SLC cache eviction and MLC GC).
    Gc,
    /// Wear-leveling migrations and background scrub passes.
    Migration,
    /// ECC retry-ladder walks on uncorrectable reads.
    EccRetry,
    /// Closed-loop host machinery: queues, arbitration, admission.
    HostArbitration,
    /// Report rendering and result serialization.
    Report,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 8] = [
        Phase::TraceDecode,
        Phase::FtlWrite,
        Phase::FtlRead,
        Phase::Gc,
        Phase::Migration,
        Phase::EccRetry,
        Phase::HostArbitration,
        Phase::Report,
    ];

    /// Stable snake_case label used in JSON/JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::TraceDecode => "trace_decode",
            Phase::FtlWrite => "ftl_write",
            Phase::FtlRead => "ftl_read",
            Phase::Gc => "gc",
            Phase::Migration => "migration",
            Phase::EccRetry => "ecc_retry",
            Phase::HostArbitration => "host_arbitration",
            Phase::Report => "report",
        }
    }

    /// Parses a [`Phase::label`] back into a phase.
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == label)
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for Phase {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.label().to_string())
    }
}

impl Deserialize for Phase {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) => {
                Phase::from_label(s).ok_or_else(|| serde::Error::unknown_variant("Phase", s))
            }
            other => Err(serde::Error::type_mismatch("phase label", other)),
        }
    }
}

const N: usize = Phase::ALL.len();

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static SELF_NS: [AtomicU64; N] = [ZERO; N];
static COUNT: [AtomicU64; N] = [ZERO; N];

/// Is instrumentation currently armed? One relaxed load — this is the entire
/// cost of a [`span()`] call on the disabled path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms instrumentation. Spans opened after this call are recorded.
pub fn enable() {
    crate::export::set_epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disarms instrumentation. Spans already open still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears all accumulated phase stats and buffered events. Call between
/// profiling runs, never while spans are open.
pub fn reset() {
    for i in 0..N {
        SELF_NS[i].store(0, Ordering::Relaxed);
        COUNT[i].store(0, Ordering::Relaxed);
    }
    STACK.with(|s| s.borrow_mut().clear());
    crate::export::reset_events();
}

// ---------------------------------------------------------------------------
// Per-thread span stack
// ---------------------------------------------------------------------------

struct Frame {
    phase: usize,
    /// Wall time consumed by nested spans, to subtract from this frame.
    child_ns: u64,
}

thread_local! {
    // Only the open-span stack is thread-local; completed spans flush
    // straight into the global atomics so scoped worker threads need no
    // exit-time handshake (thread-local destructors are not guaranteed to
    // have run by the time `std::thread::scope` returns).
    static STACK: RefCell<Vec<Frame>> = RefCell::new(Vec::with_capacity(8));
}

/// An open span; records on drop. Construct via [`span()`].
pub struct Span {
    start: Option<Instant>,
    phase: Phase,
}

/// Opens a span for `phase`. When instrumentation is disabled this is a
/// single atomic load and the returned guard does nothing on drop.
#[inline]
pub fn span(phase: Phase) -> Span {
    if !enabled() {
        return Span { start: None, phase };
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame {
            phase: phase.index(),
            child_ns: 0,
        })
    });
    Span {
        start: Some(Instant::now()),
        phase,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // The frame this guard pushed is the top of the stack: spans are
            // strictly scoped, so drops happen in reverse open order.
            let frame = stack.pop().expect("span stack underflow");
            debug_assert_eq!(frame.phase, self.phase.index());
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            SELF_NS[frame.phase].fetch_add(self_ns, Ordering::Relaxed);
            COUNT[frame.phase].fetch_add(1, Ordering::Relaxed);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += elapsed;
            }
        });
    }
}

/// Records a point event into the bounded event buffer (see
/// [`crate::export`]). A no-op when disabled.
#[inline]
pub fn event(phase: Phase, label: &str, value: u64) {
    if !enabled() {
        return;
    }
    crate::export::record_event(phase, label, value);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Accumulated exclusive time and span count for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    pub phase: Phase,
    /// Spans recorded.
    pub count: u64,
    /// Exclusive (self) wall time: nested spans are charged to their own
    /// phases, so summing `self_ns` over phases never double-counts.
    pub self_ns: u64,
}

/// A point-in-time copy of all phase accumulators.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    pub phases: Vec<PhaseStat>,
}

impl ObsSnapshot {
    /// The stat for `phase`, if any spans were recorded.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.phase == phase)
    }

    /// Total exclusive time across all phases (the instrumented share of the
    /// run; the rest is untracked scheduling/aggregation work).
    pub fn total_self_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.self_ns).sum()
    }

    /// Per-phase difference `self - earlier` (both must come from the same
    /// monotonic accumulator lineage, i.e. no [`reset`] in between).
    pub fn diff(&self, earlier: &ObsSnapshot) -> ObsSnapshot {
        let phases = Phase::ALL
            .into_iter()
            .filter_map(|ph| {
                let now = self.phase(ph).copied().unwrap_or(PhaseStat {
                    phase: ph,
                    count: 0,
                    self_ns: 0,
                });
                let then = earlier.phase(ph).copied().unwrap_or(PhaseStat {
                    phase: ph,
                    count: 0,
                    self_ns: 0,
                });
                let d = PhaseStat {
                    phase: ph,
                    count: now.count.saturating_sub(then.count),
                    self_ns: now.self_ns.saturating_sub(then.self_ns),
                };
                (d.count > 0 || d.self_ns > 0).then_some(d)
            })
            .collect();
        ObsSnapshot { phases }
    }
}

/// Snapshots the phase accumulators. Spans flush as they close, so a
/// snapshot taken after worker joins sees every completed span; open spans
/// are not included. Phases with no recorded spans are omitted.
pub fn snapshot() -> ObsSnapshot {
    let phases = Phase::ALL
        .into_iter()
        .filter_map(|ph| {
            let i = ph.index();
            let stat = PhaseStat {
                phase: ph,
                count: COUNT[i].load(Ordering::Relaxed),
                self_ns: SELF_NS[i].load(Ordering::Relaxed),
            };
            (stat.count > 0 || stat.self_ns > 0).then_some(stat)
        })
        .collect();
    ObsSnapshot { phases }
}

/// The global accumulators are process-wide; tests that enable
/// instrumentation serialize on this lock so they don't observe each other's
/// spans.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_for(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        assert!(!enabled());
        {
            let _s = span(Phase::FtlWrite);
            spin_for(10_000);
        }
        assert!(snapshot().phases.is_empty());
    }

    #[test]
    fn nested_spans_account_exclusive_time() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        enable();
        {
            let _outer = span(Phase::FtlWrite);
            spin_for(200_000);
            {
                let _inner = span(Phase::Gc);
                spin_for(200_000);
            }
            spin_for(200_000);
        }
        disable();
        let snap = snapshot();
        let w = snap.phase(Phase::FtlWrite).expect("write span recorded");
        let g = snap.phase(Phase::Gc).expect("gc span recorded");
        assert_eq!(w.count, 1);
        assert_eq!(g.count, 1);
        // The inner span's time is charged to Gc, not FtlWrite: outer self
        // time is ~400µs of ~600µs total. Bounds are loose (timers jitter).
        assert!(g.self_ns >= 150_000, "gc self {} too small", g.self_ns);
        assert!(w.self_ns >= 300_000, "write self {} too small", w.self_ns);
        let outer_total = w.self_ns + g.self_ns;
        assert!(
            w.self_ns < outer_total,
            "exclusive accounting must subtract nested time"
        );
        reset();
        assert!(snapshot().phases.is_empty());
    }

    #[test]
    fn spans_aggregate_across_threads() {
        let _guard = TEST_LOCK.lock().unwrap();
        reset();
        enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _s = span(Phase::FtlRead);
                    spin_for(50_000);
                });
            }
        });
        disable();
        let snap = snapshot();
        let r = snap.phase(Phase::FtlRead).expect("reads recorded");
        assert_eq!(r.count, 4, "every worker thread's span must flush");
        assert!(r.self_ns >= 4 * 25_000);
        reset();
    }

    #[test]
    fn snapshot_diff_subtracts_phase_stats() {
        let a = ObsSnapshot {
            phases: vec![
                PhaseStat {
                    phase: Phase::FtlWrite,
                    count: 10,
                    self_ns: 1000,
                },
                PhaseStat {
                    phase: Phase::Gc,
                    count: 2,
                    self_ns: 300,
                },
            ],
        };
        let b = ObsSnapshot {
            phases: vec![
                PhaseStat {
                    phase: Phase::FtlWrite,
                    count: 25,
                    self_ns: 2500,
                },
                PhaseStat {
                    phase: Phase::Gc,
                    count: 2,
                    self_ns: 300,
                },
                PhaseStat {
                    phase: Phase::EccRetry,
                    count: 1,
                    self_ns: 50,
                },
            ],
        };
        let d = b.diff(&a);
        assert_eq!(
            d.phase(Phase::FtlWrite),
            Some(&PhaseStat {
                phase: Phase::FtlWrite,
                count: 15,
                self_ns: 1500
            })
        );
        // Unchanged phases drop out of the diff; new phases appear whole.
        assert!(d.phase(Phase::Gc).is_none());
        assert_eq!(d.phase(Phase::EccRetry).unwrap().count, 1);
        assert_eq!(d.total_self_ns(), 1550);
        // Diffing a snapshot against itself is empty.
        assert!(b.diff(&b).phases.is_empty());
    }

    #[test]
    fn phase_labels_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_label(p.label()), Some(p));
            let v = serde::Serialize::to_value(&p);
            let back: Phase = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, p);
        }
        assert!(Phase::from_label("nosuch").is_none());
    }
}
